"""The learned value network and its supervised trainer.

The value network approximates :math:`V(query, plan) \\to` overall cost (in
simulation) or overall latency (in real execution), as described in paper §2
and §7.  It is a tree convolution network over the plan's node table, with the
query's selectivity vector injected into every node.
"""

from repro.model.value_network import (
    StateDictError,
    StateDictMismatchError,
    ValueNetwork,
    ValueNetworkConfig,
)
from repro.model.trainer import TrainingHistory, ValueNetworkTrainer

__all__ = [
    "StateDictError",
    "StateDictMismatchError",
    "ValueNetwork",
    "ValueNetworkConfig",
    "TrainingHistory",
    "ValueNetworkTrainer",
]
