"""Request tracing: trace ids, span trees, and the per-process trace ring.

One :class:`Trace` covers one gateway request end to end.  The active span is
carried in a :class:`contextvars.ContextVar`, so instrumentation deep inside
the stack (admission, cache lookup, beam search, scoring batches) attaches
spans to whatever request is running *without* threading a handle through
every call signature.  Two propagation rules make the tree complete:

- **Across threads** the context must be copied explicitly —
  ``ThreadPoolExecutor`` worker threads do NOT inherit the submitting
  thread's contextvars, so the service wraps pool submissions with
  ``contextvars.copy_context().run`` (see ``PlannerService._submit``).
- **Across processes** only the 16-hex-char ``trace_id`` travels (an HTTP
  header, a field in the scoring wire payload, a wrapper frame on the
  shared-cache socket).  The remote side measures its own duration and ships
  it back in the reply; the caller *grafts* the remote span into the live
  tree with :func:`add_span`, labelled with the remote process name.

Everything is a cheap no-op when tracing is disabled (``REPRO_TELEMETRY=0``
or :func:`set_enabled`) or when no trace is active — the service layer can
be instrumented unconditionally and pay nothing on untraced paths.
"""

from __future__ import annotations

import contextvars
import os
import threading
import time
import uuid
from contextlib import contextmanager
from typing import Iterator

#: Recent completed traces retained per process.
DEFAULT_RING_SIZE = 256

#: Worst-duration traces retained in the slow-request log.
DEFAULT_SLOW_LOG_SIZE = 16

#: Longest accepted inbound trace id (anything longer is replaced, so a
#: hostile ``X-Repro-Trace`` header cannot bloat the ring).
MAX_TRACE_ID_CHARS = 64

_enabled = os.environ.get("REPRO_TELEMETRY", "1") != "0"


def enabled() -> bool:
    """Whether tracing is on for this process."""
    return _enabled


def set_enabled(flag: bool) -> None:
    """Process-wide tracing kill switch (also: env ``REPRO_TELEMETRY=0``)."""
    global _enabled
    _enabled = bool(flag)


def new_trace_id() -> str:
    """A fresh 16-hex-char trace id."""
    return uuid.uuid4().hex[:16]


def valid_trace_id(value: object) -> bool:
    """Whether ``value`` is usable as an inbound trace id."""
    return (
        isinstance(value, str)
        and 0 < len(value) <= MAX_TRACE_ID_CHARS
        and all(ch.isalnum() or ch in "-_" for ch in value)
    )


class Span:
    """One timed stage of a trace; spans nest into a tree."""

    __slots__ = (
        "trace", "name", "process", "start_offset", "duration_seconds",
        "annotations", "children", "_started",
    )

    def __init__(self, trace: "Trace", name: str, process: str | None = None):
        self.trace = trace
        self.name = name
        self.process = process
        self._started = time.perf_counter()
        self.start_offset = self._started - trace._t0
        self.duration_seconds = 0.0
        self.annotations: dict = {}
        self.children: list[Span] = []

    def finish(self) -> None:
        self.duration_seconds = time.perf_counter() - self._started

    def annotate(self, **fields) -> None:
        self.annotations.update(fields)

    def to_json_dict(self) -> dict:
        with self.trace._lock:
            children = list(self.children)
        payload: dict = {
            "name": self.name,
            "start_ms": round(self.start_offset * 1e3, 4),
            "duration_ms": round(self.duration_seconds * 1e3, 4),
        }
        if self.process is not None:
            payload["process"] = self.process
        if self.annotations:
            payload["annotations"] = dict(self.annotations)
        if children:
            payload["spans"] = [child.to_json_dict() for child in children]
        return payload

    def span_names(self) -> list[str]:
        """Every span name in this subtree (pre-order) — test convenience."""
        with self.trace._lock:
            children = list(self.children)
        names = [self.name]
        for child in children:
            names.extend(child.span_names())
        return names


class Trace:
    """One request's span tree, identified by a ``trace_id``."""

    __slots__ = ("trace_id", "path", "started_at", "root", "_t0", "_lock")

    def __init__(self, path: str, trace_id: str | None = None):
        self.trace_id = trace_id if valid_trace_id(trace_id) else new_trace_id()
        self.path = path
        self.started_at = time.time()
        self._t0 = time.perf_counter()
        # Child-span appends can race (pool threads share the trace); the
        # per-trace lock keeps the tree consistent without a global choke.
        self._lock = threading.Lock()
        self.root = Span(self, path)

    @property
    def duration_seconds(self) -> float:
        return self.root.duration_seconds

    def begin_span(self, parent: Span, name: str) -> Span:
        child = Span(self, name)
        with self._lock:
            parent.children.append(child)
        return child

    def graft(
        self, parent: Span, name: str, seconds: float,
        process: str | None = None, **annotations,
    ) -> Span:
        """Attach an already-measured remote span under ``parent``."""
        child = Span(self, name, process=process)
        # The remote side measured its own duration; back-date the offset so
        # the child renders inside the enclosing client-side span.
        child.start_offset = max(child.start_offset - seconds, 0.0)
        child.duration_seconds = float(seconds)
        if annotations:
            child.annotations.update(annotations)
        with self._lock:
            parent.children.append(child)
        return child

    def finish(self) -> None:
        self.root.finish()

    def annotate(self, **fields) -> None:
        self.root.annotate(**fields)

    def span_names(self) -> list[str]:
        return self.root.span_names()

    def to_json_dict(self) -> dict:
        return {
            "trace_id": self.trace_id,
            "path": self.path,
            "started_at": self.started_at,
            "duration_ms": round(self.duration_seconds * 1e3, 4),
            "root": self.root.to_json_dict(),
        }


#: The span the current execution context is inside (None → not traced).
_current: contextvars.ContextVar[Span | None] = contextvars.ContextVar(
    "repro_active_span", default=None
)


class Tracer:
    """Bounded ring of completed traces plus a worst-N slow-request log."""

    def __init__(
        self,
        ring_size: int = DEFAULT_RING_SIZE,
        slow_log_size: int = DEFAULT_SLOW_LOG_SIZE,
    ):
        self.ring_size = ring_size
        self.slow_log_size = slow_log_size
        self._lock = threading.Lock()
        self._ring: list[Trace] = []
        self._slow: list[Trace] = []  # kept sorted, worst first
        self._recorded = 0

    def record(self, trace: Trace) -> None:
        with self._lock:
            self._recorded += 1
            self._ring.append(trace)
            if len(self._ring) > self.ring_size:
                del self._ring[: len(self._ring) - self.ring_size]
            self._slow.append(trace)
            self._slow.sort(key=lambda t: t.duration_seconds, reverse=True)
            del self._slow[self.slow_log_size :]

    def recent(self, limit: int | None = None) -> list[Trace]:
        """Completed traces, newest first."""
        with self._lock:
            traces = list(reversed(self._ring))
        return traces if limit is None else traces[:limit]

    def slowest(self) -> list[Trace]:
        """The worst-duration traces seen, worst first."""
        with self._lock:
            return list(self._slow)

    def find(self, trace_id: str) -> Trace | None:
        """Resolve a trace id from the ring or the slow log.

        The slow log outlives ring eviction for the worst traces, which is
        exactly the set an alert annotation or JSON log line points at.
        """
        with self._lock:
            for trace in reversed(self._ring):
                if trace.trace_id == trace_id:
                    return trace
            for trace in self._slow:
                if trace.trace_id == trace_id:
                    return trace
        return None

    def clear(self) -> None:
        with self._lock:
            self._ring.clear()
            self._slow.clear()

    def to_json_dict(self, limit: int = 50) -> dict:
        return {
            "recorded": self._recorded,
            "ring_size": self.ring_size,
            "traces": [trace.to_json_dict() for trace in self.recent(limit)],
            "slowest": [trace.to_json_dict() for trace in self.slowest()],
        }


_tracer = Tracer()


def get_tracer() -> Tracer:
    """The per-process trace ring (scorer processes get their own)."""
    return _tracer


# ---------------------------------------------------------------------- #
# Instrumentation API
# ---------------------------------------------------------------------- #
@contextmanager
def start_trace(path: str, trace_id: str | None = None) -> Iterator[Trace | None]:
    """Open a trace for one request; records it into the ring on exit.

    Yields None (and costs nothing downstream) when tracing is disabled.
    """
    if not _enabled:
        yield None
        return
    trace = Trace(path, trace_id=trace_id)
    token = _current.set(trace.root)
    try:
        yield trace
    finally:
        _current.reset(token)
        trace.finish()
        _tracer.record(trace)


@contextmanager
def span(name: str, **annotations) -> Iterator[Span | None]:
    """Open a child span under the active one; no-op when untraced."""
    parent = _current.get()
    if parent is None:
        yield None
        return
    child = parent.trace.begin_span(parent, name)
    if annotations:
        child.annotations.update(annotations)
    token = _current.set(child)
    try:
        yield child
    finally:
        _current.reset(token)
        child.finish()


def add_span(
    name: str, seconds: float, process: str | None = None, **annotations
) -> None:
    """Graft a remotely-measured span under the active span (no-op untraced)."""
    parent = _current.get()
    if parent is None:
        return
    parent.trace.graft(parent, name, seconds, process=process, **annotations)


def annotate(**fields) -> None:
    """Attach fields to the active span (no-op when untraced)."""
    current = _current.get()
    if current is not None:
        current.annotate(**fields)


def current_trace_id() -> str | None:
    """The active request's trace id, if any."""
    current = _current.get()
    return None if current is None else current.trace.trace_id
