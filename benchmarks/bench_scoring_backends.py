"""Scoring-backend throughput: inproc vs threaded vs process at 1/2/4 workers.

Not a paper figure — this measures the scoring path behind beam search.  A
JOB-derived workload is planned cold (plan cache disabled, so every request
runs a full search) through ``PlannerService`` once per (backend, workers)
cell:

- ``inproc``   — forward passes on the planning threads, GIL-bound: adding
  workers adds almost no planning throughput;
- ``threaded`` — one scoring thread coalescing concurrent frontiers into
  larger forward passes (amortises numpy call overhead, still one core);
- ``process``  — ``workers`` scorer processes loading published model
  snapshots; the only configuration whose scoring parallelism scales with
  cores.

Every cell asserts plan parity against the serial ``BeamSearchPlanner``
baseline, so the backends are compared on identical work.  The headline
ratio — process @ 4 workers over inproc @ 4 threads — lands in
``benchmark.extra_info['process_vs_inproc_4w']`` together with
``available_cpus``; the >= 2x acceptance bar is asserted only under
``REPRO_BENCH_STRICT=1`` (dedicated >= 4-CPU hardware) and is otherwise
recorded: on a single-core or noisy shared runner every backend time-slices
the same cores and the ratio is a property of the machine, not the code.
"""

from __future__ import annotations

import os
import time

from benchmarks.conftest import run_once
from repro.evaluation.reporting import format_table
from repro.model.value_network import ValueNetwork, ValueNetworkConfig
from repro.scoring import ProcessPoolBackend
from repro.search.beam import BeamSearchPlanner
from repro.service.service import PlannerService
from repro.workloads.benchmark import make_job_benchmark

#: CI smoke mode (REPRO_BENCH_QUICK=1) shrinks the workload.
QUICK = os.environ.get("REPRO_BENCH_QUICK", "") == "1"
STRICT = os.environ.get("REPRO_BENCH_STRICT", "") == "1"

BACKENDS = ("inproc", "threaded", "process")
WORKER_COUNTS = (1, 2, 4)
MIN_PROCESS_SPEEDUP = 2.0


def _make_planner() -> BeamSearchPlanner:
    # Quick mode shrinks the search; the full config keeps frontiers wide so
    # per-submit scoring work dwarfs per-submit overhead (IPC for the
    # process backend, queue hops for the threaded one).
    if QUICK:
        return BeamSearchPlanner(beam_size=5, top_k=3, enumerate_scan_operators=False)
    return BeamSearchPlanner(beam_size=10, top_k=5, enumerate_scan_operators=True)


def _make_network(bundle) -> ValueNetwork:
    config = (
        ValueNetworkConfig(
            query_hidden=64, query_embedding=32, tree_channels=(64, 64, 32),
            head_hidden=32, seed=0,
        )
        if QUICK
        else ValueNetworkConfig(
            query_hidden=128, query_embedding=64, tree_channels=(128, 128, 64),
            head_hidden=64, seed=0,
        )
    )
    return ValueNetwork(bundle.featurizer, config)


def _measure_cell(bundle, queries, network, backend_name: str, workers: int) -> dict:
    """Plan the workload cold through one (backend, workers) configuration."""
    backend = backend_name
    if backend_name == "process":
        # Build the pool up front and wait out the spawn/import cost, so the
        # timed window measures scoring throughput, not interpreter startup.
        backend = ProcessPoolBackend(bundle.featurizer, num_workers=workers)
        backend.wait_ready(timeout=120.0)
    with PlannerService(
        network,
        planner=_make_planner(),
        max_workers=workers,
        cache_capacity=0,  # cold: every request runs a full search
        scoring_backend=backend,
    ) as service:
        started = time.perf_counter()
        responses = service.plan_many(queries)
        elapsed = time.perf_counter() - started
        scoring = service.metrics().scoring
    assert all(response.plans for response in responses)
    return {
        "backend": backend_name,
        "workers": workers,
        "seconds": elapsed,
        "qps": len(queries) / elapsed if elapsed > 0 else 0.0,
        "mean_batch": scoring.mean_batch_examples,
        "responses": responses,
    }


def _run_backend_matrix() -> dict:
    num_queries = 6 if QUICK else 12
    bundle = make_job_benchmark(
        fact_rows=300,
        num_queries=num_queries,
        num_templates=min(4, num_queries),
        test_size=2,
        seed=0,
        size_range=(3, 5) if QUICK else (5, 7),
    )
    queries = bundle.all_queries()
    network = _make_network(bundle)
    planner = _make_planner()

    # Serial baseline: also warms the shared featurizer cache so every cell
    # measures search + scoring, not first-touch featurisation.
    serial_started = time.perf_counter()
    serial = [planner.search(query, network) for query in queries]
    serial_seconds = time.perf_counter() - serial_started

    cells = []
    for backend_name in BACKENDS:
        for workers in WORKER_COUNTS:
            cell = _measure_cell(bundle, queries, network, backend_name, workers)
            # Identical work across backends: same best plan per query.
            for direct, response in zip(serial, cell.pop("responses")):
                assert response.best_plan.fingerprint() == (
                    direct.best_plan.fingerprint()
                ), (backend_name, workers, response.query.name)
            cells.append(cell)
    return {
        "queries": len(queries),
        "serial_seconds": serial_seconds,
        "serial_qps": len(queries) / serial_seconds if serial_seconds > 0 else 0.0,
        "cells": cells,
    }


def bench_scoring_backends(benchmark):
    outcome = run_once(benchmark, _run_backend_matrix)
    cells = outcome["cells"]
    by_key = {(cell["backend"], cell["workers"]): cell for cell in cells}
    print()
    print(
        format_table(
            ["backend", "workers", "seconds", "q/s", "mean batch"],
            [
                [
                    cell["backend"],
                    cell["workers"],
                    f"{cell['seconds']:.3f}",
                    f"{cell['qps']:.2f}",
                    f"{cell['mean_batch']:.1f}",
                ]
                for cell in cells
            ],
            title=(
                f"Scoring backends, cold cache ({outcome['queries']} JOB queries; "
                f"serial baseline {outcome['serial_qps']:.2f} q/s)"
            ),
        )
    )

    available_cpus = len(os.sched_getaffinity(0)) if hasattr(os, "sched_getaffinity") else os.cpu_count()
    for cell in cells:
        key = f"{cell['backend']}_{cell['workers']}w"
        benchmark.extra_info[f"{key}_qps"] = round(cell["qps"], 3)
        benchmark.extra_info[f"{key}_seconds"] = round(cell["seconds"], 4)
    benchmark.extra_info["serial_qps"] = round(outcome["serial_qps"], 3)
    benchmark.extra_info["available_cpus"] = int(available_cpus or 0)

    process_4w = by_key[("process", 4)]["qps"]
    inproc_4w = by_key[("inproc", 4)]["qps"]
    ratio = process_4w / inproc_4w if inproc_4w > 0 else float("inf")
    benchmark.extra_info["process_vs_inproc_4w"] = round(ratio, 3)
    # The acceptance bar needs dedicated cores to show itself: on fewer than
    # 4 CPUs (or a noisy shared runner) the scorer processes time-slice with
    # the planners instead of running beside them, and the quick smoke
    # workload is too light for scoring to dominate.  The ratio is therefore
    # always recorded in the JSON artifact but only enforced on hardware that
    # opts in with REPRO_BENCH_STRICT=1.
    enforced = STRICT
    print(
        f"process@4w vs inproc@4w: {ratio:.2f}x "
        f"(available_cpus={available_cpus}, bar={MIN_PROCESS_SPEEDUP}x "
        f"{'enforced' if enforced else 'recorded only'})"
    )
    if enforced:
        assert ratio >= MIN_PROCESS_SPEEDUP, (
            f"process backend at 4 workers delivered only {ratio:.2f}x over "
            f"in-process scoring at 4 threads (bar: {MIN_PROCESS_SPEEDUP}x)"
        )
