"""The SPJ :class:`Query` object and its join graph."""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from functools import cached_property
from typing import Iterable, Mapping

import networkx as nx

from repro.sql.expr import FilterPredicate, JoinPredicate


@dataclass(frozen=True)
class TableRef:
    """A reference to a base table under an alias.

    Attributes:
        table: Physical table name in the catalog.
        alias: Alias used inside the query (unique per query).  Several
            references may point at the same physical table with different
            aliases, as is common in the Join Order Benchmark.
    """

    table: str
    alias: str

    def describe(self) -> str:
        """Render as ``table AS alias``."""
        if self.table == self.alias:
            return self.table
        return f"{self.table} AS {self.alias}"


@dataclass(frozen=True)
class Query:
    """A select-project-join query block.

    Attributes:
        name: Identifier used in workloads and reports (e.g. ``"q7b"``).
        tables: Table references (at least one).
        joins: Equi-join predicates connecting the aliases.  The induced join
            graph must be connected for the query to be plannable without
            cross products.
        filters: Single-table filter predicates.
    """

    name: str
    tables: tuple[TableRef, ...]
    joins: tuple[JoinPredicate, ...] = ()
    filters: tuple[FilterPredicate, ...] = ()

    def __post_init__(self) -> None:
        aliases = [t.alias for t in self.tables]
        if len(aliases) != len(set(aliases)):
            raise ValueError(f"query {self.name!r} has duplicate aliases: {aliases}")
        alias_set = set(aliases)
        for join in self.joins:
            if join.left_alias not in alias_set or join.right_alias not in alias_set:
                raise ValueError(
                    f"query {self.name!r}: join {join.describe()} references an "
                    "alias not in the FROM list"
                )
        for flt in self.filters:
            if flt.alias not in alias_set:
                raise ValueError(
                    f"query {self.name!r}: filter {flt.describe()} references an "
                    "alias not in the FROM list"
                )

    # ------------------------------------------------------------------ #
    # Introspection helpers
    # ------------------------------------------------------------------ #
    @cached_property
    def aliases(self) -> tuple[str, ...]:
        """All aliases in FROM-list order."""
        return tuple(t.alias for t in self.tables)

    @cached_property
    def alias_to_table(self) -> Mapping[str, str]:
        """Mapping from alias to physical table name."""
        return {t.alias: t.table for t in self.tables}

    @property
    def num_tables(self) -> int:
        """Number of joined relations."""
        return len(self.tables)

    @property
    def num_joins(self) -> int:
        """Number of join predicates."""
        return len(self.joins)

    @cached_property
    def join_graph(self) -> nx.Graph:
        """The join graph: nodes are aliases, edges are join predicates.

        Edge attribute ``predicates`` holds the list of
        :class:`~repro.sql.expr.JoinPredicate` between the two aliases.
        """
        graph = nx.Graph()
        graph.add_nodes_from(self.aliases)
        for join in self.joins:
            a, b = join.left_alias, join.right_alias
            if graph.has_edge(a, b):
                graph.edges[a, b]["predicates"].append(join)
            else:
                graph.add_edge(a, b, predicates=[join])
        return graph

    def is_connected(self) -> bool:
        """Whether the join graph is connected (no cross products required)."""
        if self.num_tables <= 1:
            return True
        return nx.is_connected(self.join_graph)

    def filters_for(self, alias: str) -> tuple[FilterPredicate, ...]:
        """Filters applying to ``alias``."""
        return tuple(f for f in self.filters if f.alias == alias)

    def joins_between(
        self, left: Iterable[str], right: Iterable[str]
    ) -> tuple[JoinPredicate, ...]:
        """Join predicates connecting any alias in ``left`` with any in ``right``."""
        left_set, right_set = set(left), set(right)
        found = []
        for join in self.joins:
            a, b = join.left_alias, join.right_alias
            if (a in left_set and b in right_set) or (a in right_set and b in left_set):
                found.append(join)
        return tuple(found)

    def joins_within(self, aliases: Iterable[str]) -> tuple[JoinPredicate, ...]:
        """Join predicates fully contained in the alias set."""
        alias_set = set(aliases)
        return tuple(
            j
            for j in self.joins
            if j.left_alias in alias_set and j.right_alias in alias_set
        )

    def connected_subset(self, aliases: Iterable[str]) -> bool:
        """Whether ``aliases`` induce a connected subgraph of the join graph."""
        alias_list = list(aliases)
        if len(alias_list) <= 1:
            return True
        sub = self.join_graph.subgraph(alias_list)
        return nx.is_connected(sub)

    def restricted_to(self, aliases: Iterable[str], name: str | None = None) -> "Query":
        """Return the query restricted to a subset of its aliases.

        Used by simulation data collection (paper §3.2): each enumerated
        subplan ``T`` is paired with ``query=T``, i.e. the original query
        restricted to the tables and filters of ``T``.
        """
        alias_set = set(aliases)
        tables = tuple(t for t in self.tables if t.alias in alias_set)
        joins = self.joins_within(alias_set)
        filters = tuple(f for f in self.filters if f.alias in alias_set)
        return Query(
            name=name or f"{self.name}[{'+'.join(sorted(alias_set))}]",
            tables=tables,
            joins=joins,
            filters=filters,
        )

    def fingerprint(self) -> str:
        """A stable structural identity for the query.

        Two queries with the same tables, join predicates and filters share a
        fingerprint even if their :attr:`name` differs, so a plan cache keyed
        on it serves repeated traffic regardless of how requests are labelled.
        Tables, joins (in canonical orientation) and filters are sorted before
        hashing, making the fingerprint insensitive to FROM-list order.
        """
        tables = sorted(f"{t.table} AS {t.alias}" for t in self.tables)
        joins = sorted(j.normalized().describe() for j in self.joins)
        filters = sorted(f.describe() for f in self.filters)
        canonical = "|".join(["T:" + ";".join(tables), "J:" + ";".join(joins),
                              "F:" + ";".join(filters)])
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def describe(self) -> str:
        """One-line human readable description."""
        return (
            f"Query({self.name}: {self.num_tables} tables, "
            f"{self.num_joins} joins, {len(self.filters)} filters)"
        )


@dataclass
class QuerySet:
    """A named collection of queries (a workload split).

    Attributes:
        name: Split name, e.g. ``"job/train"``.
        queries: The queries in the split.
    """

    name: str
    queries: list[Query] = field(default_factory=list)

    def __iter__(self):
        return iter(self.queries)

    def __len__(self) -> int:
        return len(self.queries)

    def __getitem__(self, idx: int) -> Query:
        return self.queries[idx]

    def by_name(self, name: str) -> Query:
        """Look a query up by its name."""
        for query in self.queries:
            if query.name == name:
                return query
        raise KeyError(f"no query named {name!r} in {self.name}")

    def names(self) -> list[str]:
        """All query names, in order."""
        return [q.name for q in self.queries]
