"""The experience subsystem's metrics block, as served by the gateway.

One dataclass composing the sink, buffer and trainer-loop counters into the
shape ``GET /v1/experience`` (and the ``experience`` block of
``GET /v1/metrics``) returns.  The cost trend — the windowed mean
simulated-executed cost of recent traffic, one point per training round — is
the soak's headline: it should fall across autonomous promotions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experience.replay import ReplayBufferStats
from repro.experience.sink import SinkStats


@dataclass
class ExperienceMetrics:
    """A snapshot of the online-learning loop.

    Attributes:
        running: Whether the trainer-loop thread is alive.
        sink: Request-path sink counters (depth, drops, stalls).
        buffer: Replay-buffer counters (size, dedup, reservoir).
        rounds: Fine-tune rounds completed.
        promotions: Rounds whose candidate passed the shadow gate and was
            promoted.
        rejections: Rounds whose candidate the gate refused.
        failures: Rounds that errored (training or gating raised).
        rollbacks: Automatic live-traffic rollbacks of loop promotions (from
            the attached live monitor).
        trained_examples: Training points consumed across all rounds.
        last_round_seconds: Wall-clock duration of the most recent round.
        cost_trend: Windowed mean executed cost per round (oldest first) —
            the "regressions trend down" series.
        promotions_paused: Whether the watchtower has gated autonomous
            rounds (experience still accumulates while paused).
        pause_reason: The alert (or operator note) behind the pause.
    """

    running: bool = False
    sink: SinkStats = field(default_factory=SinkStats)
    buffer: ReplayBufferStats = field(default_factory=ReplayBufferStats)
    rounds: int = 0
    promotions: int = 0
    rejections: int = 0
    failures: int = 0
    rollbacks: int = 0
    trained_examples: int = 0
    last_round_seconds: float = 0.0
    cost_trend: list[float] = field(default_factory=list)
    promotions_paused: bool = False
    pause_reason: str | None = None

    def to_json_dict(self) -> dict:
        """JSON-safe dict form (non-finite floats use the wire spellings)."""
        # Function-level import: the wire codec lives with the gateway, and
        # this module must stay importable without the server package loaded.
        from repro.server.wire import jsonable

        return jsonable(
            {
                "running": self.running,
                "sink": self.sink.to_json_dict(),
                "buffer": self.buffer.to_json_dict(),
                "rounds": self.rounds,
                "promotions": self.promotions,
                "rejections": self.rejections,
                "failures": self.failures,
                "rollbacks": self.rollbacks,
                "trained_examples": self.trained_examples,
                "last_round_seconds": self.last_round_seconds,
                "cost_trend": list(self.cost_trend),
                "promotions_paused": self.promotions_paused,
                "pause_reason": self.pause_reason,
            }
        )
