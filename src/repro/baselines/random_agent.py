"""Randomly initialised agents that output random valid plans.

Paper §3 motivates simulation bootstrapping with a simple experiment: randomly
initialise 6 agents without simulation learning and have them optimize the
training queries; the median agent's plans execute 45x slower than the expert
optimizer's (the worst 79x).  A randomly initialised value network induces an
essentially arbitrary preference over plans, so this baseline models such an
agent directly as a uniform sampler over valid plans.
"""

from __future__ import annotations

from repro.agent.environment import BalsaEnvironment
from repro.optimizer.quickpick import random_plan
from repro.plans.nodes import PlanNode
from repro.sql.query import Query
from repro.utils.rng import derive_seed, new_rng


class RandomPlanAgent:
    """Emits uniformly random valid plans for each query.

    Args:
        environment: The workload environment (used for execution).
        seed: RNG seed distinguishing the random agents.
    """

    def __init__(self, environment: BalsaEnvironment, seed: int = 0):
        self.environment = environment
        self.seed = seed

    def plan_query(self, query: Query) -> PlanNode:
        """A random valid plan for ``query`` (deterministic per agent+query)."""
        return random_plan(query, new_rng(derive_seed(self.seed, query.name)))

    def workload_runtime(self, queries, timeout: float | None = None) -> float:
        """Execute one random plan per query and sum the latencies.

        Args:
            queries: The workload to "optimize".
            timeout: Optional per-query latency cap (random plans can be
                disastrous; a cap models an operator killing runaway queries).

        Returns:
            The workload runtime in simulated seconds.
        """
        total = 0.0
        for query in queries:
            plan = self.plan_query(query)
            result, _ = self.environment.execute(query, plan, timeout=timeout)
            total += result.latency
        return total
