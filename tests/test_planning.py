"""Tests for the unified planning API.

Covers the envelopes (:class:`PlanRequest` validation, :class:`PlanResult`
invariants across all nine registered planners), the registry
(registration/lookup/unknown-name errors), the deprecated-shim equivalences,
and the service front door (deadlines, admission control, stats propagation).
"""

from __future__ import annotations

import threading
import time

import pytest

import repro.planning as planning
from repro.agent.config import BalsaConfig
from repro.baselines.bao import BaoAgent
from repro.model.value_network import ValueNetwork, ValueNetworkConfig
from repro.optimizer.greedy import GreedyOptimizer
from repro.optimizer.quickpick import QuickPickOptimizer, random_plan
from repro.planning import (
    AdmissionError,
    PlannerRegistry,
    PlanRequest,
    PlanResult,
    UnknownPlannerError,
)
from repro.planning.adapters import STANDARD_PLANNERS, registry_from_benchmark
from repro.plans.validation import validate_plan
from repro.search.beam import BeamSearchPlanner
from repro.service.service import PlannerService, ServiceResponse
from repro.workloads.benchmark import make_job_benchmark

SMALL_NETWORK = ValueNetworkConfig(
    query_hidden=16, query_embedding=8, tree_channels=(16, 8), head_hidden=8, seed=0
)

#: Tiny agent config for the registry's lazily bootstrapped Neo entry.
TINY_CONFIG = BalsaConfig(
    seed=0,
    num_iterations=0,
    beam_size=3,
    top_k=2,
    enumerate_scan_operators=False,
    retrain_epochs=2,
    update_epochs=1,
    eval_interval=0,
    network=SMALL_NETWORK,
)


@pytest.fixture(scope="module")
def planning_benchmark():
    return make_job_benchmark(
        fact_rows=300, num_queries=10, num_templates=4, test_size=3,
        seed=0, size_range=(3, 5),
    )


@pytest.fixture(scope="module")
def network(planning_benchmark):
    return ValueNetwork(planning_benchmark.featurizer, SMALL_NETWORK)


@pytest.fixture(scope="module")
def registry(planning_benchmark, network):
    """The nine standard planners, installed into the default registry."""
    registry = registry_from_benchmark(
        planning_benchmark,
        network=network,
        balsa_config=TINY_CONFIG,
        beam_planner=BeamSearchPlanner(beam_size=3, top_k=2, enumerate_scan_operators=False),
        seed=0,
        install=True,
    )
    yield registry
    for name in registry.available():
        if name in planning.default_registry:
            planning.unregister(name)


@pytest.fixture(scope="module")
def queries(planning_benchmark):
    return list(planning_benchmark.train_queries)


def small_planner() -> BeamSearchPlanner:
    return BeamSearchPlanner(beam_size=3, top_k=2, enumerate_scan_operators=False)


class TestPlanRequestValidation:
    def test_rejects_non_query(self):
        with pytest.raises(TypeError):
            PlanRequest(query="select * from t")

    def test_rejects_bad_k(self, queries):
        with pytest.raises(ValueError):
            PlanRequest(query=queries[0], k=0)
        with pytest.raises(ValueError):
            PlanRequest(query=queries[0], k=1.5)

    def test_rejects_bad_priority(self, queries):
        with pytest.raises(ValueError):
            PlanRequest(query=queries[0], priority="high")

    def test_rejects_bad_knobs(self, queries):
        with pytest.raises(TypeError):
            PlanRequest(query=queries[0], knobs=["explore"])

    def test_rejects_bad_deadline_type(self, queries):
        with pytest.raises(TypeError):
            PlanRequest(query=queries[0], deadline_seconds="soon")
        with pytest.raises(TypeError):  # a bool is not a budget
            PlanRequest(query=queries[0], deadline_seconds=True)

    def test_non_positive_deadline_marks_expired(self, queries):
        # Not a validation error: the front door rejects it with AdmissionError.
        assert PlanRequest(query=queries[0], deadline_seconds=0.0).expired
        assert PlanRequest(query=queries[0], deadline_seconds=-1.0).expired
        assert not PlanRequest(query=queries[0], deadline_seconds=5.0).expired


class TestRegistry:
    def test_register_get_roundtrip(self):
        registry = PlannerRegistry()
        planner = QuickPickOptimizer(seed=1)
        assert registry.register("qp", planner) is planner
        assert registry.get("qp") is planner
        assert "qp" in registry and len(registry) == 1

    def test_duplicate_requires_replace(self):
        registry = PlannerRegistry()
        registry.register("qp", QuickPickOptimizer(seed=1))
        with pytest.raises(ValueError, match="already registered"):
            registry.register("qp", QuickPickOptimizer(seed=2))
        replacement = QuickPickOptimizer(seed=2)
        registry.register("qp", replacement, replace=True)
        assert registry.get("qp") is replacement

    def test_unknown_name_raises(self):
        registry = PlannerRegistry()
        with pytest.raises(UnknownPlannerError):
            registry.get("nope")
        with pytest.raises(KeyError):  # UnknownPlannerError is a KeyError
            registry.get("nope")
        with pytest.raises(UnknownPlannerError):
            registry.unregister("nope")

    def test_rejects_non_planner(self):
        registry = PlannerRegistry()
        with pytest.raises(TypeError):
            registry.register("bad", object())
        with pytest.raises(ValueError):
            registry.register("", QuickPickOptimizer())

    def test_available_is_sorted(self):
        registry = PlannerRegistry()
        registry.register("zeta", QuickPickOptimizer(seed=0))
        registry.register("alpha", QuickPickOptimizer(seed=1))
        assert registry.available() == ["alpha", "zeta"]

    def test_module_level_default_registry(self):
        planner = QuickPickOptimizer(seed=9)
        planning.register("test-default-qp", planner)
        try:
            assert planning.get("test-default-qp") is planner
            assert "test-default-qp" in planning.available()
        finally:
            planning.unregister("test-default-qp")
        with pytest.raises(UnknownPlannerError):
            planning.get("test-default-qp")

    def test_benchmark_helper_registers_standard_names(self, registry):
        assert registry.available() == sorted(STANDARD_PLANNERS)


class TestEnvelopeInvariants:
    """Every registered planner answers the same envelope with the same shape."""

    @pytest.mark.parametrize("name", STANDARD_PLANNERS)
    def test_registered_planner_roundtrip(self, name, registry, queries):
        # The acceptance path: resolve through the *default* registry.
        planner = planning.get(name)
        query = queries[0]
        result = planner.plan(PlanRequest(query=query, k=2))
        assert isinstance(result, PlanResult)
        assert 1 <= len(result.plans) <= 2
        assert len(result.predicted_latencies) == len(result.plans)
        assert result.planning_seconds >= 0.0
        assert result.planner_name == name
        assert not result.deadline_exceeded
        for plan in result.plans:
            validate_plan(query, plan)

    def test_single_plan_planners_ignore_large_k(self, registry, queries):
        result = registry.get("postgres").plan(PlanRequest(query=queries[0], k=10))
        assert len(result.plans) == 1

    def test_samplers_honour_k(self, registry, queries):
        result = registry.get("random").plan(PlanRequest(query=queries[0], k=4))
        assert len(result.plans) == 4

    def test_bao_reports_chosen_arm(self, registry, queries):
        result = registry.get("bao").plan(PlanRequest(query=queries[0]))
        assert "arm_index" in result.extra and "hint_set" in result.extra


class TestDeprecatedShims:
    """The pre-envelope entry points still work, warn, and agree with plan()."""

    def test_expert_optimize(self, planning_benchmark, queries):
        expert = planning_benchmark.expert("postgres")
        with pytest.deprecated_call():
            old = expert.optimize(queries[0])
        new = expert.plan(PlanRequest(query=queries[0])).best_plan
        assert old.fingerprint() == new.fingerprint()

    def test_greedy_optimize(self, planning_benchmark, queries):
        greedy = GreedyOptimizer(planning_benchmark.expert("postgres").cost_model)
        with pytest.deprecated_call():
            old_plan, old_cost = greedy.optimize(queries[0])
        new = greedy.plan(PlanRequest(query=queries[0]))
        assert old_plan.fingerprint() == new.best_plan.fingerprint()
        assert old_cost == pytest.approx(new.best_predicted_latency)

    def test_quickpick_optimize(self, queries):
        with pytest.deprecated_call():
            old = QuickPickOptimizer(seed=7).optimize(queries[0])
        new = QuickPickOptimizer(seed=7).plan(PlanRequest(query=queries[0]))
        assert old.fingerprint() == new.best_plan.fingerprint()

    def test_bao_plan_query(self, planning_benchmark, queries):
        agent = BaoAgent(planning_benchmark.environment(), planning_benchmark.expert("postgres"), seed=0)
        with pytest.deprecated_call():
            old_plan, old_arm = agent.plan_query(queries[0])
        new = agent.plan(PlanRequest(query=queries[0]))
        assert old_plan.fingerprint() == new.best_plan.fingerprint()
        assert old_arm == new.extra["arm_index"]

    def test_beam_plan(self, network, queries):
        planner = small_planner()
        with pytest.deprecated_call():
            old = planner.plan(queries[0], network)
        new = planner.search(queries[0], network)
        assert [p.fingerprint() for p in old.plans] == [p.fingerprint() for p in new.plans]


class TestBeamDeadline:
    def test_deadline_cuts_search_short(self, network, queries):
        planner = BeamSearchPlanner(beam_size=10, top_k=10)
        query = max(queries, key=lambda q: q.num_tables)
        full = planner.search(query, network)
        assert full.states_expanded > 1 and not full.deadline_exceeded

        cut = planner.search(
            query, network,
            deadline=time.perf_counter() + full.planning_seconds * 0.25,
        )
        assert cut.deadline_exceeded
        assert cut.states_expanded < full.states_expanded

    def test_expired_deadline_returns_immediately(self, network, queries):
        planner = BeamSearchPlanner(beam_size=10, top_k=10)
        query = max(queries, key=lambda q: q.num_tables)
        result = planner.search(query, network, deadline=time.perf_counter())
        assert result.deadline_exceeded
        assert result.states_expanded == 0
        with pytest.raises(Exception):
            _ = result.best_plan  # no plans were completed


class _BlockingPlanner:
    """Protocol planner that blocks until released (for capacity tests)."""

    name = "blocking"
    thread_safe = True  # keep concurrent plan() calls for capacity tests

    def __init__(self):
        self.release = threading.Event()
        self.started = 0
        self._lock = threading.Lock()

    def plan(self, request: PlanRequest) -> PlanResult:
        with self._lock:
            self.started += 1
        assert self.release.wait(timeout=10.0)
        plan = random_plan(request.query, 0)
        return PlanResult(
            plans=[plan], predicted_latencies=[float("nan")], planner_name=self.name
        )


class TestServiceAdmission:
    def test_expired_deadline_rejected(self, network, queries):
        with PlannerService(network, planner=small_planner(), max_workers=1) as service:
            for budget in (0.0, -1.0):
                with pytest.raises(AdmissionError) as excinfo:
                    service.plan(PlanRequest(query=queries[0], deadline_seconds=budget))
                assert excinfo.value.reason == "deadline_expired"
            assert service.metrics().rejected_requests == 2
            assert service.metrics().requests == 0

    def test_zero_capacity_rejects_everything(self, network, queries):
        with PlannerService(
            network, planner=small_planner(), max_workers=1, max_pending=0
        ) as service:
            with pytest.raises(AdmissionError) as excinfo:
                service.plan(queries[0])
            assert excinfo.value.reason == "over_capacity"

    def test_over_capacity_rejected(self, queries):
        planner = _BlockingPlanner()
        service = PlannerService(planner=planner, max_workers=2, max_pending=2)
        try:
            futures = [service.submit(queries[0]), service.submit(queries[1])]
            deadline = time.time() + 5.0
            while planner.started < 2 and time.time() < deadline:
                time.sleep(0.001)
            assert planner.started == 2
            with pytest.raises(AdmissionError) as excinfo:
                service.submit(queries[2])
            assert excinfo.value.reason == "over_capacity"
            planner.release.set()
            for future in futures:
                assert isinstance(future.result(timeout=10.0), ServiceResponse)
            assert service.metrics().rejected_requests == 1
            assert service.pending_requests == 0
        finally:
            planner.release.set()
            service.close()

    def test_mid_search_deadline_truncates_and_skips_cache(self, network, queries):
        query = max(queries, key=lambda q: q.num_tables)
        planner = BeamSearchPlanner(beam_size=10, top_k=10)
        with PlannerService(network, planner=planner, max_workers=1) as service:
            truncated = service.plan(PlanRequest(query=query, k=10, deadline_seconds=0.002))
            assert truncated.deadline_exceeded
            assert truncated.stats.deadline_exceeded
            # Truncated results are not cached: a full-budget request re-plans.
            full = service.plan(PlanRequest(query=query, k=10))
            assert not full.cache_hit
            assert not full.deadline_exceeded
            assert len(full.plans) >= len(truncated.plans)
            metrics = service.metrics()
            assert metrics.deadline_exceeded_requests == 1


class TestServiceOverProtocolPlanners:
    def test_postgres_served_with_cache_and_metrics(self, registry, queries):
        expert = registry.get("postgres")
        with PlannerService(planner=expert, max_workers=2) as service:
            cold = service.plan_many(queries)
            warm = service.plan_many(queries)
        assert all(not response.cache_hit for response in cold)
        assert all(response.cache_hit for response in warm)
        for query, response in zip(queries, cold):
            assert isinstance(response, ServiceResponse)
            assert isinstance(response, PlanResult)
            assert response.planner_name == "postgres"
            direct = expert.plan(PlanRequest(query=query)).best_plan
            assert response.best_plan.fingerprint() == direct.fingerprint()
        metrics = service.metrics()
        assert metrics.requests == 2 * len(queries)
        assert metrics.cache_hits == len(queries)

    def test_single_flight_for_protocol_planner(self, registry, queries):
        planner = _BlockingPlanner()
        service = PlannerService(planner=planner, max_workers=4)
        try:
            futures = [service.submit(queries[0]) for _ in range(6)]
            deadline = time.time() + 5.0
            while planner.started < 1 and time.time() < deadline:
                time.sleep(0.001)
            planner.release.set()
            responses = [future.result(timeout=10.0) for future in futures]
            fingerprints = {response.best_plan.fingerprint() for response in responses}
            assert len(fingerprints) == 1
            assert planner.started < 6  # dedup collapsed identical requests
        finally:
            planner.release.set()
            service.close()

    def test_mixed_queries_and_requests(self, registry, queries):
        with PlannerService(planner=registry.get("greedy"), max_workers=1) as service:
            responses = service.plan_many(
                [queries[0], PlanRequest(query=queries[1], k=1, priority=3)]
            )
            with pytest.raises(TypeError):
                service.plan("not a query")
        assert responses[0].stats.priority == 0
        assert responses[1].stats.priority == 3


class _TruncatingPlanner:
    """Protocol planner that blocks until released, then reports truncation."""

    name = "truncating"
    thread_safe = True

    def __init__(self):
        self.release = threading.Event()
        self.started = 0
        self._lock = threading.Lock()

    def plan(self, request: PlanRequest) -> PlanResult:
        with self._lock:
            self.started += 1
        assert self.release.wait(timeout=10.0)
        return PlanResult(
            plans=[], predicted_latencies=[], planner_name=self.name,
            deadline_exceeded=True,
        )


class TestCacheKeyIdentity:
    def test_knobs_are_part_of_the_cache_key(self, registry, queries):
        bao = registry.get("bao")
        with PlannerService(planner=bao, max_workers=1) as service:
            first = service.plan(PlanRequest(query=queries[0]))
            same_knobs = service.plan(PlanRequest(query=queries[0]))
            other_knobs = service.plan(
                PlanRequest(query=queries[0], knobs={"explore": False})
            )
        assert not first.cache_hit
        assert same_knobs.cache_hit
        assert not other_knobs.cache_hit  # knob-sensitive requests re-plan

    def test_bao_refit_invalidates_cache(self, planning_benchmark, queries):
        agent = BaoAgent(
            planning_benchmark.environment(), planning_benchmark.expert("postgres"), seed=0
        )
        with PlannerService(planner=agent, max_workers=1) as service:
            before = service.plan(queries[0])
            assert service.plan(queries[0]).cache_hit
            agent.bootstrap()  # refits the latency model -> new version_key
            after = service.plan(queries[0])
        assert not before.cache_hit
        assert not after.cache_hit

    def test_quickpick_is_never_frozen_by_the_cache(self, queries):
        with PlannerService(planner=QuickPickOptimizer(seed=0), max_workers=1) as service:
            first = service.plan(queries[0])
            second = service.plan(queries[0])
        assert not first.cacheable
        assert not first.cache_hit
        assert not second.cache_hit  # stochastic draws are never memoised
        assert service.cache.stats().inserts == 0

    def test_bao_exploration_is_never_memoised(self, planning_benchmark, queries):
        agent = BaoAgent(
            planning_benchmark.environment(), planning_benchmark.expert("postgres"), seed=0
        )
        request = PlanRequest(query=queries[0], knobs={"explore": True})
        with PlannerService(planner=agent, max_workers=1) as service:
            first = service.plan(request)
            second = service.plan(request)
        assert not first.cacheable
        assert not first.cache_hit
        assert not second.cache_hit  # every explore request re-draws its arm


class _StochasticPlanner:
    """Blocking planner whose draws are unique per call and non-replayable."""

    name = "stochastic"
    thread_safe = True

    def __init__(self):
        self.release = threading.Event()
        self.started = 0
        self._lock = threading.Lock()

    def plan(self, request: PlanRequest) -> PlanResult:
        with self._lock:
            self.started += 1
            draw = self.started
        assert self.release.wait(timeout=10.0)
        return PlanResult(
            plans=[random_plan(request.query, draw)],
            predicted_latencies=[float("nan")],
            planner_name=self.name,
            cacheable=False,
            extra={"draw": draw},
        )


class TestSingleFlightDeadlines:
    def test_followers_do_not_share_stochastic_draws(self, queries):
        planner = _StochasticPlanner()
        service = PlannerService(planner=planner, max_workers=2)
        try:
            leader = service.submit(queries[0])
            deadline = time.time() + 5.0
            while planner.started < 1 and time.time() < deadline:
                time.sleep(0.001)
            follower = service.submit(queries[0])
            time.sleep(0.05)  # let the follower join the in-flight search
            planner.release.set()
            draws = {
                leader.result(timeout=10.0).extra["draw"],
                follower.result(timeout=10.0).extra["draw"],
            }
            # Non-replayable draws are never shared through single-flight.
            assert len(draws) == 2
            assert planner.started == 2
        finally:
            planner.release.set()
            service.close()

    def test_follower_does_not_inherit_truncated_result(self, queries):
        planner = _TruncatingPlanner()
        service = PlannerService(planner=planner, max_workers=2)
        try:
            leader = service.submit(queries[0])
            deadline = time.time() + 5.0
            while planner.started < 1 and time.time() < deadline:
                time.sleep(0.001)
            follower = service.submit(queries[0])
            time.sleep(0.05)  # let the follower join the in-flight search
            planner.release.set()
            assert leader.result(timeout=10.0).deadline_exceeded
            # The follower re-planned instead of inheriting the truncation.
            assert follower.result(timeout=10.0).deadline_exceeded
            assert planner.started == 2
        finally:
            planner.release.set()
            service.close()

    def test_coalesced_follower_deadline_is_enforced(self, queries):
        planner = _BlockingPlanner()
        service = PlannerService(planner=planner, max_workers=2)
        try:
            leader = service.submit(queries[0])
            deadline = time.time() + 5.0
            while planner.started < 1 and time.time() < deadline:
                time.sleep(0.001)
            follower = service.submit(
                PlanRequest(query=queries[0], deadline_seconds=0.05)
            )
            response = follower.result(timeout=10.0)
            # The follower's own budget expired while riding the leader's
            # search: it gets an empty budget-truncated result, not a wait.
            assert response.deadline_exceeded
            assert response.plans == []
            # No planner ran for it, so it is neither a miss nor coalesced.
            assert not response.stats.coalesced and not response.stats.cache_hit
            planner.release.set()
            assert not leader.result(timeout=10.0).deadline_exceeded
            assert service.metrics().cache_misses == 1  # the leader only
        finally:
            planner.release.set()
            service.close()


class TestBatchBackpressure:
    def test_plan_many_cooperates_with_max_pending(self, registry, queries):
        with PlannerService(
            planner=registry.get("greedy"), max_workers=2, max_pending=2
        ) as service:
            responses = service.plan_many(queries)
        assert len(responses) == len(queries)
        assert all(response.plans for response in responses)
        # Backpressure retries are not admission refusals.
        assert service.metrics().rejected_requests == 0

    def test_plan_many_with_zero_capacity_raises_instead_of_spinning(
        self, registry, queries
    ):
        with PlannerService(
            planner=registry.get("greedy"), max_workers=2, max_pending=0
        ) as service:
            with pytest.raises(AdmissionError) as excinfo:
                service.plan_many(queries)
            # The surfaced refusal is counted exactly once, retries are not.
            assert service.metrics().rejected_requests == 1
        assert excinfo.value.reason == "over_capacity"

    def test_drained_deadline_still_served_from_cache(self, network, queries):
        with PlannerService(network, planner=small_planner(), max_workers=1) as service:
            warm = service.plan(PlanRequest(query=queries[0], k=2))
            # The budget is long gone by pickup, but a memoised hit is free.
            hit = service.plan(
                PlanRequest(query=queries[0], k=2, deadline_seconds=1e-9)
            )
        assert not warm.cache_hit
        assert hit.cache_hit
        assert hit.plans and not hit.deadline_exceeded

    def test_queue_drained_deadline_returns_truncated_response(self, queries):
        planner = _BlockingPlanner()
        service = PlannerService(planner=planner, max_workers=2)
        try:
            blockers = [service.submit(queries[0]), service.submit(queries[1])]
            deadline = time.time() + 5.0
            while planner.started < 2 and time.time() < deadline:
                time.sleep(0.001)
            queued = service.submit(PlanRequest(query=queries[2], deadline_seconds=0.05))
            time.sleep(0.1)  # budget drains while queued behind the blockers
            planner.release.set()
            response = queued.result(timeout=10.0)
            # Admitted requests always get a response: the drained budget
            # yields an empty truncated result, not an exception.
            assert response.deadline_exceeded
            assert response.plans == []
            for blocker in blockers:
                blocker.result(timeout=10.0)
            metrics = service.metrics()
            assert metrics.rejected_requests == 0
            assert metrics.deadline_exceeded_requests == 1
            # The drained request never ran a planner: not a phantom miss.
            assert metrics.cache_misses == 2
        finally:
            planner.release.set()
            service.close()


class TestNestedServiceDeadlines:
    def test_backend_admission_rejection_becomes_truncated_response(self, queries):
        class NestedRejectingPlanner:
            name = "nested"

            def plan(self, request):
                raise AdmissionError("inner budget drained", reason="deadline_expired")

        with PlannerService(planner=NestedRejectingPlanner(), max_workers=1) as service:
            response = service.plan(PlanRequest(query=queries[0], deadline_seconds=5.0))
            assert response.deadline_exceeded
            assert response.plans == []
            metrics = service.metrics()
            assert metrics.rejected_requests == 0
            assert metrics.cache_misses == 0  # no planner actually ran

    def test_concurrent_agent_backend_bootstraps_once(self, planning_benchmark, queries):
        from repro.baselines.neo import NeoAgent
        from repro.planning.adapters import AgentPlanner

        neo = NeoAgent(
            planning_benchmark.environment(),
            planning_benchmark.expert("postgres"),
            TINY_CONFIG,
            expert_runtimes={},
        )
        adapter = AgentPlanner(neo, name="neo")
        # The first wave of concurrent requests races the lazy bootstrap;
        # the adapter must bootstrap exactly once and serve every request.
        with PlannerService(planner=adapter, max_workers=4) as service:
            responses = service.plan_many(queries)
        assert all(response.plans for response in responses)

    def test_agent_backed_planner_never_leaks_admission_errors(self, registry, queries):
        # "neo" delegates to the agent's own PlannerService; even sub-ms
        # budgets must yield truncated responses, not exceptions.
        with PlannerService(planner=registry.get("neo"), max_workers=1) as service:
            for budget in (1e-6, 0.001, 10.0):
                response = service.plan(
                    PlanRequest(query=queries[0], k=2, deadline_seconds=budget)
                )
                assert response.deadline_exceeded or response.plans


class TestProtocolBeamThreadSafety:
    def test_registry_beam_served_concurrently_matches_serial(
        self, network, queries
    ):
        from repro.planning.adapters import BeamPlanner

        adapter = BeamPlanner(network, planner=small_planner())
        serial = [small_planner().search(query, network) for query in queries]
        with PlannerService(planner=adapter, max_workers=4, default_k=2) as service:
            concurrent = service.plan_many(queries)
        # The service rebinds bare-predict beam adapters to a lock-guarded
        # score function, so concurrent serving stays deterministic.
        for direct, response in zip(serial, concurrent):
            assert response.best_plan.fingerprint() == direct.best_plan.fingerprint()


class TestStatsPropagation:
    def test_search_stats_reach_response_and_metrics(self, network, queries):
        with PlannerService(network, planner=small_planner(), max_workers=1) as service:
            fresh = service.plan(queries[0])
            assert fresh.states_expanded > 0
            assert fresh.plans_scored > 0
            assert fresh.stats.states_expanded == fresh.states_expanded
            assert fresh.stats.plans_scored == fresh.plans_scored

            hit = service.plan(queries[0])
            assert hit.cache_hit
            # The envelope still carries the original search's stats; the
            # per-request stats charge no new work.
            assert hit.states_expanded == fresh.states_expanded
            assert hit.stats.states_expanded == 0

            metrics = service.metrics()
            assert metrics.total_states_expanded == fresh.states_expanded
            assert metrics.total_plans_scored == fresh.plans_scored
            report = metrics.as_dict()
            assert report["total_states_expanded"] == fresh.states_expanded
            assert report["total_plans_scored"] == fresh.plans_scored

    def test_response_is_planresult_subtype(self, network, queries):
        with PlannerService(network, planner=small_planner(), max_workers=1) as service:
            response = service.plan(queries[0])
        assert isinstance(response, PlanResult)
        assert response.result is response  # backwards-compatible view
