"""Bundled query+plan featurisation and batching."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.cardinality.base import CardinalityEstimator
from repro.catalog.schema import Schema
from repro.featurization.plan_encoder import FlattenedPlan, PlanEncoder
from repro.featurization.query_encoder import QueryEncoder
from repro.nn.tree_conv import TreeBatch
from repro.plans.nodes import PlanNode
from repro.sql.query import Query


@dataclass
class FeaturizedExample:
    """One featurised (query, plan) pair.

    Attributes:
        query_encoding: The query's selectivity vector.
        plan: The flattened plan node table.
    """

    query_encoding: np.ndarray
    plan: FlattenedPlan


def canonical_signature(signature: Sequence) -> tuple:
    """Deep-tuple a featuriser signature for order-insensitive comparison.

    Signatures survive JSON round trips (snapshot persistence, wire formats)
    where tuples come back as lists; comparing canonical forms keeps a
    persisted checkpoint loadable into the featurisation that produced it.
    """
    return tuple(
        canonical_signature(item) if isinstance(item, (list, tuple)) else item
        for item in signature
    )


def batch_examples(
    examples: Sequence[FeaturizedExample],
    query_dimension: int,
    plan_node_dimension: int,
) -> tuple[np.ndarray, TreeBatch]:
    """Pad and stack featurised examples into value-network inputs.

    A module-level function (rather than a featuriser method) so scoring
    backends that never see the schema — e.g. a scorer process restored from
    a snapshot's ``featurizer_signature`` — can batch shipped examples from
    the two dimensionalities alone.

    Args:
        examples: Featurised (query, plan) pairs.
        query_dimension: Width of one query encoding.
        plan_node_dimension: Width of one plan-node feature vector.

    Returns:
        ``(query_batch, tree_batch)`` where ``query_batch`` has shape
        ``(batch, query_dim)`` and ``tree_batch`` holds the padded plan
        node tables.
    """
    if not examples:
        raise ValueError("cannot batch zero examples")
    batch_size = len(examples)
    max_slots = max(example.plan.features.shape[0] for example in examples)
    features = np.zeros((batch_size, max_slots, plan_node_dimension), dtype=np.float64)
    left = np.zeros((batch_size, max_slots), dtype=np.int64)
    right = np.zeros((batch_size, max_slots), dtype=np.int64)
    valid = np.zeros((batch_size, max_slots), dtype=bool)
    queries = np.zeros((batch_size, query_dimension), dtype=np.float64)
    for i, example in enumerate(examples):
        slots = example.plan.features.shape[0]
        features[i, :slots] = example.plan.features
        left[i, :slots] = example.plan.left
        right[i, :slots] = example.plan.right
        valid[i, 1 : example.plan.num_nodes + 1] = True
        queries[i] = example.query_encoding
    return queries, TreeBatch(features=features, left=left, right=right, valid=valid)


class SignatureFeaturizer:
    """A dimension-only stand-in built from a featuriser signature.

    Carries exactly what inference needs — the two input dimensionalities and
    the signature itself — so a :class:`~repro.model.value_network.ValueNetwork`
    can be restored from a persisted checkpoint in a process that has no
    schema, estimator or database (the scorer processes of the process-based
    scoring backend).  It cannot *featurise*: under the stateless scoring
    contract, featurisation already happened in the submitting worker and
    only :class:`FeaturizedExample` payloads cross the process boundary.
    """

    def __init__(self, signature: Sequence):
        self._signature = canonical_signature(signature)
        try:
            self.query_dimension = int(self._signature[-2])
            self.plan_node_dimension = int(self._signature[-1])
        except (IndexError, TypeError, ValueError):
            raise ValueError(
                f"not a featurizer signature (expected trailing dimensions): "
                f"{signature!r}"
            ) from None

    def signature(self) -> tuple:
        """The canonical signature this stand-in was built from."""
        return self._signature

    def featurize(self, query: Query, plan: PlanNode) -> FeaturizedExample:
        """Unsupported: a signature carries dimensions, not encoders."""
        raise TypeError(
            "SignatureFeaturizer cannot featurize: featurisation happens in "
            "the submitting worker; ship FeaturizedExample payloads instead"
        )

    def batch(
        self, examples: Sequence[FeaturizedExample]
    ) -> tuple[np.ndarray, TreeBatch]:
        """Pad and stack featurised examples (see :func:`batch_examples`)."""
        return batch_examples(examples, self.query_dimension, self.plan_node_dimension)


class QueryPlanFeaturizer:
    """Featurises (query, plan) pairs and batches them for the value network.

    Args:
        schema: Database schema.
        estimator: Cardinality estimator used for query selectivities.
    """

    def __init__(self, schema: Schema, estimator: CardinalityEstimator, cache_size: int = 200_000):
        self.schema = schema
        self.query_encoder = QueryEncoder(schema, estimator)
        self.plan_encoder = PlanEncoder(schema)
        # Featurisation is pure; beam search and training revisit the same
        # subplans constantly, so cache by (query, plan fingerprint).
        self._cache: dict[tuple[str, str], FeaturizedExample] = {}
        self._cache_size = cache_size

    @property
    def query_dimension(self) -> int:
        """Dimensionality of the query encoding."""
        return self.query_encoder.dimension

    def signature(self) -> tuple:
        """Hashable identity of this featuriser's input space.

        Two featurisers with equal signatures produce interchangeable
        encodings: same schema, same dimensionalities.  Model snapshots embed
        the signature so weights trained against one featurisation are never
        silently loaded into a network wired to another.
        """
        return (
            "qpf-v1",
            getattr(self.schema, "name", ""),
            tuple(sorted(self.schema.tables)),
            self.query_dimension,
            self.plan_node_dimension,
        )

    @property
    def plan_node_dimension(self) -> int:
        """Dimensionality of one plan-node feature vector."""
        return self.plan_encoder.node_dimension

    def featurize(self, query: Query, plan: PlanNode) -> FeaturizedExample:
        """Featurise one (query, plan) pair (cached)."""
        key = (query.name, plan.fingerprint())
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        example = FeaturizedExample(
            query_encoding=self.query_encoder.encode(query),
            plan=self.plan_encoder.flatten(plan, dict(query.alias_to_table)),
        )
        if len(self._cache) < self._cache_size:
            self._cache[key] = example
        return example

    def batch(
        self, examples: Sequence[FeaturizedExample]
    ) -> tuple[np.ndarray, TreeBatch]:
        """Pad and stack featurised examples into network inputs.

        Args:
            examples: Featurised (query, plan) pairs.

        Returns:
            ``(query_batch, tree_batch)`` where ``query_batch`` has shape
            ``(batch, query_dim)`` and ``tree_batch`` holds the padded plan
            node tables.
        """
        return batch_examples(examples, self.query_dimension, self.plan_node_dimension)
