"""Compare optimizers on one workload: experts, Bao, Neo-impl, Balsa, random.

Reproduces the qualitative comparison behind Figure 6 / Figure 15 / Table 3 of
the paper on a small JOB-like benchmark: every optimizer plans the same
queries, the plans run on the same simulated engine, and workload runtimes are
reported side by side.

Run with::

    python examples/compare_optimizers.py
"""

from __future__ import annotations

from repro import BalsaAgent, BalsaConfig, BaoAgent, NeoAgent, make_job_benchmark
from repro.baselines.random_agent import RandomPlanAgent
from repro.evaluation.reporting import format_table


def main() -> None:
    benchmark = make_job_benchmark(
        fact_rows=700, num_queries=28, num_templates=8, test_size=6,
        size_range=(4, 7), seed=1,
    )
    expert_runtimes = benchmark.expert_runtimes()
    train, test = benchmark.train_queries, benchmark.test_queries

    def workload(latencies: dict[str, float], queries) -> float:
        return sum(latencies[q.name] for q in queries)

    rows = []

    # Expert optimizers (PostgreSQL-like bushy search, CommDB-like left-deep).
    for expert in ("postgres", "commdb"):
        runtimes = benchmark.expert_runtimes(expert=expert)
        rows.append([expert, workload(runtimes, train), workload(runtimes, test)])

    # Random plans (the §3 motivation baseline), capped to avoid stalls.
    random_agent = RandomPlanAgent(benchmark.environment(), seed=0)
    cap = 50 * workload(expert_runtimes, train)
    rows.append([
        "random plans",
        random_agent.workload_runtime(train, timeout=cap),
        random_agent.workload_runtime(test, timeout=cap),
    ])

    # Bao: steer the expert with hint sets.
    bao = BaoAgent(benchmark.environment(), benchmark.expert("postgres"), seed=0)
    bao.train(num_iterations=6)
    rows.append(["bao", bao.workload_runtime(train), bao.workload_runtime(test)])

    # Neo-impl: learn from expert demonstrations, retrain every iteration.
    config = BalsaConfig.small(seed=0, num_iterations=8)
    neo = NeoAgent(benchmark.environment(), benchmark.expert("postgres"), config,
                   expert_runtimes=expert_runtimes)
    neo.train()
    rows.append(["neo-impl", neo.workload_runtime(train), neo.workload_runtime(test)])

    # Balsa: no expert demonstrations at all.
    balsa = BalsaAgent(benchmark.environment(), BalsaConfig.small(seed=0, num_iterations=12),
                       expert_runtimes=expert_runtimes)
    balsa.train()
    rows.append(["balsa", balsa.workload_runtime(train), balsa.workload_runtime(test)])

    print(format_table(
        ["optimizer", "train workload runtime (s)", "test workload runtime (s)"],
        rows,
        title="Workload runtimes on the simulated engine (lower is better)",
    ))


if __name__ == "__main__":
    main()
