"""The traffic-serving planning layer (``PlannerService``).

Serves the uniform :class:`~repro.planning.envelope.PlanRequest` /
:class:`~repro.planning.envelope.PlanResult` envelopes over *any*
:class:`~repro.planning.protocol.Planner` backend:

- :class:`~repro.service.cache.ServicePlanCache` — a cross-query LRU plan
  cache keyed by ``(query fingerprint, planner version, k)``, so repeated
  queries skip planning entirely until the backend changes;
- pluggable scoring backends (:mod:`repro.scoring`) — ``"inproc"``,
  ``"threaded"`` (the historical :class:`~repro.service.batching.BatchedScoringBridge`,
  coalescing child-plan scoring from concurrent beam searches into larger
  forward passes) and ``"process"`` (scorer processes loading published
  model snapshots), selected per service with automatic in-process fallback;
- :class:`~repro.service.service.PlannerService` — the front door: admission
  control (deadlines, ``max_pending`` capacity, typed
  :class:`~repro.planning.envelope.AdmissionError` rejections) ahead of a
  worker pool planning independent queries concurrently, with per-request
  stats aggregated into a :class:`~repro.service.metrics.ServiceMetrics`
  report.
"""

from repro.planning.envelope import AdmissionError
from repro.service.batching import BatchedScoringBridge, ScoringBridgeStats
from repro.service.cache import CacheStats, ServicePlanCache
from repro.service.metrics import RequestStats, ServiceMetrics
from repro.service.service import PlannerService, ServiceResponse

__all__ = [
    "AdmissionError",
    "BatchedScoringBridge",
    "CacheStats",
    "PlannerService",
    "RequestStats",
    "ScoringBridgeStats",
    "ServiceMetrics",
    "ServicePlanCache",
    "ServiceResponse",
]
