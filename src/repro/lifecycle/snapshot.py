"""Immutable, versioned snapshots of value-network weights.

A :class:`ModelSnapshot` is the unit of currency of the model lifecycle: the
:class:`~repro.lifecycle.registry.ModelRegistry` stores them, the
:class:`~repro.lifecycle.trainer.BackgroundTrainer` produces candidate ones,
the shadow gate decides which get promoted, and
:meth:`ModelSnapshot.restore` materialises a fresh
:class:`~repro.model.value_network.ValueNetwork` to hot-swap into the serving
path.

Snapshots wrap the network's self-describing ``state_dict()`` (weights +
architecture config + featuriser signature), so restoring against an
incompatible featurisation raises
:class:`~repro.model.value_network.StateDictMismatchError` instead of
silently mis-loading.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.featurization.featurizer import QueryPlanFeaturizer, canonical_signature
from repro.model.value_network import ValueNetwork, ValueNetworkConfig


class LifecycleError(RuntimeError):
    """Base class for model-lifecycle errors (unknown versions, bad rollbacks)."""


def _frozen_state(state: dict) -> dict:
    """Mark a freshly produced state dict's weight arrays read-only.

    ``ValueNetwork.state_dict()`` already copies every array, so freezing in
    place avoids a second full copy per capture; only call this on a state
    dict nothing else holds references into.
    """
    weights = {}
    for name, values in state["weights"].items():
        array = np.asarray(values, dtype=np.float64)
        array.setflags(write=False)
        weights[name] = array
    frozen = dict(state)
    frozen["weights"] = weights
    return frozen


@dataclass(frozen=True)
class ModelSnapshot:
    """One immutable, versioned checkpoint of a value network.

    Attributes:
        version: Registry-assigned monotone version number (1, 2, ...).
        state: The network's ``state_dict()`` payload (weight arrays are
            copies marked read-only; treat the whole mapping as immutable).
        source: Human-readable provenance (``"bootstrap"``, ``"fine-tune"``,
            ...).
        parent_version: Version this snapshot was fine-tuned from (None for
            roots).
        created_at: ``time.time()`` at registration.
        tag: Optional free-form label.
    """

    version: int
    state: dict = field(repr=False)
    source: str = ""
    parent_version: int | None = None
    created_at: float = field(default_factory=time.time)
    tag: str = ""

    @property
    def featurizer_signature(self) -> tuple | None:
        """The featuriser identity the weights were trained against."""
        signature = self.state.get("featurizer_signature")
        return tuple(signature) if signature is not None else None

    @property
    def network_config(self) -> ValueNetworkConfig:
        """The architecture the weights belong to."""
        config = dict(self.state.get("config", {}))
        if "tree_channels" in config:
            config["tree_channels"] = tuple(config["tree_channels"])
        return ValueNetworkConfig(**config)

    def restore(self, featurizer: QueryPlanFeaturizer) -> ValueNetwork:
        """Materialise a fresh network carrying this snapshot's weights.

        The returned network has its own identity (fresh ``uid``), so serving
        caches keyed on :meth:`ValueNetwork.version_key` treat it as a new
        version — exactly what a hot swap needs.

        Raises:
            StateDictMismatchError: ``featurizer`` does not match the
                signature the weights were trained against.
        """
        network = ValueNetwork(featurizer, self.network_config)
        network.load_state_dict(self.state)
        return network

    @classmethod
    def capture(
        cls,
        network: ValueNetwork,
        version: int,
        source: str = "",
        parent_version: int | None = None,
        tag: str = "",
    ) -> "ModelSnapshot":
        """Snapshot ``network``'s current weights under ``version``."""
        return cls(
            version=version,
            state=_frozen_state(network.state_dict()),
            source=source,
            parent_version=parent_version,
            tag=tag,
        )

    # ------------------------------------------------------------------ #
    # Disk persistence (numpy savez; no pickling)
    # ------------------------------------------------------------------ #
    def save(self, path: str | Path) -> Path:
        """Write this snapshot to ``path`` as a pickle-free ``.npz`` archive.

        Weight arrays are stored as plain npz members; everything else
        (architecture config, featuriser signature, provenance) travels as a
        JSON header, so :meth:`load` round-trips without ``allow_pickle`` —
        the format a process-based scoring server can safely read.
        """
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        header = json.dumps(
            {
                "format": self.state.get("format", "value-network-v1"),
                "config": self.state.get("config"),
                "featurizer_signature": self.state.get("featurizer_signature"),
                "label_mean": self.state.get("label_mean", 0.0),
                "label_std": self.state.get("label_std", 1.0),
                "version": self.version,
                "source": self.source,
                "parent_version": self.parent_version,
                "created_at": self.created_at,
                "tag": self.tag,
            }
        )
        arrays = {
            f"weights::{name}": values for name, values in self.state["weights"].items()
        }
        # Write-then-rename so a crashed writer never leaves a torn snapshot
        # where a scorer process expects a loadable one.
        partial = path.with_name(path.name + ".partial")
        with open(partial, "wb") as handle:
            np.savez(handle, __header__=np.array(header), **arrays)
        partial.replace(path)
        return path

    @classmethod
    def load(cls, path: str | Path) -> "ModelSnapshot":
        """Read a snapshot written by :meth:`save` (no pickling involved)."""
        with np.load(Path(path), allow_pickle=False) as archive:
            if "__header__" not in archive:
                raise LifecycleError(f"{path}: not a model snapshot archive")
            header = json.loads(str(archive["__header__"]))
            weights = {
                name[len("weights::") :]: archive[name]
                for name in archive.files
                if name.startswith("weights::")
            }
        signature = header.get("featurizer_signature")
        state = _frozen_state(
            {
                "format": header.get("format", "value-network-v1"),
                "weights": weights,
                "label_mean": float(header.get("label_mean", 0.0)),
                "label_std": float(header.get("label_std", 1.0)),
                "config": header.get("config"),
                "featurizer_signature": (
                    canonical_signature(signature) if signature is not None else None
                ),
            }
        )
        return cls(
            version=int(header.get("version", 0)),
            state=state,
            source=str(header.get("source", "")),
            parent_version=header.get("parent_version"),
            created_at=float(header.get("created_at", 0.0)),
            tag=str(header.get("tag", "")),
        )
