"""Tests for metrics, reporting and the experiment runners (smallest configs)."""

import math

import pytest

from repro.evaluation.experiments import ExperimentScale
from repro.evaluation import experiments
from repro.evaluation.metrics import (
    median_and_range,
    normalized_runtime,
    per_query_speedups,
    speedup,
    workload_runtime,
)
from repro.evaluation.reporting import format_series, format_table


class TestMetrics:
    def test_workload_runtime(self):
        assert workload_runtime({"a": 1.0, "b": 2.5}) == 3.5

    def test_normalized_runtime_and_speedup(self):
        ours = {"a": 1.0, "b": 1.0}
        expert = {"a": 2.0, "b": 2.0, "c": 5.0}
        assert normalized_runtime(ours, expert) == pytest.approx(0.5)
        assert speedup(ours, expert) == pytest.approx(2.0)

    def test_normalized_runtime_zero_expert_rejected(self):
        with pytest.raises(ValueError):
            normalized_runtime({"a": 1.0}, {"a": 0.0})

    def test_per_query_speedups(self):
        speedups = per_query_speedups({"a": 0.5}, {"a": 1.0})
        assert speedups["a"] == pytest.approx(2.0)
        with pytest.raises(ValueError):
            per_query_speedups({"a": 0.0}, {"a": 1.0})

    def test_median_and_range(self):
        median, low, high = median_and_range([3.0, 1.0, 2.0])
        assert (median, low, high) == (2.0, 1.0, 3.0)


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["name", "value"], [["a", 1.23456], ["bb", 2]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "1.235" in text
        assert "bb" in text

    def test_format_series(self):
        text = format_series({"x": [1.0, 2.0], "y": [3.0]})
        assert "iteration" in text
        assert "nan" in text  # padded missing value


class TestExperimentScale:
    def test_presets(self):
        tiny = ExperimentScale.tiny()
        small = ExperimentScale.small()
        paper = ExperimentScale.paper()
        assert tiny.num_queries < small.num_queries < paper.num_queries
        assert paper.num_iterations == 500

    def test_config_overrides(self):
        scale = ExperimentScale.tiny()
        config = scale.config(seed=3, use_timeouts=False)
        assert config.seed == 3 and not config.use_timeouts

    def test_benchmark_factory_workloads(self):
        scale = ExperimentScale(
            name="unit", fact_rows=300, num_queries=8, num_templates=4,
            test_size=2, size_range=(3, 5), tpch_rows=200,
            tpch_queries_per_template=1, num_iterations=1,
        )
        job = scale.benchmark("job")
        tpch = scale.benchmark("tpch")
        assert len(job.train_queries) == 6
        assert len(tpch.test_queries) == 1
        with pytest.raises(ValueError):
            scale.benchmark("bogus")


@pytest.fixture(scope="module")
def unit_scale():
    """An even smaller scale than ``tiny`` for exercising runners in tests."""
    return ExperimentScale(
        name="unit",
        fact_rows=300,
        tpch_rows=200,
        num_queries=8,
        num_templates=4,
        test_size=2,
        size_range=(3, 5),
        tpch_queries_per_template=1,
        num_iterations=2,
        num_seeds=1,
        balsa=lambda seed, iterations: ExperimentScale.tiny().balsa(seed, iterations),
    )


class TestExperimentRunners:
    def test_random_vs_sim_bootstrap(self, unit_scale):
        result = experiments.run_random_vs_sim_bootstrap(unit_scale, num_random_agents=2)
        assert result["random_median_slowdown"] > 1.0
        assert result["sim_bootstrap_slowdown"] < result["random_max_slowdown"] * 2
        assert result["expert_runtime"] > 0

    def test_table2_simulation_efficiency(self, unit_scale):
        result = experiments.run_table2_simulation_efficiency(unit_scale, workloads=("job",))
        row = result["rows"][0]
        assert row["dataset_size"] > 0
        assert row["collection_minutes"] >= 0
        assert row["train_minutes"] >= 0

    def test_figure6_speedups_structure(self, unit_scale):
        result = experiments.run_figure6_speedups(
            unit_scale, workloads=("job",), experts=("postgres",)
        )
        row = result["rows"][0]
        assert row["workload"] == "job" and row["expert"] == "postgres"
        assert math.isfinite(row["train_speedup"]) and row["train_speedup"] > 0
        assert math.isfinite(row["test_speedup"]) and row["test_speedup"] > 0

    def test_figure14_planning_time(self, unit_scale):
        result = experiments.run_figure14_planning_time(
            unit_scale, beam_sizes=(1, 2), top_ks=(1,)
        )
        assert len(result["rows"]) == 2
        for row in result["rows"]:
            assert row["mean_planning_ms"] > 0
            assert row["normalized_runtime"] > 0

    def test_figure18_behaviors(self, unit_scale):
        result = experiments.run_figure18_behaviors(unit_scale)
        series = result["series"]
        lengths = {len(v) for v in series.values()}
        assert len(lengths) == 1 and lengths.pop() == unit_scale.num_iterations
        for fractions in zip(series["merge_join"], series["nested_loop"], series["hash_join"]):
            assert abs(sum(fractions) - 1.0) < 1e-6
        assert set(result["expert"]) == set(series)
