"""Tests for hint sets, the top-level API facade and training-history helpers."""

import pytest

from repro import api
from repro.agent.history import IterationMetrics, TrainingHistory
from repro.execution.hints import STANDARD_HINT_SETS, HintSet
from repro.plans.nodes import JoinOperator, ScanOperator


class TestHintSets:
    def test_default_hint_set_allows_everything(self):
        hint = HintSet(name="all")
        assert all(hint.allows_join(op) for op in JoinOperator)
        assert all(hint.allows_scan(op) for op in ScanOperator)

    def test_standard_hint_sets_unique_names(self):
        names = [hint.name for hint in STANDARD_HINT_SETS]
        assert len(names) == len(set(names))

    def test_standard_hint_sets_first_is_unrestricted(self):
        first = STANDARD_HINT_SETS[0]
        assert all(first.allows_join(op) for op in JoinOperator)

    def test_every_hint_set_keeps_at_least_one_join_and_scan(self):
        for hint in STANDARD_HINT_SETS:
            assert any(hint.allows_join(op) for op in JoinOperator)
            assert any(hint.allows_scan(op) for op in ScanOperator)

    @pytest.mark.parametrize("hint", STANDARD_HINT_SETS, ids=lambda h: h.name)
    def test_disabled_operators_really_disabled(self, hint):
        if hint.name == "no_hashjoin":
            assert not hint.allows_join(JoinOperator.HASH_JOIN)
        if hint.name == "no_indexscan":
            assert not hint.allows_scan(ScanOperator.INDEX_SCAN)


class TestApiFacade:
    def test_reexports_main_entry_points(self):
        import repro

        assert repro.BalsaAgent is api.BalsaAgent
        assert repro.BalsaConfig is api.BalsaConfig
        assert repro.make_job_benchmark is api.make_job_benchmark
        assert repro.make_tpch_benchmark is api.make_tpch_benchmark

    def test_all_exports_resolve(self):
        for name in api.__all__:
            assert getattr(api, name) is not None

    def test_version_string(self):
        import repro

        assert repro.__version__.count(".") == 2


def _metrics(iteration, normalized, elapsed, test_normalized=None):
    return IterationMetrics(
        iteration=iteration,
        train_runtime=normalized * 10.0,
        best_known_runtime=normalized * 9.0,
        normalized_runtime=normalized,
        elapsed_seconds=elapsed,
        unique_plans_seen=10 * (iteration + 1),
        num_timeouts=0,
        planning_seconds=0.1,
        update_seconds=0.2,
        test_normalized_runtime=test_normalized,
    )


class TestTrainingHistory:
    def test_final_normalized_runtime(self):
        history = TrainingHistory(iterations=[_metrics(0, 2.0, 10.0), _metrics(1, 0.8, 20.0)])
        assert history.final_normalized_runtime() == 0.8
        assert TrainingHistory().final_normalized_runtime() is None

    def test_elapsed_hours(self):
        history = TrainingHistory(iterations=[_metrics(0, 2.0, 3600.0)])
        assert history.elapsed_hours() == [1.0]

    def test_time_to_match_expert(self):
        history = TrainingHistory(
            iterations=[_metrics(0, 2.0, 10.0), _metrics(1, 0.9, 20.0), _metrics(2, 0.7, 30.0)]
        )
        assert history.time_to_match_expert() == 20.0

    def test_time_to_match_expert_never(self):
        history = TrainingHistory(iterations=[_metrics(0, 2.0, 10.0)])
        assert history.time_to_match_expert() is None
