"""Balsa reproduction: a learned query optimizer without expert demonstrations.

The package is organised bottom-up:

- substrates: :mod:`repro.catalog`, :mod:`repro.storage`, :mod:`repro.sql`,
  :mod:`repro.plans`, :mod:`repro.cardinality`, :mod:`repro.costmodel`,
  :mod:`repro.execution`, :mod:`repro.optimizer`, :mod:`repro.nn`
- the learned optimizer: :mod:`repro.featurization`, :mod:`repro.model`,
  :mod:`repro.search`, :mod:`repro.simulation`, :mod:`repro.agent`
- baselines and evaluation: :mod:`repro.baselines`, :mod:`repro.diversity`,
  :mod:`repro.workloads`, :mod:`repro.evaluation`

The most convenient entry points are re-exported here.
"""

__version__ = "0.1.0"

from repro.api import (
    AdmissionError,
    BalsaAgent,
    BalsaConfig,
    BaoAgent,
    ModelLifecycle,
    ModelRegistry,
    NeoAgent,
    PlannerService,
    PlanRequest,
    PlanResult,
    make_job_benchmark,
    make_tpch_benchmark,
    registry_from_benchmark,
)

__all__ = [
    "__version__",
    "AdmissionError",
    "BalsaAgent",
    "BalsaConfig",
    "BaoAgent",
    "ModelLifecycle",
    "ModelRegistry",
    "NeoAgent",
    "PlannerService",
    "PlanRequest",
    "PlanResult",
    "make_job_benchmark",
    "make_tpch_benchmark",
    "registry_from_benchmark",
]
