"""Noise injection for cardinality estimates.

Paper §10 (footnote 11): *"We tried making them even more inaccurate, by
dividing them by random noises (a median noise factor of 5x), and saw little
impact on Balsa's plans."*  :class:`NoisyEstimator` reproduces that protocol:
each distinct (query, alias set) estimate is divided by a log-normally
distributed noise factor, deterministically derived from a seed so repeated
calls agree.
"""

from __future__ import annotations

import numpy as np

from repro.cardinality.base import CardinalityEstimator
from repro.sql.query import Query
from repro.utils.rng import derive_seed


class NoisyEstimator(CardinalityEstimator):
    """Wraps an estimator and corrupts its estimates with random factors.

    Args:
        inner: The estimator to corrupt.
        median_factor: Median of the noise-factor distribution (5.0 reproduces
            the paper's experiment).
        seed: Root seed; each (query, alias set) pair gets an independent,
            stable factor.
    """

    def __init__(
        self, inner: CardinalityEstimator, median_factor: float = 5.0, seed: int = 0
    ):
        if median_factor <= 0:
            raise ValueError("median_factor must be positive")
        self.inner = inner
        self.median_factor = float(median_factor)
        self.seed = seed

    def base_rows(self, query: Query, alias: str) -> float:
        return self.inner.base_rows(query, alias)

    def estimate(self, query: Query, aliases: frozenset[str]) -> float:
        estimate = self.inner.estimate(query, aliases)
        return estimate / self._factor(query, aliases)

    def _factor(self, query: Query, aliases: frozenset[str]) -> float:
        rng = np.random.default_rng(
            derive_seed(self.seed, query.name, *sorted(aliases))
        )
        # Log-normal with median = median_factor; sigma chosen so factors span
        # roughly one order of magnitude.
        return float(np.exp(np.log(self.median_factor) + rng.normal(0.0, 0.75)))
