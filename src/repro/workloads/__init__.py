"""Workloads: JOB-like, Ext-JOB-like and TPC-H-like query sets plus benchmarks.

``make_job_benchmark`` / ``make_tpch_benchmark`` assemble everything an
experiment needs — synthetic database, execution engine, cardinality
estimator, featuriser, expert optimizers, train/test splits — into a single
:class:`~repro.workloads.benchmark.WorkloadBenchmark`.
"""

from repro.workloads.job import make_ext_job_queries, make_job_queries
from repro.workloads.tpch import make_tpch_queries
from repro.workloads.splits import random_split, slow_split, template_split
from repro.workloads.benchmark import (
    WorkloadBenchmark,
    make_job_benchmark,
    make_tpch_benchmark,
)

__all__ = [
    "make_job_queries",
    "make_ext_job_queries",
    "make_tpch_queries",
    "random_split",
    "slow_split",
    "template_split",
    "WorkloadBenchmark",
    "make_job_benchmark",
    "make_tpch_benchmark",
]
