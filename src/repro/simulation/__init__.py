"""Simulation bootstrapping (paper §3).

Balsa's first training stage never executes a query: dynamic programming
enumerates plans for every training query, a minimal cost model
(:math:`C_{out}`) scores them, subplan augmentation multiplies the data, and
the value network :math:`V_{sim}` is trained on the result in a standard
supervised fashion.
"""

from repro.simulation.collect import (
    SimulationDataPoint,
    SimulationDataset,
    collect_simulation_data,
)
from repro.simulation.augment import augment_data_point
from repro.simulation.trainer import SimulationStats, train_simulation_model

__all__ = [
    "SimulationDataPoint",
    "SimulationDataset",
    "collect_simulation_data",
    "augment_data_point",
    "SimulationStats",
    "train_simulation_model",
]
