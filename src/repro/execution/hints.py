"""Hint sets: restrictions on the physical operators an optimizer may use.

Two users of hint sets exist in the paper:

- plans produced by Balsa are injected into the engine via ``pg_hint_plan``;
  in this reproduction injection is trivial because the engine executes
  exactly the plan it is given.
- the Bao baseline (§8.4.1) steers the *expert* optimizer by choosing, per
  query, a hint set that disables some operators.  :data:`STANDARD_HINT_SETS`
  provides the operator-disabling arms used by our Bao implementation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.plans.nodes import JoinOperator, ScanOperator


@dataclass(frozen=True)
class HintSet:
    """A set of allowed physical operators.

    Attributes:
        name: Human-readable hint-set name (e.g. ``"no_hashjoin"``).
        join_operators: Join operators the optimizer may use.
        scan_operators: Scan operators the optimizer may use.
    """

    name: str
    join_operators: tuple[JoinOperator, ...] = field(
        default=(JoinOperator.HASH_JOIN, JoinOperator.MERGE_JOIN, JoinOperator.NESTED_LOOP)
    )
    scan_operators: tuple[ScanOperator, ...] = field(
        default=(ScanOperator.SEQ_SCAN, ScanOperator.INDEX_SCAN)
    )

    def allows_join(self, operator: JoinOperator) -> bool:
        """Whether the hint set permits ``operator``."""
        return operator in self.join_operators

    def allows_scan(self, operator: ScanOperator) -> bool:
        """Whether the hint set permits ``operator``."""
        return operator in self.scan_operators


def _arm(name: str, joins: tuple[JoinOperator, ...], scans: tuple[ScanOperator, ...]) -> HintSet:
    return HintSet(name=name, join_operators=joins, scan_operators=scans)


_ALL_JOINS = (JoinOperator.HASH_JOIN, JoinOperator.MERGE_JOIN, JoinOperator.NESTED_LOOP)
_ALL_SCANS = (ScanOperator.SEQ_SCAN, ScanOperator.INDEX_SCAN)

#: The operator-disabling arms used by the Bao baseline.  These mirror the
#: spirit of Bao's 48 hint sets: combinations of disabling hash joins, merge
#: joins, nested loops, index scans and sequential scans, pruned to the arms
#: that remain executable in this engine.
STANDARD_HINT_SETS: tuple[HintSet, ...] = (
    _arm("all_operators", _ALL_JOINS, _ALL_SCANS),
    _arm("no_hashjoin", (JoinOperator.MERGE_JOIN, JoinOperator.NESTED_LOOP), _ALL_SCANS),
    _arm("no_mergejoin", (JoinOperator.HASH_JOIN, JoinOperator.NESTED_LOOP), _ALL_SCANS),
    _arm("no_nestloop", (JoinOperator.HASH_JOIN, JoinOperator.MERGE_JOIN), _ALL_SCANS),
    _arm("no_indexscan", _ALL_JOINS, (ScanOperator.SEQ_SCAN,)),
    _arm("hash_only", (JoinOperator.HASH_JOIN,), _ALL_SCANS),
    _arm("nestloop_index_only", (JoinOperator.NESTED_LOOP,), _ALL_SCANS),
    _arm(
        "no_hash_no_index",
        (JoinOperator.MERGE_JOIN, JoinOperator.NESTED_LOOP),
        (ScanOperator.SEQ_SCAN,),
    ),
)
