"""HTTP gateway load benchmarks: single-process latency and sharded scale-out.

Not a paper figure — this measures the serving tier added on top of the
in-process stack.  Two benches share one keep-alive load harness:

- ``bench_http_gateway`` boots a single :class:`~repro.server.app.PlanningServer`
  on an ephemeral loopback port, drives it with multi-threaded load clients
  (every request a real HTTP exchange over a **reused** keep-alive
  connection, queries referenced by name), and compares against the identical
  workload planned through the in-process ``PlannerService`` directly;
- ``bench_sharded_gateway_sweep`` boots a
  :class:`~repro.server.sharding.ShardedGateway` at 1/2/4 workers over the
  same workload and measures warm QPS, per-worker QPS, p50/p99 and the
  shared plan-cache tier's warm hit rate at each worker count.

Headline figures land in ``benchmark.extra_info`` so ``--benchmark-json``
artifacts expose them to CI (``benchmarks/check_regression.py`` gates on
them): ``http_warm_p50_ms``, ``http_warm_p99_ms``, ``http_qps``,
``failed_requests`` (must be 0), ``telemetry_overhead_pct`` (the traced vs
tracing-disabled p50 delta as a share of the served warm p50, gated at
5%), and per worker count ``qps_w{N}``,
``qps_per_worker_w{N}``, ``p50_ms_w{N}``, ``p99_ms_w{N}``, ``failed_w{N}``,
``shared_cache_hit_rate`` plus ``qps_scaling_{max}w_vs_1w``.  The scaling
bar (≥1.6x at 4 workers) is asserted only on runners with ≥4 CPUs — a
1-CPU container cannot scale out and measures ~1x.
"""

from __future__ import annotations

import http.client
import json
import os
import threading
import time

from benchmarks.conftest import run_once
from repro.model.value_network import ValueNetwork, ValueNetworkConfig
from repro.planning.envelope import PlanRequest
from repro.search.beam import BeamSearchPlanner
from repro.server import PlanningServer
from repro.server.sharding import ShardedGateway, WorkerSpec
from repro.service.service import PlannerService
from repro.telemetry import SamplingProfiler
from repro.telemetry import enabled as telemetry_enabled
from repro.telemetry import set_enabled, start_trace
from repro.workloads.benchmark import make_job_benchmark

#: CI smoke mode (REPRO_BENCH_QUICK=1) shrinks the workload further.
QUICK = os.environ.get("REPRO_BENCH_QUICK", "") == "1"

NUM_CLIENTS = 2 if QUICK else 4
REQUESTS_PER_CLIENT = 20 if QUICK else 100
WORKER_COUNTS = (1, 2, 4)
SWEEP_REQUESTS_PER_CLIENT = 15 if QUICK else 60

#: The 4-vs-1-worker QPS bar, enforced only where the hardware can scale.
MIN_SCALING = 1.6
MIN_SCALING_CPUS = 4


def _percentile(values: list[float], fraction: float) -> float:
    ordered = sorted(values)
    if not ordered:
        return 0.0
    index = min(int(fraction * len(ordered)), len(ordered) - 1)
    return ordered[index]


class KeepAliveClient:
    """A load client that reuses one HTTP/1.1 connection across requests.

    The previous harness paid a fresh TCP handshake per request, which both
    understated gateway QPS and (for the sharded gateway) re-rolled the
    worker every request; a keep-alive connection measures steady-state
    traffic and pins each client to whichever worker accepted it — exactly
    how a real connection-pooling client behaves.
    """

    def __init__(self, host: str, port: int, timeout: float = 60.0):
        self._conn = http.client.HTTPConnection(host, port, timeout=timeout)

    def post_plan(self, payload: dict) -> dict:
        body = json.dumps(payload).encode("utf-8")
        try:
            self._conn.request(
                "POST", "/v1/plan", body=body,
                headers={"Content-Type": "application/json"},
            )
            response = self._conn.getresponse()
            data = response.read()
            if response.status != 200:
                raise RuntimeError(f"HTTP {response.status}: {data[:200]!r}")
            return json.loads(data)
        except Exception:
            # Drop the (possibly desynchronised) connection; the next request
            # reconnects — keep-alive is an optimisation, not a correctness
            # dependency.
            self._conn.close()
            raise

    def close(self) -> None:
        self._conn.close()


def _make_workload():
    bundle = make_job_benchmark(
        fact_rows=300, num_queries=8, num_templates=4, test_size=2,
        seed=0, size_range=(3, 4),
    )
    network = ValueNetwork(
        bundle.featurizer,
        ValueNetworkConfig(
            query_hidden=16, query_embedding=8, tree_channels=(16, 8),
            head_hidden=8, seed=0,
        ),
    )
    return bundle, list(bundle.train_queries), network


def _small_planner() -> BeamSearchPlanner:
    return BeamSearchPlanner(beam_size=3, top_k=2, enumerate_scan_operators=False)


def _drive(
    host: str,
    port: int,
    queries,
    num_clients: int,
    requests_per_client: int,
) -> tuple[list[float], float, int]:
    """Concurrent keep-alive load; returns (latencies, seconds, failures)."""
    latencies_per_client: list[list[float]] = [[] for _ in range(num_clients)]
    failures = [0] * num_clients

    def client(slot: int) -> None:
        connection = KeepAliveClient(host, port)
        try:
            for index in range(requests_per_client):
                query = queries[(slot + index) % len(queries)]
                started = time.perf_counter()
                try:
                    body = connection.post_plan({"query": query.name, "k": 2})
                    if not body["plans"]:
                        failures[slot] += 1
                except Exception:  # noqa: BLE001 - counted, not hidden
                    failures[slot] += 1
                latencies_per_client[slot].append(time.perf_counter() - started)
        finally:
            connection.close()

    threads = [
        threading.Thread(target=client, args=(slot,)) for slot in range(num_clients)
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started
    latencies = [value for chunk in latencies_per_client for value in chunk]
    return latencies, elapsed, sum(failures)


# ---------------------------------------------------------------------- #
# Single-process gateway vs in-process
# ---------------------------------------------------------------------- #
def _run_gateway_load() -> dict:
    _, queries, network = _make_workload()
    service = PlannerService(network, planner=_small_planner(), max_workers=4)
    # The gateway's own profiler acquisition is disabled so the dedicated
    # profiler-overhead measurement below controls exactly one sampler.
    gateway = PlanningServer(service, queries=queries, profile=False).start()
    try:
        host, port = "127.0.0.1", gateway.port

        # Cold pass: every distinct query planned once over one connection.
        cold_client = KeepAliveClient(host, port)
        cold_latencies: list[float] = []
        try:
            for query in queries:
                started = time.perf_counter()
                body = cold_client.post_plan({"query": query.name, "k": 2})
                cold_latencies.append(time.perf_counter() - started)
                assert body["plans"], f"no plans for {query.name}"
        finally:
            cold_client.close()

        # Warm pass: concurrent clients over the (now cached) workload.
        warm_latencies, warm_seconds, failed = _drive(
            host, port, queries, NUM_CLIENTS, REQUESTS_PER_CLIENT
        )

        # In-process warm pass over the identical request stream.
        inproc_latencies: list[float] = []
        for index in range(NUM_CLIENTS * REQUESTS_PER_CLIENT):
            query = queries[index % len(queries)]
            started = time.perf_counter()
            response = service.plan(PlanRequest(query=query, k=2))
            inproc_latencies.append(time.perf_counter() - started)
            assert response.plans

        # Telemetry overhead: the identical warm stream, once fully traced
        # (every request inside a start_trace, as the HTTP layer does) and
        # once with tracing disabled.  start_trace stays in both loops — it
        # is the telemetry cost under test, a no-op when disabled.
        def traced_pass() -> list[float]:
            latencies: list[float] = []
            for index in range(NUM_CLIENTS * REQUESTS_PER_CLIENT):
                query = queries[index % len(queries)]
                started = time.perf_counter()
                with start_trace("/v1/plan"):
                    service.plan(PlanRequest(query=query, k=2))
                latencies.append(time.perf_counter() - started)
            return latencies

        was_enabled = telemetry_enabled()
        try:
            set_enabled(True)
            telemetry_on = traced_pass()
            set_enabled(False)
            telemetry_off = traced_pass()
        finally:
            set_enabled(was_enabled)

        # Continuous-profiler overhead: the identical warm in-process stream
        # with the sampling profiler running vs stopped (same measurement
        # shape as the telemetry overhead above — the delta is expressed
        # against the served warm p50 the watchtower actually profiles).
        def plain_pass() -> list[float]:
            latencies: list[float] = []
            for index in range(NUM_CLIENTS * REQUESTS_PER_CLIENT):
                query = queries[index % len(queries)]
                started = time.perf_counter()
                service.plan(PlanRequest(query=query, k=2))
                latencies.append(time.perf_counter() - started)
            return latencies

        profiler = SamplingProfiler(process="bench-gateway")
        profiler.start()
        try:
            profiler_on = plain_pass()
        finally:
            profiler.stop()
        profiler_samples = profiler.snapshot()["samples"]
        profiler_off = plain_pass()

        metrics = service.metrics()
    finally:
        gateway.close()
        service.close()

    http_p50 = _percentile(warm_latencies, 0.50)
    inproc_p50 = _percentile(inproc_latencies, 0.50)
    on_p50 = _percentile(telemetry_on, 0.50)
    off_p50 = _percentile(telemetry_off, 0.50)
    # The traced-vs-untraced delta is measured in-process (microsecond-stable,
    # no HTTP jitter) and expressed against the served warm p50 — the request
    # path the trace actually wraps.  A raw on/off ratio on the in-process
    # path would divide span bookkeeping by a ~50us cache hit and report
    # noise, not the cost a caller sees.
    overhead_ms = max(0.0, (on_p50 - off_p50) * 1e3)
    overhead_pct = overhead_ms / max(http_p50 * 1e3, 1e-9) * 100.0
    prof_on_p50 = _percentile(profiler_on, 0.50)
    prof_off_p50 = _percentile(profiler_off, 0.50)
    profiler_overhead_ms = max(0.0, (prof_on_p50 - prof_off_p50) * 1e3)
    profiler_overhead_pct = (
        profiler_overhead_ms / max(http_p50 * 1e3, 1e-9) * 100.0
    )
    return {
        "queries": len(queries),
        "clients": NUM_CLIENTS,
        "http_requests": len(warm_latencies) + len(cold_latencies),
        "failed_requests": failed,
        "http_cold_p50_ms": _percentile(cold_latencies, 0.50) * 1e3,
        "http_warm_p50_ms": http_p50 * 1e3,
        "http_warm_p99_ms": _percentile(warm_latencies, 0.99) * 1e3,
        "http_qps": len(warm_latencies) / max(warm_seconds, 1e-9),
        "inproc_warm_p50_ms": inproc_p50 * 1e3,
        "inproc_warm_p99_ms": _percentile(inproc_latencies, 0.99) * 1e3,
        "http_overhead_p50_ms": (http_p50 - inproc_p50) * 1e3,
        "service_cache_hit_rate": metrics.hit_rate,
        "telemetry_on_p50_ms": on_p50 * 1e3,
        "telemetry_off_p50_ms": off_p50 * 1e3,
        "telemetry_overhead_ms": overhead_ms,
        "telemetry_overhead_pct": overhead_pct,
        "profiler_on_p50_ms": prof_on_p50 * 1e3,
        "profiler_off_p50_ms": prof_off_p50 * 1e3,
        "profiler_overhead_ms": profiler_overhead_ms,
        "profiler_overhead_pct": profiler_overhead_pct,
        "profiler_samples": profiler_samples,
    }


def bench_http_gateway(benchmark):
    result = run_once(benchmark, _run_gateway_load)
    print()
    print(
        f"gateway load: {result['http_requests']} HTTP requests from "
        f"{result['clients']} keep-alive clients, "
        f"{result['failed_requests']} failed"
    )
    print(
        f"warm latency: http p50 {result['http_warm_p50_ms']:.2f}ms / "
        f"p99 {result['http_warm_p99_ms']:.2f}ms at "
        f"{result['http_qps']:.0f} q/s; in-process p50 "
        f"{result['inproc_warm_p50_ms']:.2f}ms "
        f"(HTTP overhead {result['http_overhead_p50_ms']:.2f}ms/request)"
    )
    print(
        f"telemetry: traced p50 {result['telemetry_on_p50_ms']:.2f}ms vs "
        f"disabled p50 {result['telemetry_off_p50_ms']:.2f}ms "
        f"(+{result['telemetry_overhead_ms']:.3f}ms, "
        f"{result['telemetry_overhead_pct']:.2f}% of the served warm p50)"
    )
    print(
        f"profiler: sampled p50 {result['profiler_on_p50_ms']:.2f}ms vs "
        f"unsampled p50 {result['profiler_off_p50_ms']:.2f}ms over "
        f"{result['profiler_samples']:.0f} samples "
        f"(+{result['profiler_overhead_ms']:.3f}ms, "
        f"{result['profiler_overhead_pct']:.2f}% of the served warm p50)"
    )
    assert result["failed_requests"] == 0
    for key, value in result.items():
        benchmark.extra_info[key] = round(float(value), 4)


# ---------------------------------------------------------------------- #
# Sharded gateway: worker-count sweep
# ---------------------------------------------------------------------- #
def _run_sharded_sweep() -> dict:
    bundle, queries, network = _make_workload()

    def factory(spec: WorkerSpec) -> PlanningServer:
        service = PlannerService(
            network, planner=_small_planner(), max_workers=2, cache_capacity=512
        )
        return PlanningServer(
            service, queries=bundle.all_queries(), host=spec.host, port=spec.port
        )

    report: dict = {"available_cpus": os.cpu_count() or 1}
    per_count: dict[int, dict] = {}
    for workers in WORKER_COUNTS:
        shard = ShardedGateway(
            factory,
            num_workers=workers,
            max_respawns=1,
            health_interval_seconds=0.5,
            drain_grace_seconds=0.05,
        )
        with shard:
            host, port = "127.0.0.1", shard.port
            num_clients = max(NUM_CLIENTS, 2 * workers)

            # Cold pass: one connection (pinned to one worker) fills the
            # shared tier, so the warm pass measures cross-worker hits.
            _, _, cold_failed = _drive(host, port, queries, 1, len(queries))
            before = shard.shared_cache_stats() or {}

            warm_latencies, warm_seconds, warm_failed = _drive(
                host, port, queries, num_clients, SWEEP_REQUESTS_PER_CLIENT
            )
            after = shard.shared_cache_stats() or {}

        # Warm-pass delta of the tier counters: every lookup the workers'
        # local LRUs could not answer should have hit the shared tier.
        hits = after.get("hits", 0) - before.get("hits", 0)
        misses = after.get("misses", 0) - before.get("misses", 0)
        lookups = hits + misses
        # A single worker warms its own L1 on the cold pass and never needs
        # the tier again; no lookups means nothing was shared-cache-missed.
        hit_rate = hits / lookups if lookups else 1.0
        qps = len(warm_latencies) / max(warm_seconds, 1e-9)
        per_count[workers] = {
            "qps": qps,
            "qps_per_worker": qps / workers,
            "p50_ms": _percentile(warm_latencies, 0.50) * 1e3,
            "p99_ms": _percentile(warm_latencies, 0.99) * 1e3,
            "failed": cold_failed + warm_failed,
            "shared_cache_hit_rate": hit_rate,
            "clients": num_clients,
        }

    for workers, row in per_count.items():
        report[f"qps_w{workers}"] = row["qps"]
        report[f"qps_per_worker_w{workers}"] = row["qps_per_worker"]
        report[f"p50_ms_w{workers}"] = row["p50_ms"]
        report[f"p99_ms_w{workers}"] = row["p99_ms"]
        report[f"failed_w{workers}"] = row["failed"]
        report[f"shared_cache_hit_rate_w{workers}"] = row["shared_cache_hit_rate"]
    report["failed_requests"] = sum(row["failed"] for row in per_count.values())
    report["shared_cache_hit_rate"] = min(
        row["shared_cache_hit_rate"]
        for workers, row in per_count.items()
        if workers > 1
    )
    top = max(WORKER_COUNTS)
    report[f"qps_scaling_{top}w_vs_1w"] = (
        per_count[top]["qps"] / max(per_count[1]["qps"], 1e-9)
    )
    return report


def bench_sharded_gateway_sweep(benchmark):
    result = run_once(benchmark, _run_sharded_sweep)
    top = max(WORKER_COUNTS)
    scaling = result[f"qps_scaling_{top}w_vs_1w"]
    print()
    print(
        f"sharded gateway sweep on {result['available_cpus']} CPUs "
        f"({'quick' if QUICK else 'full'} mode):"
    )
    for workers in WORKER_COUNTS:
        print(
            f"  {workers} worker(s): {result[f'qps_w{workers}']:.0f} q/s "
            f"({result[f'qps_per_worker_w{workers}']:.0f}/worker), "
            f"p50 {result[f'p50_ms_w{workers}']:.2f}ms / "
            f"p99 {result[f'p99_ms_w{workers}']:.2f}ms, "
            f"{result[f'failed_w{workers}']} failed, "
            f"tier hit rate {result[f'shared_cache_hit_rate_w{workers}']:.2f}"
        )
    print(
        f"  scaling {top}w vs 1w: {scaling:.2f}x "
        f"(bar {MIN_SCALING}x enforced at >={MIN_SCALING_CPUS} CPUs); "
        f"warm shared-cache hit rate {result['shared_cache_hit_rate']:.2f}"
    )
    assert result["failed_requests"] == 0
    assert result["shared_cache_hit_rate"] >= 0.9
    if result["available_cpus"] >= MIN_SCALING_CPUS:
        assert scaling >= MIN_SCALING, (
            f"{top}-worker QPS scaled only {scaling:.2f}x over 1 worker"
        )
    for key, value in result.items():
        benchmark.extra_info[key] = round(float(value), 4)
