"""String-keyed planner registry.

A :class:`PlannerRegistry` maps names like ``"beam"``, ``"dp"`` or
``"postgres"`` to :class:`~repro.planning.protocol.Planner` instances so that
"compare N planners" or "serve planner X" become one-line operations::

    registry = benchmark.planner_registry(network=agent.value_network)
    for name in registry.available():
        result = registry.get(name).plan(PlanRequest(query=q, k=3))

The module also keeps one process-wide default registry behind the
module-level :func:`register` / :func:`get` / :func:`unregister` /
:func:`available` functions, which is what ``repro.planning.get("beam")``
resolves against.  Benchmark-built registries can be installed into it with
``registry_from_benchmark(benchmark, install=True)``.
"""

from __future__ import annotations

from threading import Lock

from repro.planning.envelope import UnknownPlannerError
from repro.planning.protocol import Planner


class PlannerRegistry:
    """A mutable, thread-safe mapping of planner names to planner instances."""

    def __init__(self):
        self._planners: dict[str, Planner] = {}
        self._lock = Lock()

    def register(self, name: str, planner: Planner, replace: bool = False) -> Planner:
        """Register ``planner`` under ``name``.

        Args:
            name: Non-empty registry key.
            planner: Any object implementing the :class:`Planner` protocol.
            replace: Allow overwriting an existing entry.

        Returns:
            The registered planner (for chaining).
        """
        if not isinstance(name, str) or not name:
            raise ValueError(f"planner name must be a non-empty string, got {name!r}")
        if not callable(getattr(planner, "plan", None)):
            raise TypeError(
                f"planner {planner!r} does not implement the Planner protocol "
                "(missing a callable .plan)"
            )
        with self._lock:
            if name in self._planners and not replace:
                raise ValueError(
                    f"planner {name!r} is already registered; pass replace=True to overwrite"
                )
            self._planners[name] = planner
        return planner

    def get(self, name: str) -> Planner:
        """Look up the planner registered under ``name``."""
        with self._lock:
            try:
                return self._planners[name]
            except KeyError:
                raise UnknownPlannerError(
                    f"unknown planner {name!r}; registered: {sorted(self._planners) or 'none'}"
                ) from None

    def unregister(self, name: str) -> None:
        """Remove ``name`` from the registry (missing names raise)."""
        with self._lock:
            if name not in self._planners:
                raise UnknownPlannerError(f"unknown planner {name!r}")
            del self._planners[name]

    def available(self) -> list[str]:
        """Sorted names of every registered planner."""
        with self._lock:
            return sorted(self._planners)

    def clear(self) -> None:
        """Drop every registration."""
        with self._lock:
            self._planners.clear()

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._planners

    def __len__(self) -> int:
        with self._lock:
            return len(self._planners)


#: The process-wide default registry behind ``repro.planning.get(...)``.
default_registry = PlannerRegistry()


def register(name: str, planner: Planner, replace: bool = False) -> Planner:
    """Register ``planner`` under ``name`` in the default registry."""
    return default_registry.register(name, planner, replace=replace)


def get(name: str) -> Planner:
    """Look up ``name`` in the default registry."""
    return default_registry.get(name)


def unregister(name: str) -> None:
    """Remove ``name`` from the default registry."""
    default_registry.unregister(name)


def available() -> list[str]:
    """Names registered in the default registry."""
    return default_registry.available()
