"""Setuptools shim.

The offline environment has no ``wheel`` package, so PEP 660 editable installs
(``pip install -e .`` with build isolation) cannot build a wheel.  This shim
lets ``pip install -e . --no-build-isolation --no-use-pep517`` (and plain
``python setup.py develop``) work; all project metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
