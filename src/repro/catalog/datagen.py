"""Synthetic data generation for a :class:`~repro.catalog.schema.Schema`.

The generator produces integer/float numpy columns with controllable skew so
that the resulting database has the properties that make join ordering hard
in the real Join Order Benchmark: highly skewed foreign keys, correlated
fact-table sizes spanning two orders of magnitude, and filters whose
selectivities the histogram estimator gets wrong by large factors.
"""

from __future__ import annotations

import numpy as np

from repro.catalog.schema import ColumnDef, ColumnKind, Schema, TableDef
from repro.storage.database import Database
from repro.storage.table import Table
from repro.utils.rng import new_rng


def zipf_probabilities(num_values: int, skew: float) -> np.ndarray:
    """Zipf-like probability vector over ``num_values`` ranks.

    ``skew=0`` yields the uniform distribution; larger values concentrate
    probability mass on low ranks.
    """
    if num_values <= 0:
        raise ValueError("num_values must be positive")
    ranks = np.arange(1, num_values + 1, dtype=np.float64)
    weights = ranks ** (-float(skew)) if skew > 0 else np.ones(num_values)
    return weights / weights.sum()


def sample_zipf(
    rng: np.random.Generator, values: np.ndarray, size: int, skew: float
) -> np.ndarray:
    """Sample ``size`` elements from ``values`` with Zipf-like skew over ranks."""
    probabilities = zipf_probabilities(len(values), skew)
    indices = rng.choice(len(values), size=size, p=probabilities)
    return values[indices]


def _generate_column(
    rng: np.random.Generator,
    column: ColumnDef,
    num_rows: int,
    referenced_keys: np.ndarray | None,
) -> np.ndarray:
    """Generate one column's data array."""
    if column.kind is ColumnKind.PRIMARY_KEY:
        return np.arange(num_rows, dtype=np.int64)
    if column.kind is ColumnKind.FOREIGN_KEY:
        if referenced_keys is None or len(referenced_keys) == 0:
            raise ValueError(f"foreign key column {column.name!r} has no referenced keys")
        data = sample_zipf(rng, referenced_keys, num_rows, column.skew).astype(np.int64)
    elif column.kind is ColumnKind.CATEGORICAL:
        distinct = max(1, int(column.distinct))
        domain = np.arange(distinct, dtype=np.int64)
        data = sample_zipf(rng, domain, num_rows, column.skew)
    elif column.kind is ColumnKind.NUMERIC:
        data = rng.uniform(column.low, column.high, size=num_rows)
        data = np.floor(data).astype(np.int64)
    else:  # pragma: no cover - exhaustive enum
        raise ValueError(f"unknown column kind {column.kind}")
    if column.null_fraction > 0:
        null_mask = rng.random(num_rows) < column.null_fraction
        data = data.copy()
        data[null_mask] = -1
    return data


def _generation_order(schema: Schema) -> list[TableDef]:
    """Topologically order tables so referenced tables are generated first."""
    remaining = dict(schema.tables)
    ordered: list[TableDef] = []
    emitted: set[str] = set()
    while remaining:
        progress = False
        for name in list(remaining):
            table = remaining[name]
            deps = {fk.ref_table for fk in table.foreign_keys if fk.ref_table != name}
            if deps <= emitted:
                ordered.append(table)
                emitted.add(name)
                del remaining[name]
                progress = True
        if not progress:
            # FK cycles: emit the rest in declaration order; FK columns then
            # reference whatever keys already exist (possible dangling refs are
            # acceptable for synthetic data).
            for name in list(remaining):
                ordered.append(remaining.pop(name))
                emitted.add(name)
    return ordered


def generate_database(
    schema: Schema,
    scale: float = 1.0,
    seed: int | np.random.Generator = 0,
    min_rows: int = 8,
) -> Database:
    """Materialise a synthetic database for ``schema``.

    Args:
        schema: Schema to instantiate.
        scale: Linear multiplier on each table's ``base_rows``.
        seed: RNG seed or generator.
        min_rows: Floor on per-table row counts, so tiny scales keep joins
            meaningful.

    Returns:
        A populated :class:`~repro.storage.database.Database`.
    """
    schema.validate()
    rng = new_rng(seed)
    database = Database(schema=schema, scale=scale)
    for table_def in _generation_order(schema):
        num_rows = max(min_rows, int(round(table_def.base_rows * scale)))
        columns: dict[str, np.ndarray] = {
            "id": np.arange(num_rows, dtype=np.int64)
        }
        for column in table_def.columns:
            referenced: np.ndarray | None = None
            fk = table_def.foreign_key_for(column.name)
            if fk is not None and fk.ref_table in database.tables:
                referenced = database.tables[fk.ref_table].columns[fk.ref_column]
            kind = column.kind
            if fk is not None and kind is not ColumnKind.FOREIGN_KEY:
                kind = ColumnKind.FOREIGN_KEY
            effective = ColumnDef(
                name=column.name,
                kind=kind,
                distinct=column.distinct,
                low=column.low,
                high=column.high,
                skew=column.skew,
                null_fraction=column.null_fraction,
            )
            columns[column.name] = _generate_column(rng, effective, num_rows, referenced)
        database.add_table(Table(name=table_def.name, columns=columns))
    return database
