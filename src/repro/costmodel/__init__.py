"""Cost models used as simulators and by the expert optimizers.

- :class:`~repro.costmodel.cout.CoutCostModel` — the paper's minimal,
  logical-only simulator (§3.1): the cost of a plan is the sum of the
  estimated result sizes of all its operators.
- :class:`~repro.costmodel.cmm.CmmCostModel` — the in-memory cost model of
  Leis et al., mentioned in §3.3 as a middle ground with some physical
  knowledge.
- :class:`~repro.costmodel.expert.ExpertCostModel` — a PostgreSQL-style
  physical cost model (per-operator formulas mirroring the execution engine's
  work model but fed by *estimated* cardinalities).  It plays two roles:
  the cost model inside the expert optimizers, and the "Expert Simulator"
  ablation of Figure 10.
"""

from repro.costmodel.base import CostModel
from repro.costmodel.cout import CoutCostModel
from repro.costmodel.cmm import CmmCostModel
from repro.costmodel.expert import ExpertCostModel

__all__ = [
    "CostModel",
    "CoutCostModel",
    "CmmCostModel",
    "ExpertCostModel",
]
