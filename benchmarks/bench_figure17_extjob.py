"""Figure 17: generalising to Ext-JOB (out-of-distribution join templates).

Paper: with JOB as the training set, neither Balsa nor Neo-impl beats the
expert on Ext-JOB, but Balsa is far more stable; merging 8 agents' experience
(Balsa-8x) matches the expert immediately and ends ~20% faster, while Balsa-1x
does not.  The shape to check: Balsa-Nx's Ext-JOB normalised runtime is no
worse than Balsa-1x's.
"""

from benchmarks.conftest import run_once
from repro.evaluation import experiments
from repro.evaluation.reporting import format_table


def bench_figure17_extjob(benchmark, scale):
    result = run_once(benchmark, experiments.run_figure17_extjob, scale, num_agents=2)
    normalized = result["ext_job_normalized_runtime"]
    print()
    print(
        format_table(
            ["agent", "Ext-JOB normalized runtime (lower is better)"],
            [[name, value] for name, value in normalized.items()],
            title="Figure 17: Ext-JOB generalisation",
        )
    )
    assert normalized["balsa_nx"] <= normalized["balsa_1x"] * 1.5
