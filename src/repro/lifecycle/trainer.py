"""Background fine-tuning: train version N+1 while version N keeps serving.

The :class:`BackgroundTrainer` owns a single dedicated training thread.  A
``submit()`` call clones the base network (or restores a registry snapshot),
fine-tunes the clone on the supplied experience with the ordinary
:class:`~repro.model.trainer.ValueNetworkTrainer`, registers the result as a
candidate snapshot in the :class:`~repro.lifecycle.registry.ModelRegistry`,
and returns a future — the serving path never blocks on SGD.

Training on a *clone* is what makes the overlap safe: the serving network's
weights are never touched, so beam searches in flight keep scoring against a
consistent version while the candidate converges off to the side.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Sequence

from repro.featurization.featurizer import FeaturizedExample
from repro.lifecycle.registry import ModelRegistry
from repro.lifecycle.snapshot import LifecycleError, ModelSnapshot
from repro.model.trainer import TrainingHistory, ValueNetworkTrainer
from repro.model.value_network import ValueNetwork


@dataclass
class FineTuneReport:
    """What one background fine-tune produced.

    Attributes:
        snapshot: The candidate snapshot registered in the model registry.
        history: The training-loss history of the fine-tune.
        train_seconds: Wall-clock time spent training (off the serving path).
        examples: Number of training examples consumed.
    """

    snapshot: ModelSnapshot
    history: TrainingHistory
    train_seconds: float
    examples: int


class BackgroundTrainer:
    """Fine-tunes candidate networks off the serving path.

    Args:
        registry: Registry that receives the candidate snapshots.
        learning_rate: Adam step size for fine-tunes.
        batch_size: Minibatch size.
        max_epochs: Default epoch budget per fine-tune.
        validation_fraction: Held-out fraction for early stopping.
        patience: Early-stopping patience in epochs.
        seed: Seed for shuffling/splitting.
    """

    def __init__(
        self,
        registry: ModelRegistry,
        learning_rate: float = 1e-3,
        batch_size: int = 128,
        max_epochs: int = 5,
        validation_fraction: float = 0.1,
        patience: int = 2,
        seed: int = 0,
    ):
        self.registry = registry
        self.learning_rate = learning_rate
        self.batch_size = batch_size
        self.max_epochs = max_epochs
        self.validation_fraction = validation_fraction
        self.patience = patience
        self.seed = seed
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="lifecycle-trainer"
        )
        self._lock = threading.Lock()
        self._pending = 0
        self._closed = False

    # ------------------------------------------------------------------ #
    # Submission
    # ------------------------------------------------------------------ #
    def submit(
        self,
        base: ValueNetwork,
        examples: Sequence[FeaturizedExample],
        labels: Sequence[float],
        *,
        parent_version: int | None = None,
        refit_label_transform: bool = False,
        max_epochs: int | None = None,
        source: str = "fine-tune",
        tag: str = "",
    ) -> Future:
        """Enqueue a fine-tune of a clone of ``base``; returns a future.

        The clone is taken synchronously (so ``base`` may keep serving and
        even be retrained afterwards without racing this job); everything
        else runs on the background thread.  The future resolves to a
        :class:`FineTuneReport` whose snapshot is already registered.

        Args:
            base: Network whose weights seed the candidate.
            examples: Featurised training examples (featurise on the caller's
                thread — the featurizer cache is not synchronised).
            labels: Raw-unit targets, one per example.
            parent_version: Registry version of ``base`` (recorded as the
                candidate's lineage when given).
            refit_label_transform: Refit the label normalisation on these
                labels (keep False for incremental fine-tunes).
            max_epochs: Optional override of the configured epoch budget.
            source: Provenance string recorded on the snapshot.
            tag: Optional label recorded on the snapshot.
        """
        with self._lock:
            if self._closed:
                raise LifecycleError("background trainer is closed")
            self._pending += 1
        candidate = base.clone()
        try:
            future = self._executor.submit(
                self._train,
                candidate,
                list(examples),
                list(labels),
                parent_version,
                refit_label_transform,
                max_epochs,
                source,
                tag,
            )
        except BaseException:
            with self._lock:
                self._pending -= 1
            raise
        future.add_done_callback(self._on_done)
        return future

    def train(self, *args, **kwargs) -> FineTuneReport:
        """Synchronous convenience wrapper around :meth:`submit`."""
        return self.submit(*args, **kwargs).result()

    @property
    def pending(self) -> int:
        """Fine-tunes submitted but not yet finished."""
        with self._lock:
            return self._pending

    def close(self, wait: bool = True) -> None:
        """Stop accepting jobs and (optionally) wait for in-flight ones."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self._executor.shutdown(wait=wait)

    def __enter__(self) -> "BackgroundTrainer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # The training thread
    # ------------------------------------------------------------------ #
    def _on_done(self, _future: Future) -> None:
        with self._lock:
            self._pending -= 1

    def _train(
        self,
        candidate: ValueNetwork,
        examples: list[FeaturizedExample],
        labels: list[float],
        parent_version: int | None,
        refit_label_transform: bool,
        max_epochs: int | None,
        source: str,
        tag: str,
    ) -> FineTuneReport:
        started = time.perf_counter()
        trainer = ValueNetworkTrainer(
            candidate,
            learning_rate=self.learning_rate,
            batch_size=self.batch_size,
            max_epochs=max_epochs if max_epochs is not None else self.max_epochs,
            validation_fraction=self.validation_fraction,
            patience=self.patience,
            seed=self.seed,
        )
        history = trainer.fit(
            examples,
            labels,
            refit_label_transform=refit_label_transform,
            max_epochs=max_epochs,
        )
        snapshot = self.registry.register(
            candidate, source=source, parent_version=parent_version, tag=tag
        )
        return FineTuneReport(
            snapshot=snapshot,
            history=history,
            train_seconds=time.perf_counter() - started,
            examples=len(examples),
        )
