"""The planner service: concurrent, cache-aware multi-query planning.

``PlannerService`` is the front door for planning traffic.  Each request
passes through three layers:

1. the cross-query :class:`~repro.service.cache.ServicePlanCache` — a
   repeated query under an unchanged model returns its memoised top-k plans
   without searching;
2. single-flight deduplication — identical queries already being planned by
   another worker wait for that search instead of duplicating it;
3. the worker pool — independent queries plan concurrently, optionally
   sharing one :class:`~repro.service.batching.BatchedScoringBridge` so their
   beam frontiers coalesce into larger value-network forward passes.

Every request is timed (queue wait, planning, end-to-end) and the service
aggregates the stream into a :class:`~repro.service.metrics.ServiceMetrics`
report.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, Iterable

from repro.model.value_network import ValueNetwork
from repro.plans.nodes import PlanNode
from repro.search.beam import BeamSearchPlanner, PlannerResult
from repro.service.batching import BatchedScoringBridge
from repro.service.cache import CacheKey, ServicePlanCache
from repro.service.metrics import RequestStats, ServiceMetrics
from repro.sql.query import Query


@dataclass
class ServiceResponse:
    """What the service returns for one planning request.

    Attributes:
        query: The planned query.
        result: The planner's top-k output (shared with the cache on hits).
        stats: Per-request timing and cache status.
    """

    query: Query
    result: PlannerResult
    stats: RequestStats

    @property
    def best_plan(self) -> PlanNode:
        """The predicted-best plan."""
        return self.result.best_plan

    @property
    def cache_hit(self) -> bool:
        """Whether the plan cache answered this request."""
        return self.stats.cache_hit


class _Flight:
    """Completion signal for an in-flight search other requests can join."""

    __slots__ = ("done", "result", "error")

    def __init__(self):
        self.done = threading.Event()
        self.result: PlannerResult | None = None
        self.error: BaseException | None = None


class PlannerService:
    """A traffic-serving planning layer over one value network.

    Args:
        network: The value network guiding every search.  Mutually exclusive
            with ``network_provider``.
        network_provider: Zero-argument callable returning the current
            network; use this when the caller may swap the network object
            (e.g. an agent retraining from scratch).
        planner: Beam-search planner to run on cache misses.
        max_workers: Worker-pool size for :meth:`submit` / :meth:`plan_many`.
        cache_capacity: Plan-cache capacity in entries (0 disables caching).
        coalesce_scoring: Route scoring through the shared batching bridge so
            concurrent searches share forward passes.  Only engaged when
            ``max_workers > 1`` (with a single worker it cannot help).
        max_batch_size: Forward-pass size cap for the bridge.
        coalesce_wait_seconds: Straggler window of the bridge.
    """

    def __init__(
        self,
        network: ValueNetwork | None = None,
        *,
        network_provider: Callable[[], ValueNetwork | None] | None = None,
        planner: BeamSearchPlanner | None = None,
        max_workers: int = 4,
        cache_capacity: int = 4096,
        coalesce_scoring: bool = True,
        max_batch_size: int = 512,
        coalesce_wait_seconds: float = 0.001,
    ):
        if (network is None) == (network_provider is None):
            raise ValueError("provide exactly one of network / network_provider")
        if max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        self.network_provider = network_provider or (lambda: network)
        self.planner = planner or BeamSearchPlanner()
        self.max_workers = max_workers
        self.cache = ServicePlanCache(cache_capacity)
        self._bridge: BatchedScoringBridge | None = None
        if coalesce_scoring and max_workers > 1:
            self._bridge = BatchedScoringBridge(
                self._network,
                max_batch_size=max_batch_size,
                coalesce_wait_seconds=coalesce_wait_seconds,
            )
        self._executor: ThreadPoolExecutor | None = None
        self._executor_lock = threading.Lock()
        self._flights: dict[CacheKey, _Flight] = {}
        self._flight_lock = threading.Lock()
        self._metrics_lock = threading.Lock()
        # The value network's layers stash per-call activations on themselves,
        # so bare ``network.predict`` is not thread-safe.  With the bridge off
        # and several workers, scoring serialises through this lock instead.
        self._predict_lock = threading.Lock()
        self._closed = False
        self._reset_aggregates()

    # ------------------------------------------------------------------ #
    # Request API
    # ------------------------------------------------------------------ #
    def plan(self, query: Query) -> ServiceResponse:
        """Plan one query synchronously on the calling thread."""
        self._check_open()
        return self._handle(query, time.perf_counter())

    def submit(self, query: Query) -> Future[ServiceResponse]:
        """Enqueue one query onto the worker pool.

        With ``max_workers == 1`` the request is served on the calling thread
        instead (same semantics, already-completed future) so single-worker
        services never spawn threads that would outlive untidy callers.
        """
        self._check_open()
        if self.max_workers == 1:
            future: Future[ServiceResponse] = Future()
            try:
                future.set_result(self._handle(query, time.perf_counter()))
            except BaseException as error:
                future.set_exception(error)
            return future
        return self._pool().submit(self._handle, query, time.perf_counter())

    def plan_many(self, queries: Iterable[Query]) -> list[ServiceResponse]:
        """Plan several queries concurrently, preserving input order."""
        futures = [self.submit(query) for query in queries]
        return [future.result() for future in futures]

    # ------------------------------------------------------------------ #
    # Metrics
    # ------------------------------------------------------------------ #
    def metrics(self) -> ServiceMetrics:
        """Aggregate report over every request handled so far."""
        with self._metrics_lock:
            wall = 0.0
            if self._window_start is not None and self._window_end is not None:
                wall = max(self._window_end - self._window_start, 0.0)
            report = ServiceMetrics(
                requests=self._requests,
                cache_hits=self._cache_hits,
                cache_misses=self._cache_misses,
                coalesced_requests=self._coalesced,
                total_queue_wait_seconds=self._total_queue_wait,
                max_queue_wait_seconds=self._max_queue_wait,
                total_planning_seconds=self._total_planning,
                total_service_seconds=self._total_service,
                wall_seconds=wall,
            )
        report.cache = self.cache.stats()
        if self._bridge is not None:
            report.scoring = self._bridge.stats()
        return report

    def request_log(self) -> list[RequestStats]:
        """Per-request stats in completion order (capped at the most recent)."""
        with self._metrics_lock:
            return list(self._log)

    def reset_metrics(self) -> None:
        """Zero the aggregate counters and the throughput window."""
        with self._metrics_lock:
            self._reset_aggregates()

    def _reset_aggregates(self) -> None:
        self._requests = 0
        self._cache_hits = 0
        self._cache_misses = 0
        self._coalesced = 0
        self._total_queue_wait = 0.0
        self._max_queue_wait = 0.0
        self._total_planning = 0.0
        self._total_service = 0.0
        self._window_start: float | None = None
        self._window_end: float | None = None
        self._log: deque[RequestStats] = deque(maxlen=100_000)

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Drain the worker pool and stop the scoring bridge."""
        if self._closed:
            return
        self._closed = True
        if self._executor is not None:
            self._executor.shutdown(wait=True)
        if self._bridge is not None:
            self._bridge.close()

    def __enter__(self) -> "PlannerService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError("planner service is closed")

    def _pool(self) -> ThreadPoolExecutor:
        with self._executor_lock:
            if self._executor is None:
                self._executor = ThreadPoolExecutor(
                    max_workers=self.max_workers, thread_name_prefix="planner-worker"
                )
            return self._executor

    def _network(self) -> ValueNetwork:
        network = self.network_provider()
        if network is None:
            raise RuntimeError("planner service has no value network yet")
        return network

    def _handle(self, query: Query, submitted_at: float) -> ServiceResponse:
        started = time.perf_counter()
        queue_wait = max(started - submitted_at, 0.0)
        network = self._network()
        key = (query.fingerprint(), network.version_key())

        cached = self.cache.lookup(key)
        if cached is not None:
            return self._finish(
                query, cached, key, submitted_at, started,
                cache_hit=True, coalesced=False, planning_seconds=0.0,
                queue_wait=queue_wait,
            )

        flight, leader = self._join_flight(key)
        if not leader:
            flight.done.wait()
            if flight.error is not None:
                raise flight.error
            return self._finish(
                query, flight.result, key, submitted_at, started,
                cache_hit=False, coalesced=True, planning_seconds=0.0,
                queue_wait=queue_wait,
            )

        try:
            if self._bridge is not None:
                score_fn = self._bridge.score
            elif self.max_workers > 1:
                score_fn = self._locked_predict
            else:
                score_fn = None
            result = self.planner.plan(query, network, score_fn=score_fn)
            self.cache.store(key, result)
            flight.result = result
        except BaseException as error:
            flight.error = error
            raise
        finally:
            flight.done.set()
            with self._flight_lock:
                self._flights.pop(key, None)
        return self._finish(
            query, result, key, submitted_at, started,
            cache_hit=False, coalesced=False,
            planning_seconds=result.planning_seconds, queue_wait=queue_wait,
        )

    def _locked_predict(self, query: Query, plans: list[PlanNode]):
        """Thread-safe direct scoring for concurrent searches without a bridge."""
        with self._predict_lock:
            return self._network().predict(query, plans)

    def _join_flight(self, key: CacheKey) -> tuple[_Flight, bool]:
        """Join (or lead) the in-flight search for ``key``."""
        with self._flight_lock:
            flight = self._flights.get(key)
            if flight is not None:
                return flight, False
            flight = _Flight()
            self._flights[key] = flight
            return flight, True

    def _finish(
        self,
        query: Query,
        result: PlannerResult,
        key: CacheKey,
        submitted_at: float,
        started: float,
        cache_hit: bool,
        coalesced: bool,
        planning_seconds: float,
        queue_wait: float,
    ) -> ServiceResponse:
        completed = time.perf_counter()
        stats = RequestStats(
            query_name=query.name,
            cache_hit=cache_hit,
            coalesced=coalesced,
            queue_wait_seconds=queue_wait,
            planning_seconds=planning_seconds,
            service_seconds=completed - submitted_at,
            model_version=key[1],
        )
        with self._metrics_lock:
            self._requests += 1
            self._cache_hits += int(cache_hit)
            self._cache_misses += int(not cache_hit and not coalesced)
            self._coalesced += int(coalesced)
            self._total_queue_wait += queue_wait
            self._max_queue_wait = max(self._max_queue_wait, queue_wait)
            self._total_planning += planning_seconds
            self._total_service += stats.service_seconds
            if self._window_start is None:
                self._window_start = submitted_at
            else:
                self._window_start = min(self._window_start, submitted_at)
            self._window_end = (
                completed if self._window_end is None else max(self._window_end, completed)
            )
            self._log.append(stats)
        return ServiceResponse(query=query, result=result, stats=stats)
