"""Figure 10: impact of the initial simulator (expert sim / Balsa C_out sim / none).

Paper: more prior knowledge shortens time-to-expert (0.3h vs 1.4h vs 3.8h) and
agents without simulation are unstable on the test set.  The shape to check:
the no-simulation variant starts worse (higher initial normalised runtime)
than the simulator-bootstrapped variants.
"""

from benchmarks.conftest import run_once
from repro.evaluation import experiments
from repro.evaluation.reporting import format_series


def bench_figure10_simulator_ablation(benchmark, scale):
    result = run_once(
        benchmark,
        experiments.run_figure10_simulator_ablation,
        scale,
        variants=("expert", "cout", "none"),
    )
    print()
    print("Figure 10: normalized train runtime per iteration, by simulator")
    print(
        format_series(
            {name: curves["normalized_runtime"] for name, curves in result["curves"].items()}
        )
    )
    first = {name: curves["normalized_runtime"][0] for name, curves in result["curves"].items()}
    assert first["none"] >= min(first["cout"], first["expert"]) * 0.5
