"""Benchmark bundles: database + engine + workload splits + expert baselines.

A :class:`WorkloadBenchmark` is the top-level object examples, tests and the
experiment runners build on.  ``make_job_benchmark`` / ``make_tpch_benchmark``
produce ready-to-use bundles at a configurable data scale and workload size.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.agent.environment import BalsaEnvironment
from repro.cardinality.base import CardinalityEstimator
from repro.cardinality.estimator import HistogramEstimator
from repro.catalog.datagen import generate_database
from repro.catalog.imdb import make_imdb_schema
from repro.catalog.tpch import make_tpch_schema
from repro.execution.engine import ExecutionEngine
from repro.execution.latency import LatencyModel
from repro.featurization.featurizer import QueryPlanFeaturizer
from repro.optimizer.expert import (
    ExpertOptimizer,
    make_commdb_optimizer,
    make_postgres_optimizer,
)
from repro.plans.nodes import PlanNode
from repro.sql.query import Query, QuerySet
from repro.storage.database import Database
from repro.workloads.job import make_ext_job_queries, make_job_queries
from repro.workloads.splits import random_split, slow_split, template_split, slowest_templates
from repro.workloads.tpch import make_tpch_queries

if TYPE_CHECKING:
    from repro.model.value_network import ValueNetwork
    from repro.planning.registry import PlannerRegistry
    from repro.search.beam import BeamSearchPlanner
    from repro.service.service import PlannerService


@dataclass
class WorkloadBenchmark:
    """Everything needed to train and evaluate optimizers on one workload.

    Attributes:
        name: Benchmark name (``"job"``, ``"job_slow"``, ``"tpch"``, ...).
        database: The synthetic database.
        engine: The execution engine.
        estimator: The histogram cardinality estimator.
        featurizer: Shared query/plan featuriser.
        train_queries: Training split.
        test_queries: Test split.
        experts: Expert optimizers by name (``"postgres"``, ``"commdb"``).
        template_of: Query name -> template id (JOB-like workloads only).
        extra_queries: Additional query sets (e.g. ``"ext_job"``).
    """

    name: str
    database: Database
    engine: ExecutionEngine
    estimator: CardinalityEstimator
    featurizer: QueryPlanFeaturizer
    train_queries: QuerySet
    test_queries: QuerySet
    experts: dict[str, ExpertOptimizer] = field(default_factory=dict)
    template_of: dict[str, int] = field(default_factory=dict)
    extra_queries: dict[str, QuerySet] = field(default_factory=dict)
    _expert_plan_cache: dict[tuple[str, str], tuple[PlanNode, float]] = field(
        default_factory=dict, repr=False
    )

    # ------------------------------------------------------------------ #
    # Environments
    # ------------------------------------------------------------------ #
    def environment(self) -> BalsaEnvironment:
        """A fresh agent environment sharing this benchmark's substrate."""
        return BalsaEnvironment(
            database=self.database,
            engine=self.engine,
            estimator=self.estimator,
            featurizer=self.featurizer,
            train_queries=self.train_queries,
            test_queries=self.test_queries,
        )

    def all_queries(self) -> list[Query]:
        """Train + test queries."""
        return list(self.train_queries) + list(self.test_queries)

    def planner_service(
        self,
        network: ValueNetwork | None = None,
        planner: BeamSearchPlanner | None = None,
        **service_kwargs,
    ) -> PlannerService:
        """A :class:`PlannerService` serving this benchmark's traffic.

        Args:
            network: Value network guiding beam searches (e.g. a trained
                agent's ``value_network``, or a fresh one for smoke tests).
                Omit it to serve a protocol planner instead.
            planner: Optional custom beam-search planner, or — with no
                network — any :class:`~repro.planning.protocol.Planner`
                (e.g. ``self.planner_registry().get("postgres")``).
            **service_kwargs: Forwarded to :class:`PlannerService` (worker
                count, cache capacity, admission control, coalescing knobs).

        Returns:
            A ready-to-serve planner service (close it when done).
        """
        from repro.service.service import PlannerService

        if network is None:
            return PlannerService(planner=planner, **service_kwargs)
        return PlannerService(network, planner=planner, **service_kwargs)

    def planner_registry(
        self, network: ValueNetwork | None = None, **registry_kwargs
    ) -> PlannerRegistry:
        """A registry with the nine standard planners wired to this benchmark.

        Args:
            network: Value network for the ``"beam"`` entry (a fresh untrained
                one is built when omitted).
            **registry_kwargs: Forwarded to
                :func:`~repro.planning.adapters.registry_from_benchmark`
                (``bao=``/``neo=`` overrides, ``seed``, ``install``...).
        """
        from repro.planning.adapters import registry_from_benchmark

        return registry_from_benchmark(self, network, **registry_kwargs)

    # ------------------------------------------------------------------ #
    # Expert baselines
    # ------------------------------------------------------------------ #
    def expert(self, name: str = "postgres") -> ExpertOptimizer:
        """Look up an expert optimizer by name."""
        try:
            return self.experts[name]
        except KeyError:
            raise KeyError(
                f"unknown expert {name!r}; available: {sorted(self.experts)}"
            ) from None

    def expert_plan_and_latency(
        self, query: Query, expert: str = "postgres"
    ) -> tuple[PlanNode, float]:
        """The expert's plan for ``query`` and its executed latency (cached)."""
        key = (expert, query.name)
        if key not in self._expert_plan_cache:
            plan, _ = self.expert(expert).optimize_with_cost(query)
            result = self.engine.execute(query, plan)
            self._expert_plan_cache[key] = (plan, result.latency)
        return self._expert_plan_cache[key]

    def expert_runtimes(
        self, queries=None, expert: str = "postgres"
    ) -> dict[str, float]:
        """Per-query expert latencies for ``queries`` (default: train + test)."""
        targets = list(queries) if queries is not None else self.all_queries()
        return {
            query.name: self.expert_plan_and_latency(query, expert)[1]
            for query in targets
        }

    def expert_workload_runtime(self, queries, expert: str = "postgres") -> float:
        """Sum of the expert's per-query latencies over ``queries``."""
        runtimes = self.expert_runtimes(queries, expert)
        return float(sum(runtimes.values()))


# ---------------------------------------------------------------------- #
# Factories
# ---------------------------------------------------------------------- #
def _assemble(
    name: str,
    database: Database,
    train_queries: QuerySet,
    test_queries: QuerySet,
    latency_model: LatencyModel | None,
    template_of: dict[str, int] | None = None,
    extra_queries: dict[str, QuerySet] | None = None,
    max_dp_tables: int = 9,
) -> WorkloadBenchmark:
    database.build_join_indexes()
    engine = ExecutionEngine(database, latency_model=latency_model)
    estimator = HistogramEstimator(database)
    featurizer = QueryPlanFeaturizer(database.schema, estimator)
    experts = {
        "postgres": make_postgres_optimizer(database, estimator, max_dp_tables=max_dp_tables),
        "commdb": make_commdb_optimizer(database, estimator, max_dp_tables=max_dp_tables + 2),
    }
    return WorkloadBenchmark(
        name=name,
        database=database,
        engine=engine,
        estimator=estimator,
        featurizer=featurizer,
        train_queries=train_queries,
        test_queries=test_queries,
        experts=experts,
        template_of=template_of or {},
        extra_queries=extra_queries or {},
    )


def make_job_benchmark(
    split: str = "random",
    scale: float = 1.0,
    fact_rows: int = 2000,
    num_queries: int = 113,
    num_templates: int = 33,
    test_size: int = 19,
    seed: int = 0,
    size_range: tuple[int, int] = (4, 12),
    include_ext_job: bool = False,
    latency_model: LatencyModel | None = None,
    max_dp_tables: int = 9,
) -> WorkloadBenchmark:
    """Build a JOB-like benchmark.

    Args:
        split: ``"random"`` (JOB), ``"slow"`` (JOB Slow) or ``"slow_templates"``
            (the 4-slowest-templates split of §8.5).
        scale: Data-scale multiplier.
        fact_rows: Base rows of the ``title`` table at scale 1.0.
        num_queries: Workload size (113 in the paper).
        num_templates: Number of join templates (33 in the paper).
        test_size: Test-set size for random/slow splits (19 in the paper).
        seed: Root seed for data and workload generation.
        size_range: Min/max relations per join template.
        include_ext_job: Also generate the Ext-JOB-like out-of-distribution
            query set (exposed as ``extra_queries["ext_job"]``).
        latency_model: Optional custom latency model.
        max_dp_tables: DP cutover threshold of the expert optimizers.

    Returns:
        The assembled :class:`WorkloadBenchmark`.
    """
    schema = make_imdb_schema(fact_rows=fact_rows)
    database = generate_database(schema, scale=scale, seed=seed)
    queries, template_of = make_job_queries(
        num_queries=num_queries,
        num_templates=num_templates,
        seed=seed,
        size_range=size_range,
    )

    if split == "random":
        train, test = random_split(queries, test_size=test_size, seed=seed, name="job")
        name = "job"
    elif split in ("slow", "slow_templates"):
        # The slow splits need expert runtimes; assemble a temporary benchmark
        # on the same database to compute them, then re-split.
        temporary = _assemble(
            "job_tmp",
            database,
            QuerySet("tmp/train", list(queries)),
            QuerySet("tmp/test", []),
            latency_model,
            max_dp_tables=max_dp_tables,
        )
        runtimes = temporary.expert_runtimes(queries)
        if split == "slow":
            train, test = slow_split(queries, runtimes, test_size=test_size)
            name = "job_slow"
        else:
            worst = slowest_templates(queries, template_of, runtimes, num_templates=4)
            train, test = template_split(queries, template_of, worst)
            name = "job_slow_templates"
    else:
        raise ValueError(f"unknown split {split!r}")

    extra: dict[str, QuerySet] = {}
    if include_ext_job:
        extra["ext_job"] = QuerySet("ext_job", make_ext_job_queries(seed=seed + 1234))

    return _assemble(
        name, database, train, test, latency_model,
        template_of=template_of, extra_queries=extra, max_dp_tables=max_dp_tables,
    )


def make_tpch_benchmark(
    scale: float = 1.0,
    base_rows: int = 1500,
    queries_per_template: int = 10,
    seed: int = 0,
    latency_model: LatencyModel | None = None,
) -> WorkloadBenchmark:
    """Build the TPC-H-like benchmark (templates 3,5,7,8,12,13,14 / 10)."""
    schema = make_tpch_schema(base_rows=base_rows)
    database = generate_database(schema, scale=scale, seed=seed)
    train_queries, test_queries = make_tpch_queries(
        queries_per_template=queries_per_template, seed=seed
    )
    return _assemble(
        "tpch",
        database,
        QuerySet("tpch/train", train_queries),
        QuerySet("tpch/test", test_queries),
        latency_model,
    )
