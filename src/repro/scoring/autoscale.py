"""Load-adaptive scorer-pool autoscaling: queue-depth EWMA with hysteresis.

:class:`PoolAutoscaler` watches a :class:`~repro.scoring.process.ProcessPoolBackend`
and scales it between ``min_workers`` and ``max_workers``.  The signal is
the pool's in-flight queue depth *per routable worker*, smoothed with an
EWMA so a single bursty frontier does not thrash the pool; the arrival
rate (submits/second, also EWMA-smoothed) feeds a **slope signal**: when
arrivals are accelerating past ``slope_up_threshold`` the up-hold
requirement collapses to ``slope_up_hold_samples``, so a genuine traffic
ramp adds capacity a few control periods earlier than the steady-state
hold would (the ROADMAP item-2 follow-up).  Three mechanisms keep
decisions calm:

- **hysteresis** — scale up only above ``high_watermark``, down only below
  ``low_watermark``; the band between them is dead;
- **hold counts** — the signal must sit past a watermark for
  ``up_hold_samples`` / ``down_hold_samples`` consecutive samples (downs
  hold much longer than ups: adding capacity late costs latency, removing
  it early costs a re-spawn);
- **cooldown** — at most one scale event per ``cooldown_seconds``.

Scale-downs *retire* a worker (graceful drain, reaped without a crash
count), so the pool's ``max_respawns`` crash budget composes with — rather
than fights — elasticity: only genuine crashes spend it.  The pool emits
``scorer_scale_up`` / ``scorer_scale_down`` on the telemetry event bus and
the new worker/queue/ring gauges flow through ``stats()`` into the
Prometheus registry.

The decision step (:meth:`PoolAutoscaler.sample_once`) is synchronous and
clock-injectable, so the hysteresis behaviour is unit-testable against a
fake pool without threads, processes, or real time.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass


@dataclass
class AutoscalerConfig:
    """Knobs for :class:`PoolAutoscaler`.

    Attributes:
        min_workers: Never retire below this many routable workers.
        max_workers: Never grow past this many routable workers.
        interval_seconds: Sampling period of the autoscaler thread.
        high_watermark: EWMA queue depth per worker at or above which the
            pool wants to grow.
        low_watermark: EWMA queue depth per worker at or below which the
            pool wants to shrink.
        ewma_alpha: Smoothing factor for the depth and arrival-rate EWMAs.
        up_hold_samples: Consecutive above-watermark samples before a
            scale-up fires.
        down_hold_samples: Consecutive below-watermark samples before a
            scale-down fires (deliberately much larger than the up hold).
        cooldown_seconds: Minimum spacing between any two scale events.
        slope_up_threshold: Arrival-rate acceleration (requests/second per
            second, EWMA-smoothed) at or above which the up hold collapses
            to ``slope_up_hold_samples``.  ``inf`` disables the signal.
        slope_up_hold_samples: The reduced up hold while arrivals are
            accelerating (still >= 1 so one noisy sample cannot scale).
    """

    min_workers: int = 1
    max_workers: int = 4
    interval_seconds: float = 0.05
    high_watermark: float = 2.0
    low_watermark: float = 0.25
    ewma_alpha: float = 0.5
    up_hold_samples: int = 2
    down_hold_samples: int = 20
    cooldown_seconds: float = 0.5
    slope_up_threshold: float = 1.0
    slope_up_hold_samples: int = 1

    def __post_init__(self) -> None:
        if self.min_workers < 1:
            raise ValueError("min_workers must be >= 1")
        if self.max_workers < self.min_workers:
            raise ValueError("max_workers must be >= min_workers")
        if not self.low_watermark < self.high_watermark:
            raise ValueError("low_watermark must be below high_watermark")
        if self.up_hold_samples < 1 or self.down_hold_samples < 1:
            raise ValueError("hold sample counts must be >= 1")
        if self.slope_up_threshold <= 0:
            raise ValueError("slope_up_threshold must be positive")
        if self.slope_up_hold_samples < 1:
            raise ValueError("slope_up_hold_samples must be >= 1")


class PoolAutoscaler:
    """Scales a scorer pool on observed queue depth and arrival rate.

    Args:
        pool: The pool to steer; needs ``queue_depth()``,
            ``submitted_count()``, ``active_workers()``, ``scale_up()`` and
            ``scale_down()`` (duck-typed so tests drive a fake).
        config: The :class:`AutoscalerConfig` knobs.
        clock: Monotonic-seconds source (injectable for tests).
    """

    def __init__(self, pool, config: AutoscalerConfig, *, clock=time.monotonic):
        self._pool = pool
        self.config = config
        self._clock = clock
        self.depth_ewma = 0.0
        self.arrival_rate_ewma = 0.0
        self.arrival_slope_ewma = 0.0
        self._last_time: float | None = None
        self._last_submitted: int | None = None
        self._last_scale: float | None = None
        self._up_streak = 0
        self._down_streak = 0
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    def sample_once(self, now: float | None = None) -> str | None:
        """Fold one observation into the controller; maybe scale.

        Returns ``"up"`` / ``"down"`` when a scale event fired this sample,
        else ``None``.
        """
        config = self.config
        now = self._clock() if now is None else now
        depth = self._pool.queue_depth()
        submitted = self._pool.submitted_count()
        if self._last_time is not None and now > self._last_time:
            dt = now - self._last_time
            rate = (submitted - self._last_submitted) / dt
            previous_rate = self.arrival_rate_ewma
            self.arrival_rate_ewma += config.ewma_alpha * (
                rate - self.arrival_rate_ewma
            )
            slope = (self.arrival_rate_ewma - previous_rate) / dt
            self.arrival_slope_ewma += config.ewma_alpha * (
                slope - self.arrival_slope_ewma
            )
        self._last_time = now
        self._last_submitted = submitted
        self.depth_ewma += config.ewma_alpha * (depth - self.depth_ewma)

        workers = max(self._pool.active_workers(), 1)
        per_worker = self.depth_ewma / workers
        if per_worker >= config.high_watermark:
            self._up_streak += 1
            self._down_streak = 0
        elif per_worker <= config.low_watermark:
            self._down_streak += 1
            self._up_streak = 0
        else:
            self._up_streak = 0
            self._down_streak = 0

        cooled = (
            self._last_scale is None
            or now - self._last_scale >= config.cooldown_seconds
        )
        # Accelerating arrivals shorten the up hold: the queue is deep AND
        # getting deeper faster, so waiting out the full steady-state hold
        # just converts the ramp into latency.
        required_up = config.up_hold_samples
        if self.arrival_slope_ewma >= config.slope_up_threshold:
            required_up = min(required_up, config.slope_up_hold_samples)
        if (
            self._up_streak >= required_up
            and workers < config.max_workers
            and cooled
            and self._pool.scale_up()
        ):
            self._last_scale = now
            self._up_streak = 0
            return "up"
        if (
            self._down_streak >= config.down_hold_samples
            and workers > config.min_workers
            and cooled
            and self._pool.scale_down()
        ):
            self._last_scale = now
            self._down_streak = 0
            return "down"
        return None

    # ------------------------------------------------------------------ #
    # Background thread
    # ------------------------------------------------------------------ #
    def start(self) -> None:
        """Start the sampling thread (idempotent)."""
        if self._thread is not None:
            return
        self._thread = threading.Thread(
            target=self._run, name="scoring-autoscaler", daemon=True
        )
        self._thread.start()

    def _run(self) -> None:
        while not self._stop.wait(self.config.interval_seconds):
            try:
                self.sample_once()
            except Exception:  # noqa: BLE001 - the loop must survive
                # A failed sample (pool mid-close, transient spawn error)
                # must not kill the controller.
                pass

    def stop(self) -> None:
        """Stop the sampling thread and wait for it to exit."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=2.0)
            self._thread = None
