"""Figure 15: Balsa vs Neo-impl (learning from expert demonstrations).

Paper: Balsa starts ~5x faster than Neo-impl after bootstrapping, stays stable
thanks to timeouts, and generalises far better; Neo-impl's retraining makes it
progressively slower per iteration.  At the tiny benchmark scale Neo-impl's
expert demonstrations make its *training* curve look strong (it is imitating
the expert on a handful of queries), so the comparable shape here is the test
side: both agents produce finite, non-disastrous test-set runtimes, and
Neo-impl's retraining updates are the more expensive ones.  EXPERIMENTS.md
discusses the gap.
"""

from benchmarks.conftest import run_once
from repro.evaluation import experiments
from repro.evaluation.reporting import format_series


def bench_figure15_neo_comparison(benchmark, scale):
    result = run_once(benchmark, experiments.run_figure15_neo_comparison, scale)
    balsa = result["curves"]["balsa"]
    neo = result["curves"]["neo_impl"]
    print()
    print("Figure 15: Balsa vs Neo-impl")
    print(
        format_series(
            {
                "balsa_norm_runtime": balsa["normalized_runtime"],
                "neo_norm_runtime": neo["normalized_runtime"],
                "balsa_test_norm_runtime": balsa["test_normalized_runtime"],
                "neo_test_norm_runtime": neo["test_normalized_runtime"],
            }
        )
    )
    import math

    balsa_test = [v for v in balsa["test_normalized_runtime"] if not math.isnan(v)]
    neo_test = [v for v in neo["test_normalized_runtime"] if not math.isnan(v)]
    assert balsa_test and neo_test
    # Balsa's test-set performance stays within a small factor of the expert.
    assert min(balsa_test) < 5.0
