"""A synthetic IMDb-like schema mirroring the Join Order Benchmark's structure.

The real JOB runs over 21 IMDb tables.  We model the 16 tables that appear in
the benchmark's join templates, preserving the characteristic star/snowflake
shape around ``title``: large fact tables (``cast_info``, ``movie_info``,
``movie_keyword``, ``movie_companies``) referencing ``title`` and small
dimension tables (``company_type``, ``info_type``, ``kind_type``, ...).

Row counts at ``scale=1.0`` are chosen to keep the *ratios* between tables
similar to IMDb (cast_info is ~10x title; dimension tables are tiny) while the
absolute sizes stay small enough for pure-Python experimentation.
"""

from __future__ import annotations

from repro.catalog.schema import ColumnDef, ColumnKind, ForeignKey, Schema, TableDef

_PK = ColumnKind.PRIMARY_KEY
_FK = ColumnKind.FOREIGN_KEY
_CAT = ColumnKind.CATEGORICAL
_NUM = ColumnKind.NUMERIC


def make_imdb_schema(fact_rows: int = 4000) -> Schema:
    """Build the synthetic IMDb-like schema.

    Args:
        fact_rows: Base row count for the central ``title`` table at scale 1.0.
            Other tables scale proportionally (cast_info ~ 6x, dimensions ~1%).

    Returns:
        A validated :class:`~repro.catalog.schema.Schema` named ``"imdb"``.
    """
    n = int(fact_rows)
    schema = Schema(name="imdb")

    # --- dimension tables -------------------------------------------------
    schema.add(TableDef("kind_type", max(8, n // 500), (
        ColumnDef("kind", _CAT, distinct=7, skew=0.0),
    )))
    schema.add(TableDef("company_type", max(4, n // 1000), (
        ColumnDef("kind", _CAT, distinct=4, skew=0.0),
    )))
    schema.add(TableDef("info_type", max(40, n // 100), (
        ColumnDef("info", _CAT, distinct=40, skew=0.0),
    )))
    schema.add(TableDef("link_type", max(10, n // 400), (
        ColumnDef("link", _CAT, distinct=10, skew=0.0),
    )))
    schema.add(TableDef("role_type", max(12, n // 400), (
        ColumnDef("role", _CAT, distinct=12, skew=0.0),
    )))
    schema.add(TableDef("comp_cast_type", max(4, n // 1000), (
        ColumnDef("kind", _CAT, distinct=4, skew=0.0),
    )))
    schema.add(TableDef("keyword", max(100, n // 3), (
        ColumnDef("keyword_group", _CAT, distinct=50, skew=1.1),
    )))
    schema.add(TableDef("company_name", max(80, n // 4), (
        ColumnDef("country_code", _CAT, distinct=60, skew=1.2),
        ColumnDef("name_group", _CAT, distinct=40, skew=0.8),
    )))
    schema.add(TableDef("name", n, (
        ColumnDef("gender", _CAT, distinct=3, skew=0.3),
        ColumnDef("name_group", _CAT, distinct=64, skew=0.7),
    )))
    schema.add(TableDef("char_name", n, (
        ColumnDef("name_group", _CAT, distinct=64, skew=0.9),
    )))

    # --- the central fact table -------------------------------------------
    schema.add(TableDef("title", n, (
        ColumnDef("kind_id", _FK, skew=1.0),
        ColumnDef("production_year", _NUM, low=1880, high=2020),
        ColumnDef("episode_nr", _NUM, low=0, high=100),
        ColumnDef("season_nr", _NUM, low=0, high=30),
    ), (
        ForeignKey("kind_id", "kind_type"),
    )))

    # --- large fact tables referencing title -------------------------------
    schema.add(TableDef("movie_companies", 3 * n, (
        ColumnDef("movie_id", _FK, skew=1.1),
        ColumnDef("company_id", _FK, skew=1.2),
        ColumnDef("company_type_id", _FK, skew=0.6),
        ColumnDef("note_group", _CAT, distinct=20, skew=1.0),
    ), (
        ForeignKey("movie_id", "title"),
        ForeignKey("company_id", "company_name"),
        ForeignKey("company_type_id", "company_type"),
    )))
    schema.add(TableDef("movie_info", 4 * n, (
        ColumnDef("movie_id", _FK, skew=1.0),
        ColumnDef("info_type_id", _FK, skew=0.8),
        ColumnDef("info_group", _CAT, distinct=100, skew=1.2),
    ), (
        ForeignKey("movie_id", "title"),
        ForeignKey("info_type_id", "info_type"),
    )))
    schema.add(TableDef("movie_info_idx", 2 * n, (
        ColumnDef("movie_id", _FK, skew=0.9),
        ColumnDef("info_type_id", _FK, skew=0.7),
        ColumnDef("info_rank", _NUM, low=0, high=10),
    ), (
        ForeignKey("movie_id", "title"),
        ForeignKey("info_type_id", "info_type"),
    )))
    schema.add(TableDef("movie_keyword", 3 * n, (
        ColumnDef("movie_id", _FK, skew=1.2),
        ColumnDef("keyword_id", _FK, skew=1.3),
    ), (
        ForeignKey("movie_id", "title"),
        ForeignKey("keyword_id", "keyword"),
    )))
    schema.add(TableDef("cast_info", 6 * n, (
        ColumnDef("movie_id", _FK, skew=1.1),
        ColumnDef("person_id", _FK, skew=1.3),
        ColumnDef("person_role_id", _FK, skew=1.2, null_fraction=0.2),
        ColumnDef("role_id", _FK, skew=0.7),
        ColumnDef("nr_order", _NUM, low=0, high=60),
    ), (
        ForeignKey("movie_id", "title"),
        ForeignKey("person_id", "name"),
        ForeignKey("person_role_id", "char_name"),
        ForeignKey("role_id", "role_type"),
    )))
    schema.add(TableDef("movie_link", n // 2, (
        ColumnDef("movie_id", _FK, skew=0.9),
        ColumnDef("linked_movie_id", _FK, skew=0.9),
        ColumnDef("link_type_id", _FK, skew=0.5),
    ), (
        ForeignKey("movie_id", "title"),
        ForeignKey("linked_movie_id", "title"),
        ForeignKey("link_type_id", "link_type"),
    )))

    schema.validate()
    return schema
