"""Evaluation: metrics, experiment runners and text reporting.

``repro.evaluation.experiments`` contains one runner per table/figure of the
paper's evaluation section; each benchmark under ``benchmarks/`` calls one
runner at a scaled-down configuration and prints the corresponding rows /
series.  ``EXPERIMENTS.md`` records the paper-vs-measured comparison.
"""

from repro.evaluation.metrics import (
    normalized_runtime,
    per_query_regressions,
    per_query_speedups,
    speedup,
    workload_runtime,
)
from repro.evaluation.experiments import ExperimentScale
from repro.evaluation import experiments
from repro.evaluation.reporting import format_series, format_table

__all__ = [
    "normalized_runtime",
    "per_query_regressions",
    "per_query_speedups",
    "speedup",
    "workload_runtime",
    "ExperimentScale",
    "experiments",
    "format_series",
    "format_table",
]
