"""HTTP plumbing for the serving gateway: routing, JSON I/O, error mapping.

The handler is deliberately thin: it parses the request line and body, hands
the decoded payload to the :class:`~repro.server.app.PlanningServer` route
methods (which return ``(status, body)`` pairs), and serialises the reply.
All policy — admission mapping, planner routing, shadow sampling — lives in
the gateway, where it is unit-testable without a socket.

Error contract (JSON bodies everywhere, ``{"error": ..., "kind": ...}``):

- malformed JSON or a payload failing the wire codecs → **400**;
- unknown route or unknown planner/model version → **404**;
- admission rejection, over capacity → **429**;
- stale state (nothing to roll back to, featuriser mismatch) → **409**;
- gateway not configured for the operation / service closed → **503**;
- deadline expired at admission, or budget drained to an empty result →
  **504**.
"""

from __future__ import annotations

import json
import logging
import socket
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import TYPE_CHECKING, Callable
from urllib.parse import parse_qs, urlsplit

from repro.server.wire import WireFormatError
from repro.telemetry.trace import start_trace

if TYPE_CHECKING:
    from repro.server.app import PlanningServer

#: Largest accepted request body (a structural 20-way join query is ~10 KB;
#: this bound exists so a misbehaving client cannot buffer us to death).
MAX_BODY_BYTES = 8 * 1024 * 1024

#: Endpoints that open a request trace (the latency-critical planning path;
#: ops and introspection endpoints stay untraced so the ring holds signal).
TRACED_PATHS = frozenset({"/v1/plan", "/v1/plan_many"})

#: ``(status, body)`` as produced by the gateway's route methods.
RouteResult = "tuple[int, dict]"


class GatewayHTTPServer(ThreadingHTTPServer):
    """One thread per request; the planner service below does its own pooling.

    Two socket strategies beyond the default bind support the sharded
    gateway's pre-fork model (see :mod:`repro.server.sharding`):

    - ``reuse_port=True`` sets ``SO_REUSEPORT`` before binding, so several
      worker processes can each bind the same port and let the kernel
      load-balance incoming connections among them;
    - ``listen_socket=...`` adopts an already-bound, already-listening
      socket (inherited across ``fork`` from a supervisor) instead of
      binding at all — the fallback on platforms without ``SO_REUSEPORT``.
    """

    daemon_threads = True
    allow_reuse_address = True

    def __init__(
        self,
        server_address,
        RequestHandlerClass,  # noqa: N803 - http.server naming
        *,
        reuse_port: bool = False,
        listen_socket: socket.socket | None = None,
    ):
        self._reuse_port = reuse_port
        if listen_socket is None:
            super().__init__(server_address, RequestHandlerClass)
            return
        super().__init__(server_address, RequestHandlerClass, bind_and_activate=False)
        self.socket.close()  # replace the unbound default socket
        self.socket = listen_socket
        self.server_address = listen_socket.getsockname()
        host, port = self.server_address[:2]
        self.server_name = socket.getfqdn(host)
        self.server_port = port

    def server_bind(self) -> None:
        if self._reuse_port:
            if not hasattr(socket, "SO_REUSEPORT"):
                raise OSError("SO_REUSEPORT is not supported on this platform")
            self.socket.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        super().server_bind()


class GatewayRequestHandler(BaseHTTPRequestHandler):
    """Routes gateway HTTP traffic; bound to one gateway via subclassing."""

    #: Set by :meth:`PlanningServer.start` on the per-server subclass.
    gateway: "PlanningServer"

    server_version = "repro-gateway/1.0"
    protocol_version = "HTTP/1.1"
    # Headers and body go out as separate small writes; without TCP_NODELAY
    # a keep-alive client stalls ~40ms per exchange on Nagle + delayed ACK.
    disable_nagle_algorithm = True

    # ------------------------------------------------------------------ #
    # Routing
    # ------------------------------------------------------------------ #
    def do_GET(self) -> None:  # noqa: N802 - http.server naming
        path = self.path.split("?", 1)[0]
        if path == "/v1/metrics/stream":
            self._stream_metrics()
            return
        if path == "/metrics":
            self._serve_prometheus()
            return
        if path.startswith("/v1/traces/"):
            trace_id = path[len("/v1/traces/") :]
            # Counted under one canonical bucket: per-id paths must not grow
            # the endpoint counters without bound.
            self._run_route(
                "/v1/traces/<trace_id>",
                lambda: self.gateway.handle_trace_lookup(trace_id),
            )
            return
        routes: dict[str, Callable[[], RouteResult]] = {
            "/healthz": self.gateway.handle_health,
            "/v1/metrics": self.gateway.handle_metrics,
            "/v1/models": self.gateway.handle_models,
            "/v1/experience": self.gateway.handle_experience,
            "/v1/traces": self.gateway.handle_traces,
            "/v1/profile": self.gateway.handle_profile,
            "/v1/alerts": self.gateway.handle_alerts,
        }
        self._dispatch(routes)

    def do_POST(self) -> None:  # noqa: N802 - http.server naming
        body_routes: dict[str, Callable[[object], RouteResult]] = {
            "/v1/plan": self.gateway.handle_plan,
            "/v1/plan_many": self.gateway.handle_plan_many,
            "/v1/models/promote": self.gateway.handle_promote,
        }
        bare_routes: dict[str, Callable[[], RouteResult]] = {
            "/v1/models/rollback": self.gateway.handle_rollback,
        }
        path = self.path.split("?", 1)[0]
        if path in bare_routes:
            try:
                self._read_body()  # drain so keep-alive framing stays intact
            except WireFormatError as error:
                # The body was not consumed: the connection must close or the
                # unread bytes would be parsed as the next request line.
                self._reply(
                    path, 400, {"error": str(error), "kind": "bad_request"},
                    close=True,
                )
                return
            self._run_route(path, bare_routes[path])
            return
        handler = body_routes.get(path)
        if handler is None:
            try:
                self._read_body()  # drain: keep-alive framing stays intact
                drained = True
            except WireFormatError:
                drained = False
            self._reply(
                path, 404,
                {"error": f"no such endpoint: POST {path}", "kind": "not_found"},
                close=not drained,
            )
            return
        try:
            payload = self._read_json_body()
        except WireFormatError as error:
            # Oversized/undeclared bodies were not consumed; malformed JSON
            # was.  Closing unconditionally is the safe end of both cases.
            self._reply(
                path, 400, {"error": str(error), "kind": "bad_request"}, close=True
            )
            return
        if path in TRACED_PATHS:
            # A valid inbound X-Repro-Trace id is adopted (cross-service
            # correlation); anything else gets a fresh id.  The id is echoed
            # on the response so clients can look the trace up afterwards.
            # The reply goes out only after the trace is recorded, so a
            # client that immediately asks /v1/traces always finds its own.
            with start_trace(
                path, trace_id=self.headers.get("X-Repro-Trace")
            ) as trace:
                if trace is not None:
                    self._trace_id = trace.trace_id
                try:
                    status, body = handler(payload)
                except Exception as error:  # noqa: BLE001 - transport answers
                    status, body = 500, {
                        "error": f"{type(error).__name__}: {error}",
                        "kind": "internal",
                    }
                if trace is not None:
                    trace.annotate(status=status)
            self._reply(path, status, body)
            return
        self._run_route(path, handler, payload)

    def _dispatch(self, routes: "dict[str, Callable[[], RouteResult]]") -> None:
        path = self.path.split("?", 1)[0]
        handler = routes.get(path)
        if handler is None:
            self._reply(
                path, 404, {"error": f"no such endpoint: GET {path}", "kind": "not_found"}
            )
            return
        self._run_route(path, handler)

    def _run_route(self, path: str, handler, *args) -> None:
        try:
            status, body = handler(*args)
        except Exception as error:  # noqa: BLE001 - the transport must answer
            status, body = 500, {
                "error": f"{type(error).__name__}: {error}",
                "kind": "internal",
            }
        self._reply(path, status, body)

    def _reply(self, path: str, status: int, body: dict, close: bool = False) -> None:
        """Count the exchange in the gateway metrics, then send it."""
        self._last_status = status
        self.gateway.count_http(path, status)
        self._send(status, body, close=close)

    # ------------------------------------------------------------------ #
    # JSON I/O
    # ------------------------------------------------------------------ #
    def _read_body(self) -> bytes:
        length = self.headers.get("Content-Length")
        try:
            length = int(length) if length is not None else 0
        except ValueError:
            raise WireFormatError("Content-Length is not an integer") from None
        if length < 0 or length > MAX_BODY_BYTES:
            raise WireFormatError(
                f"request body of {length} bytes exceeds the {MAX_BODY_BYTES}-byte cap"
            )
        return self.rfile.read(length) if length else b""

    def _read_json_body(self) -> object:
        raw = self._read_body()
        if not raw:
            raise WireFormatError("request body is empty (expected a JSON object)")
        try:
            return json.loads(raw)
        except json.JSONDecodeError as error:
            raise WireFormatError(f"request body is not valid JSON: {error}") from None

    def _send(self, status: int, body: dict, close: bool = False) -> None:
        try:
            encoded = json.dumps(body, allow_nan=False).encode("utf-8")
        except ValueError:
            # A codec bug let a bare NaN through; fail loudly but in-protocol.
            status = 500
            encoded = json.dumps(
                {"error": "response was not JSON-serialisable", "kind": "internal"}
            ).encode("utf-8")
        try:
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(encoded)))
            if close:
                # An unconsumed request body would be parsed as the next
                # request line on this connection; tell the client and stop
                # the keep-alive loop.
                self.send_header("Connection", "close")
                self.close_connection = True
            self.end_headers()
            self.wfile.write(encoded)
        except (BrokenPipeError, ConnectionResetError):  # client went away
            pass

    def send_response(self, code: int, message: str | None = None) -> None:
        """Every response — including ``send_error`` paths the route methods
        never see (malformed request line, unsupported method) — carries the
        worker id and, on traced exchanges, the trace id."""
        super().send_response(code, message)
        worker_id = getattr(self.gateway, "worker_id", None)
        if worker_id is not None:
            self.send_header("X-Repro-Worker", str(worker_id))
        trace_id = getattr(self, "_trace_id", None)
        if trace_id is not None:
            self.send_header("X-Repro-Trace", trace_id)

    # ------------------------------------------------------------------ #
    # Telemetry endpoints: Prometheus text and the SSE stream
    # ------------------------------------------------------------------ #
    def _serve_prometheus(self) -> None:
        try:
            text = self.gateway.prometheus_text()
        except Exception as error:  # noqa: BLE001 - the transport must answer
            self._reply(
                "/metrics", 500,
                {"error": f"{type(error).__name__}: {error}", "kind": "internal"},
            )
            return
        self._last_status = 200
        self.gateway.count_http("/metrics", 200)
        encoded = text.encode("utf-8")
        try:
            self.send_response(200)
            self.send_header(
                "Content-Type", "text/plain; version=0.0.4; charset=utf-8"
            )
            self.send_header("Content-Length", str(len(encoded)))
            self.end_headers()
            self.wfile.write(encoded)
        except (BrokenPipeError, ConnectionResetError):
            pass

    def _stream_metrics(self) -> None:
        """``GET /v1/metrics/stream``: server-sent events until disconnect.

        Emits an ``event: metrics`` sample every ``interval`` seconds (query
        parameter, default 1s) and an ``event: lifecycle`` line for every bus
        event (promotions, rollbacks, scorer respawns) that lands in between.
        ``max_events=N`` ends the stream after N events — deterministic for
        tests and curl one-liners.
        """
        params = parse_qs(urlsplit(self.path).query)

        def _param(name: str, default: float) -> float:
            try:
                return float(params[name][0])
            except (KeyError, IndexError, ValueError):
                return default

        interval = min(max(_param("interval", 1.0), 0.05), 60.0)
        max_events = int(_param("max_events", 0))
        self._last_status = 200
        self.gateway.count_http("/v1/metrics/stream", 200)
        try:
            self.send_response(200)
            self.send_header("Content-Type", "text/event-stream")
            self.send_header("Cache-Control", "no-cache")
            self.send_header("Connection", "close")
            self.close_connection = True
            self.end_headers()
        except (BrokenPipeError, ConnectionResetError):
            return
        bus = self.gateway.event_bus
        cursor = bus.cursor
        sent = 0
        try:
            while True:
                events, cursor = bus.since(cursor)
                for event in events:
                    frame = "alert" if event.kind == "alert" else "lifecycle"
                    self._write_sse(frame, event.to_json_dict())
                    sent += 1
                    if max_events and sent >= max_events:
                        return
                self._write_sse("metrics", self.gateway.stream_sample())
                sent += 1
                if max_events and sent >= max_events:
                    return
                # Sleep in slices so a closing gateway releases the stream
                # promptly instead of holding the handler thread a full tick.
                deadline = time.monotonic() + interval
                while time.monotonic() < deadline:
                    if self.gateway.stopping_streams.wait(
                        min(0.25, max(deadline - time.monotonic(), 0.0))
                    ):
                        return
        except (BrokenPipeError, ConnectionResetError):  # client went away
            return

    def _write_sse(self, event: str, payload: dict) -> None:
        data = json.dumps(payload, allow_nan=False)
        self.wfile.write(f"event: {event}\ndata: {data}\n\n".encode("utf-8"))
        self.wfile.flush()

    # ------------------------------------------------------------------ #
    # Logging
    # ------------------------------------------------------------------ #
    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if not getattr(self.gateway, "verbose", False):
            return
        logger = logging.getLogger("repro.gateway")
        if logger.handlers or logging.getLogger("repro").handlers:
            # Structured mode: one JSON object per access-log line.
            logger.info(
                "%s", (format % args).strip(),
                extra={"repro_fields": {"client": self.address_string()}},
            )
        else:
            super().log_message(format, *args)
