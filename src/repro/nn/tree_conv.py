"""Neo-style tree convolution over batched plan trees.

A plan tree is flattened into a fixed-size node table per example:

- position 0 is a *sentinel* zero node;
- positions ``1..num_nodes`` hold the real nodes (any order);
- each node stores the indices of its left/right children (0 for "no child",
  i.e. the sentinel).

A :class:`TreeConvLayer` computes, for every node ``i``::

    out[i] = W_root @ x[i] + W_left @ x[left[i]] + W_right @ x[right[i]] + b

which is exactly the triangular filter of Mou et al. used by Neo and Balsa.
Stacking layers grows each node's receptive field; a final
:class:`DynamicMaxPool` reduces the variable-size node table to a fixed-size
vector by element-wise max over the real nodes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nn.layers import Parameter
from repro.utils.rng import new_rng


@dataclass
class TreeBatch:
    """A batch of flattened plan trees.

    Attributes:
        features: ``(batch, max_nodes + 1, feature_dim)`` node features; row 0
            of every example is the sentinel zero node.
        left: ``(batch, max_nodes + 1)`` indices of left children (0 = none).
        right: ``(batch, max_nodes + 1)`` indices of right children (0 = none).
        valid: ``(batch, max_nodes + 1)`` boolean mask of real nodes (sentinel
            and padding are ``False``).
    """

    features: np.ndarray
    left: np.ndarray
    right: np.ndarray
    valid: np.ndarray

    @property
    def batch_size(self) -> int:
        return self.features.shape[0]

    @property
    def num_slots(self) -> int:
        return self.features.shape[1]

    @property
    def feature_dim(self) -> int:
        return self.features.shape[2]

    def with_features(self, features: np.ndarray) -> "TreeBatch":
        """Return a copy pointing at a different feature tensor."""
        return TreeBatch(features=features, left=self.left, right=self.right, valid=self.valid)


class TreeConvLayer:
    """One tree convolution layer.

    Args:
        in_channels: Input feature dimensionality per node.
        out_channels: Output dimensionality per node.
        rng: Seed or generator for initialisation.
        name: Parameter name prefix.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        rng: int | np.random.Generator | None = 0,
        name: str = "tree_conv",
    ):
        generator = new_rng(rng)
        bound = np.sqrt(6.0 / (3 * in_channels))

        def init(suffix: str) -> Parameter:
            values = generator.uniform(-bound, bound, size=(out_channels, in_channels))
            return Parameter(f"{name}.{suffix}", values.astype(np.float64))

        self.w_root = init("w_root")
        self.w_left = init("w_left")
        self.w_right = init("w_right")
        self.bias = Parameter(f"{name}.bias", np.zeros(out_channels, dtype=np.float64))
        self._cache: tuple | None = None

    def parameters(self) -> list[Parameter]:
        return [self.w_root, self.w_left, self.w_right, self.bias]

    # ------------------------------------------------------------------ #
    # Forward / backward
    # ------------------------------------------------------------------ #
    def forward(self, batch: TreeBatch, training: bool = False) -> TreeBatch:
        """Apply the convolution; the output keeps the batch's tree structure."""
        features = batch.features
        batch_idx = np.arange(batch.batch_size)[:, None]
        left_features = features[batch_idx, batch.left]
        right_features = features[batch_idx, batch.right]
        out = (
            features @ self.w_root.value.T
            + left_features @ self.w_left.value.T
            + right_features @ self.w_right.value.T
            + self.bias.value
        )
        # Sentinel and padded nodes must stay exactly zero so they neither win
        # the max pool nor leak bias terms into deeper layers.
        out *= batch.valid[..., None]
        self._cache = (batch, left_features, right_features)
        return batch.with_features(out)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        """Backward pass.

        Args:
            grad_output: Gradient w.r.t. the layer's output features,
                ``(batch, slots, out_channels)``.

        Returns:
            Gradient w.r.t. the input features, ``(batch, slots, in_channels)``.
        """
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        batch, left_features, right_features = self._cache
        grad_output = grad_output * batch.valid[..., None]
        features = batch.features

        flat = lambda array: array.reshape(-1, array.shape[-1])  # noqa: E731
        grad_flat = flat(grad_output)
        self.w_root.grad += grad_flat.T @ flat(features)
        self.w_left.grad += grad_flat.T @ flat(left_features)
        self.w_right.grad += grad_flat.T @ flat(right_features)
        self.bias.grad += grad_flat.sum(axis=0)

        grad_input = grad_output @ self.w_root.value
        grad_left = grad_output @ self.w_left.value
        grad_right = grad_output @ self.w_right.value

        batch_idx = np.arange(batch.batch_size)[:, None]
        batch_idx_full = np.broadcast_to(batch_idx, batch.left.shape)
        np.add.at(grad_input, (batch_idx_full, batch.left), grad_left)
        np.add.at(grad_input, (batch_idx_full, batch.right), grad_right)
        # Contributions scattered onto the sentinel slot are discarded by
        # zeroing invalid slots (their features are constants, not inputs).
        grad_input *= batch.valid[..., None]
        return grad_input


class DynamicMaxPool:
    """Element-wise max over each tree's real nodes."""

    def __init__(self):
        self._cache: tuple | None = None

    def forward(self, batch: TreeBatch, training: bool = False) -> np.ndarray:
        """Pool ``(batch, slots, channels)`` features to ``(batch, channels)``."""
        features = batch.features
        masked = np.where(batch.valid[..., None], features, -np.inf)
        pooled = masked.max(axis=1)
        # Degenerate case: an example with no valid nodes pools to zero.
        pooled = np.where(np.isfinite(pooled), pooled, 0.0)
        argmax = masked.argmax(axis=1)
        self._cache = (features.shape, argmax, batch.valid.any(axis=1))
        return pooled

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        """Scatter pooled gradients back to the argmax nodes."""
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        shape, argmax, has_valid = self._cache
        grad_input = np.zeros(shape, dtype=np.float64)
        batch_size, _, channels = shape
        batch_idx = np.repeat(np.arange(batch_size), channels)
        channel_idx = np.tile(np.arange(channels), batch_size)
        node_idx = argmax.reshape(-1)
        grads = (grad_output * has_valid[:, None]).reshape(-1)
        np.add.at(grad_input, (batch_idx, node_idx, channel_idx), grads)
        return grad_input
