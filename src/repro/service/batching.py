"""Compatibility front for the scoring package's threaded backend.

The cross-search coalescing logic that used to live here is now the
:mod:`repro.scoring` package (one :class:`~repro.scoring.protocol.ScoringBackend`
protocol, three implementations).  :class:`BatchedScoringBridge` survives as
a thin subclass of :class:`~repro.scoring.threaded.ThreadedBatchingBackend`
carrying the historical constructor and ``score()`` spelling, so existing
callers and tests keep working unchanged.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.model.value_network import ValueNetwork
from repro.plans.nodes import PlanNode
from repro.scoring.protocol import ScoringBridgeStats
from repro.scoring.threaded import ThreadedBatchingBackend
from repro.sql.query import Query

__all__ = ["BatchedScoringBridge", "ScoringBridgeStats"]


class BatchedScoringBridge(ThreadedBatchingBackend):
    """Coalesces scoring requests from concurrent searches into large batches.

    Historical name and signature of the threaded batching backend; see
    :class:`~repro.scoring.threaded.ThreadedBatchingBackend` for the
    mechanics.

    Args:
        network_provider: Zero-argument callable returning the current
            :class:`ValueNetwork` (a callable rather than a reference so the
            bridge follows model swaps, e.g. Neo-style retrains).
        max_batch_size: Upper bound on examples per forward pass; larger
            coalesced batches are chunked.
        coalesce_wait_seconds: How long the scoring thread lingers for
            stragglers after receiving a request before running the batch.
            Zero scores whatever has already queued without waiting.
    """

    def __init__(
        self,
        network_provider: Callable[[], ValueNetwork],
        max_batch_size: int = 512,
        coalesce_wait_seconds: float = 0.001,
    ):
        super().__init__(
            network_provider,
            max_batch_size=max_batch_size,
            coalesce_wait_seconds=coalesce_wait_seconds,
        )
        self.network_provider = network_provider

    def score(
        self,
        query: Query,
        plans: list[PlanNode],
        network: ValueNetwork | None = None,
    ) -> np.ndarray:
        """Score ``plans`` for ``query``; blocks until the batch runs.

        Drop-in replacement for ``ValueNetwork.predict`` — beam searches pass
        this as their ``score_fn``.

        Args:
            query: The query the plans belong to.
            plans: Candidate plans to score.
            network: Optional network pinned to this request.  The serving
                layer pins the network resolved at admission time so an
                in-flight search keeps scoring against version N across a hot
                swap to N+1; unpinned requests follow ``network_provider``.
        """
        return self.submit(query, plans, version=network)
