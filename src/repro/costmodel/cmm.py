"""The :math:`C_{mm}` in-memory cost model (Leis et al., "How good are query
optimizers, really?").

``Cmm`` refines ``Cout`` with a little physical knowledge suited to in-memory
execution: hash joins pay for building on the smaller input, nested-loop joins
pay a per-pair factor unless an index makes lookups cheap, and index lookups
carry a constant penalty (:math:`\\tau`) relative to sequential access.  The
paper lists it (§3.3) as an example of a cost model with "progressively more
physical operator knowledge" that users may plug in instead of ``Cout``.
"""

from __future__ import annotations

from repro.cardinality.base import CardinalityEstimator
from repro.costmodel.base import CostModel
from repro.plans.nodes import JoinNode, JoinOperator, PlanNode, ScanNode
from repro.sql.query import Query


class CmmCostModel(CostModel):
    """A lightweight physical cost model for in-memory settings.

    Args:
        estimator: Cardinality estimator.
        tau: Relative cost of an index lookup vs. touching a tuple
            sequentially (Leis et al. use 0.2).
        nested_loop_penalty: Per-pair cost factor for non-indexed nested loops.
    """

    is_physical = True

    def __init__(
        self,
        estimator: CardinalityEstimator,
        tau: float = 0.2,
        nested_loop_penalty: float = 0.01,
    ):
        self.estimator = estimator
        self.tau = tau
        self.nested_loop_penalty = nested_loop_penalty

    def node_cost(self, query: Query, node: PlanNode) -> float:
        if isinstance(node, ScanNode):
            return self.estimator.estimate(query, node.leaf_aliases)
        if isinstance(node, JoinNode):
            left_rows = self.estimator.estimate(query, node.left.leaf_aliases)
            right_rows = self.estimator.estimate(query, node.right.leaf_aliases)
            out_rows = self.estimator.estimate(query, node.leaf_aliases)
            if node.operator is JoinOperator.HASH_JOIN:
                return out_rows + min(left_rows, right_rows) * 2.0 + max(left_rows, right_rows)
            if node.operator is JoinOperator.MERGE_JOIN:
                return out_rows + left_rows + right_rows
            # Nested loop.
            if isinstance(node.right, ScanNode):
                # Index-nested-loop approximation: tau per outer probe.
                return out_rows + left_rows * (1.0 + self.tau)
            return out_rows + left_rows * right_rows * self.nested_loop_penalty
        raise TypeError(f"unknown plan node type {type(node)!r}")
