"""The unified metrics registry: counters, gauges, histograms, Prometheus text.

Every subsystem's existing dataclass counters (``ServiceMetrics``,
``ExperienceMetrics``, shadow, sharding, cache stats) publish into one
:class:`MetricsRegistry` at *scrape time* — the hot path keeps its cheap
lock-guarded integers and nobody pays registry overhead per request.  Two
consumers read the registry:

- ``GET /metrics`` renders Prometheus text exposition (:meth:`MetricsRegistry.render`);
- the sharded supervisor pulls :meth:`MetricsRegistry.snapshot` dicts pushed
  by each worker and folds them with :func:`merge_snapshots` (counters sum,
  histogram buckets merge, gauges follow their declared aggregation), so one
  scrape of the supervisor covers the whole fleet.

Histograms use fixed log-spaced latency buckets (100µs → 10s): fixed bounds
are what makes cross-process merging a plain element-wise sum.
"""

from __future__ import annotations

import bisect
import math
import threading

#: Log-spaced latency buckets in seconds (upper bounds; +Inf is implicit).
DEFAULT_BUCKETS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Valid gauge aggregation modes for fleet merging.
_GAUGE_AGGREGATIONS = frozenset({"sum", "max", "min", "mean", "last"})


def _labels_key(labels: "dict[str, str] | None") -> tuple:
    return tuple(sorted((labels or {}).items()))


class Counter:
    """A monotonically published cumulative count."""

    __slots__ = ("labels", "_value", "_lock")

    def __init__(self, labels: "dict[str, str] | None" = None):
        self.labels = dict(labels or {})
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def set_total(self, value: float) -> None:
        """Publish an externally-accumulated cumulative total (scrape-time)."""
        with self._lock:
            self._value = float(value)

    @property
    def value(self) -> float:
        return self._value


class Gauge:
    """A point-in-time value; ``aggregation`` governs fleet merging."""

    __slots__ = ("labels", "aggregation", "_value", "_lock")

    def __init__(
        self, labels: "dict[str, str] | None" = None, aggregation: str = "sum"
    ):
        if aggregation not in _GAUGE_AGGREGATIONS:
            raise ValueError(f"unknown gauge aggregation {aggregation!r}")
        self.labels = dict(labels or {})
        self.aggregation = aggregation
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """Fixed-bucket distribution (cumulative ``le`` rendering, mergeable)."""

    __slots__ = ("labels", "bounds", "_counts", "_sum", "_count", "_lock")

    def __init__(
        self,
        labels: "dict[str, str] | None" = None,
        buckets: "tuple[float, ...]" = DEFAULT_BUCKETS,
    ):
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.labels = dict(labels or {})
        self.bounds = bounds
        self._counts = [0] * (len(bounds) + 1)  # last slot = +Inf
        self._sum = 0.0
        self._count = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        index = bisect.bisect_left(self.bounds, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def bucket_counts(self) -> list[int]:
        with self._lock:
            return list(self._counts)


class _Family:
    __slots__ = ("name", "kind", "help", "children")

    def __init__(self, name: str, kind: str, help: str):
        self.name = name
        self.kind = kind
        self.help = help
        self.children: dict = {}


class MetricsRegistry:
    """Named metric families with get-or-create semantics.

    Instances are independent (one per gateway) so parallel test servers in
    one process never share counters; the process-global default registry is
    only a convenience for code with no gateway handle.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._families: dict[str, _Family] = {}

    def _get_or_create(self, name: str, kind: str, help: str, labels, factory):
        key = _labels_key(labels)
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = _Family(name, kind, help)
                self._families[name] = family
            elif family.kind != kind:
                raise ValueError(
                    f"metric {name!r} already registered as {family.kind}, "
                    f"not {kind}"
                )
            child = family.children.get(key)
            if child is None:
                child = factory()
                family.children[key] = child
            return child

    def counter(
        self, name: str, help: str = "", labels: "dict[str, str] | None" = None
    ) -> Counter:
        return self._get_or_create(
            name, "counter", help, labels, lambda: Counter(labels)
        )

    def gauge(
        self,
        name: str,
        help: str = "",
        labels: "dict[str, str] | None" = None,
        aggregation: str = "sum",
    ) -> Gauge:
        return self._get_or_create(
            name, "gauge", help, labels, lambda: Gauge(labels, aggregation)
        )

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: "dict[str, str] | None" = None,
        buckets: "tuple[float, ...]" = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(
            name, "histogram", help, labels, lambda: Histogram(labels, buckets)
        )

    # ------------------------------------------------------------------ #
    # Export
    # ------------------------------------------------------------------ #
    def snapshot(self) -> dict:
        """A JSON-able dump — what sharded workers push to the supervisor."""
        metrics = []
        with self._lock:
            families = list(self._families.values())
        for family in families:
            for child in list(family.children.values()):
                entry: dict = {
                    "name": family.name,
                    "kind": family.kind,
                    "help": family.help,
                    "labels": dict(child.labels),
                }
                if family.kind == "histogram":
                    entry["bounds"] = list(child.bounds)
                    entry["counts"] = child.bucket_counts()
                    entry["sum"] = child.sum
                    entry["count"] = child.count
                else:
                    entry["value"] = child.value
                    if family.kind == "gauge":
                        entry["aggregation"] = child.aggregation
                metrics.append(entry)
        return {"metrics": metrics}

    def render(self) -> str:
        """Prometheus text exposition of this registry."""
        return render_snapshot(self.snapshot())


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _label_text(labels: dict, extra: "dict | None" = None) -> str:
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    parts = ", ".join(
        f'{name}="{_escape_label(str(value))}"'
        for name, value in sorted(merged.items())
    )
    return "{" + parts + "}"


def _number(value: float) -> str:
    value = float(value)
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def render_snapshot(snapshot: dict) -> str:
    """Render a :meth:`MetricsRegistry.snapshot` dict as Prometheus text."""
    by_family: dict[str, list[dict]] = {}
    meta: dict[str, tuple[str, str]] = {}
    for entry in snapshot.get("metrics", []):
        by_family.setdefault(entry["name"], []).append(entry)
        meta.setdefault(entry["name"], (entry["kind"], entry.get("help", "")))
    lines: list[str] = []
    for name in sorted(by_family):
        kind, help_text = meta[name]
        if help_text:
            lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {kind}")
        for entry in by_family[name]:
            labels = entry.get("labels", {})
            if kind == "histogram":
                cumulative = 0
                for bound, count in zip(entry["bounds"], entry["counts"]):
                    cumulative += count
                    lines.append(
                        f"{name}_bucket"
                        f"{_label_text(labels, {'le': _number(bound)})}"
                        f" {cumulative}"
                    )
                cumulative += entry["counts"][len(entry["bounds"])]
                lines.append(
                    f"{name}_bucket{_label_text(labels, {'le': '+Inf'})}"
                    f" {cumulative}"
                )
                lines.append(
                    f"{name}_sum{_label_text(labels)} {_number(entry['sum'])}"
                )
                lines.append(
                    f"{name}_count{_label_text(labels)} {entry['count']}"
                )
            else:
                lines.append(
                    f"{name}{_label_text(labels)} {_number(entry['value'])}"
                )
    return "\n".join(lines) + "\n"


def merge_snapshots(snapshots: "list[dict]") -> dict:
    """Fold worker snapshots into one fleet view.

    Counters sum; histograms merge element-wise (same fixed bounds required —
    mismatched bounds keep the first seen and drop the stray, which cannot
    happen between same-code workers); gauges follow their declared
    aggregation (``sum``/``max``/``min``/``mean``/``last``).
    """
    merged: dict[tuple, dict] = {}
    mean_counts: dict[tuple, int] = {}
    for snapshot in snapshots:
        for entry in snapshot.get("metrics", []):
            key = (entry["name"], _labels_key(entry.get("labels")))
            seen = merged.get(key)
            if seen is None:
                copied = dict(entry)
                copied["labels"] = dict(entry.get("labels", {}))
                if entry["kind"] == "histogram":
                    copied["bounds"] = list(entry["bounds"])
                    copied["counts"] = list(entry["counts"])
                merged[key] = copied
                mean_counts[key] = 1
                continue
            if seen["kind"] != entry["kind"]:
                continue
            if entry["kind"] == "counter":
                seen["value"] += entry["value"]
            elif entry["kind"] == "histogram":
                if list(entry["bounds"]) != seen["bounds"]:
                    continue
                seen["counts"] = [
                    a + b for a, b in zip(seen["counts"], entry["counts"])
                ]
                seen["sum"] += entry["sum"]
                seen["count"] += entry["count"]
            else:  # gauge
                mode = seen.get("aggregation", "sum")
                if mode == "sum":
                    seen["value"] += entry["value"]
                elif mode == "max":
                    seen["value"] = max(seen["value"], entry["value"])
                elif mode == "min":
                    seen["value"] = min(seen["value"], entry["value"])
                elif mode == "mean":
                    count = mean_counts[key]
                    seen["value"] = (
                        seen["value"] * count + entry["value"]
                    ) / (count + 1)
                else:  # last
                    seen["value"] = entry["value"]
            mean_counts[key] += 1
    return {"metrics": list(merged.values())}


_default_registry = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-global registry (code with no gateway handle)."""
    return _default_registry
