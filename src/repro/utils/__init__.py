"""Small shared utilities: seeded RNG helpers, timers and logging."""

from repro.utils.rng import RngFactory, derive_seed, new_rng
from repro.utils.timer import Stopwatch, format_seconds

__all__ = [
    "RngFactory",
    "derive_seed",
    "new_rng",
    "Stopwatch",
    "format_seconds",
]
