"""Gradient-descent optimizers over :class:`~repro.nn.layers.Parameter` lists."""

from __future__ import annotations

import numpy as np

from repro.nn.layers import Parameter


class Optimizer:
    """Base optimizer holding a list of parameters."""

    def __init__(self, parameters: list[Parameter], learning_rate: float):
        self.parameters = list(parameters)
        self.learning_rate = learning_rate

    def zero_grad(self) -> None:
        """Clear all parameter gradients."""
        for parameter in self.parameters:
            parameter.zero_grad()

    def step(self) -> None:
        """Apply one update using the accumulated gradients."""
        raise NotImplementedError

    def clip_gradients(self, max_norm: float) -> float:
        """Clip the global gradient norm to ``max_norm``; returns the norm."""
        total = 0.0
        for parameter in self.parameters:
            total += float(np.sum(parameter.grad**2))
        norm = float(np.sqrt(total))
        if norm > max_norm and norm > 0:
            scale = max_norm / norm
            for parameter in self.parameters:
                parameter.grad *= scale
        return norm


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum.

    Args:
        parameters: Parameters to update.
        learning_rate: Step size.
        momentum: Classical momentum coefficient (0 disables it).
        weight_decay: L2 regularisation coefficient.
    """

    def __init__(
        self,
        parameters: list[Parameter],
        learning_rate: float = 1e-3,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ):
        super().__init__(parameters, learning_rate)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.value) for p in self.parameters]

    def step(self) -> None:
        for parameter, velocity in zip(self.parameters, self._velocity):
            grad = parameter.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * parameter.value
            if self.momentum:
                velocity *= self.momentum
                velocity += grad
                update = velocity
            else:
                update = grad
            parameter.value -= self.learning_rate * update


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba, 2015).

    Args:
        parameters: Parameters to update.
        learning_rate: Step size.
        beta1: First-moment decay.
        beta2: Second-moment decay.
        epsilon: Numerical stabiliser.
        weight_decay: L2 regularisation coefficient.
    """

    def __init__(
        self,
        parameters: list[Parameter],
        learning_rate: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        epsilon: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(parameters, learning_rate)
        self.beta1 = beta1
        self.beta2 = beta2
        self.epsilon = epsilon
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.value) for p in self.parameters]
        self._v = [np.zeros_like(p.value) for p in self.parameters]
        self._step = 0

    def step(self) -> None:
        self._step += 1
        bias1 = 1.0 - self.beta1**self._step
        bias2 = 1.0 - self.beta2**self._step
        for parameter, m, v in zip(self.parameters, self._m, self._v):
            grad = parameter.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * parameter.value
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad**2
            m_hat = m / bias1
            v_hat = v / bias2
            parameter.value -= self.learning_rate * m_hat / (np.sqrt(v_hat) + self.epsilon)
