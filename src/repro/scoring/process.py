"""Process-based scoring: N scorer processes, snapshots on disk, no GIL.

The in-process backends are bound by the GIL: concurrent beam searches
serialise on the numpy forward pass no matter how many worker threads plan.
:class:`ProcessPoolBackend` breaks that bound by running the forward passes
in separate scorer processes:

- **Weights travel as files, never as live objects.**  Each model version is
  *published* once — captured as a :class:`~repro.lifecycle.snapshot.ModelSnapshot`
  and written to a spool directory with :meth:`ModelSnapshot.save` — and
  scorer processes restore it with
  :meth:`~repro.model.value_network.ValueNetwork.from_state_dict` (a
  signature-derived featuriser stand-in; no schema needed).  Hot swaps
  propagate by version token: a request pinned to version N is scored by
  version N's file no matter when the promotion landed, and two versions are
  never mixed in one batch because every task carries exactly one token.
- **Featurisation happens in the submitting worker.**  Only the pickle-free
  :mod:`~repro.scoring.wire` payloads (raw numeric buffers) cross the
  process boundary.
- **Failures are typed, not hung.**  A scorer process that dies mid-batch
  fails its in-flight requests with
  :class:`~repro.scoring.protocol.ScoringBackendError`; the collector thread
  notices the death, counts it, and routes subsequent requests to the
  surviving workers (the serving layer falls back to in-process scoring when
  failures persist).
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import shutil
import tempfile
import threading
import time
from queue import Empty
from typing import TYPE_CHECKING, Callable, Hashable

import numpy as np

from repro.model.value_network import ValueNetwork
from repro.plans.nodes import PlanNode
from repro.scoring.core import ScoringCore
from repro.scoring.protocol import ScoringBackendError, ScoringBridgeStats, VersionPin
from repro.scoring.wire import (
    attach_span,
    attach_trace,
    detach_span,
    detach_trace,
    pack_examples,
    pack_predictions,
    unpack_examples,
    unpack_predictions,
)
from repro.sql.query import Query
from repro.telemetry.events import emit_event
from repro.telemetry.trace import add_span, current_trace_id

if TYPE_CHECKING:
    from repro.lifecycle.registry import ModelRegistry
    from repro.lifecycle.snapshot import ModelSnapshot

#: Test hook: a task pinned to this token makes the scorer process hard-exit
#: mid-batch, simulating a crash.  Only reachable when the backend's
#: ``_allow_crash_token`` flag is set (the failure-mode tests set it);
#: ordinary submits reject every negative pin with a typed error.
_CRASH_TOKEN = -0xDEAD

#: Published snapshot files retained per backend.  Tokens are monotone and a
#: pin only outlives its publication by one in-flight search, so a small
#: window bounds spool-directory growth for promote-every-iteration loops.
_SPOOL_RETENTION = 8


def _snapshot_filename(token: int) -> str:
    return f"model-v{token}.npz"


def _scorer_main(
    worker_id: int,
    spool_dir: str,
    task_queue,
    result_queue,
    max_batch_size: int,
) -> None:
    """One scorer process: load published snapshots, serve forward passes.

    Tasks are ``(request_id, token, payload)`` tuples; replies are
    ``(request_id, ok, data, chunk_sizes)`` where ``data`` is packed
    predictions on success and the error text on failure.  ``None`` shuts
    the worker down.
    """
    from repro.lifecycle.snapshot import ModelSnapshot
    from repro.telemetry.logging import maybe_configure_from_env, set_log_context

    set_log_context(process=f"scorer-{worker_id}")
    maybe_configure_from_env()
    networks: dict[int, ValueNetwork] = {}
    # Readiness handshake (request id 0 is never allocated to real requests):
    # imports are done and the task loop is about to block on the queue.
    result_queue.put((0, True, b"ready", (worker_id,)))
    while True:
        task = task_queue.get()
        if task is None:
            break
        request_id, token, payload = task
        if token == _CRASH_TOKEN:
            os._exit(3)
        try:
            trace_id, payload = detach_trace(payload)
            started = time.perf_counter()
            network = networks.get(token)
            if network is None:
                path = os.path.join(spool_dir, _snapshot_filename(token))
                snapshot = ModelSnapshot.load(path)
                network = ValueNetwork.from_state_dict(snapshot.state)
                if len(networks) > 4:
                    # Tokens are monotone; old versions stop being pinned
                    # once their swap window closes.
                    networks.clear()
                networks[token] = network
            examples = unpack_examples(payload)
            outputs: list[np.ndarray] = []
            chunk_sizes: list[int] = []
            for start in range(0, len(examples), max_batch_size):
                chunk = examples[start : start + max_batch_size]
                outputs.append(network.predict_examples(chunk))
                chunk_sizes.append(len(chunk))
            predictions = (
                np.concatenate(outputs) if outputs else np.zeros(0, dtype=np.float64)
            )
            reply = pack_predictions(predictions)
            if trace_id is not None:
                # The scorer measures its own duration; the submitting side
                # grafts it into the live trace under the request's trace id.
                reply = attach_span(
                    reply, worker_id, time.perf_counter() - started
                )
            result_queue.put((request_id, True, reply, tuple(chunk_sizes)))
        except BaseException as error:  # noqa: BLE001 - shipped to the caller
            result_queue.put(
                (request_id, False, f"{type(error).__name__}: {error}", ())
            )


class _PendingRequest:
    """Parent-side state of one dispatched task."""

    __slots__ = ("worker_index", "done", "ok", "data", "chunk_sizes")

    def __init__(self, worker_index: int):
        self.worker_index = worker_index
        self.done = threading.Event()
        self.ok = False
        self.data: bytes | str = b""
        self.chunk_sizes: tuple[int, ...] = ()


class ProcessPoolBackend:
    """Scoring server over N scorer processes following published snapshots.

    Args:
        featurizer: Featuriser used by the submitting side.  Optional when
            every request is pinned to a live :class:`ValueNetwork` (its own
            featuriser is used); required to score registry-version pins.
        num_workers: Scorer processes to spawn.
        network_provider: Source for unpinned requests when no registry is
            followed (the provided network is published on first use).
        spool_dir: Directory snapshots are published into (shared with the
            workers).  A private temporary directory is created — and removed
            on :meth:`close` — when omitted.
        max_batch_size: Forward-pass size cap inside each scorer.
        submit_timeout_seconds: How long one submit waits for its reply
            before failing with :class:`ScoringBackendError`.
        start_method: ``multiprocessing`` start method (default ``"spawn"``:
            safe with the serving layer's threads; pass ``"fork"`` to trade
            that safety for faster startup).
        max_respawns: Crashed scorer processes the collector may replace
            with fresh ones (pool-wide budget; 0 keeps the historical
            survive-on-the-remaining-pool behaviour).  A respawned worker
            restores snapshots from the spool on demand, so no state is
            lost; the requests in flight on the crashed worker still fail
            with their typed error.
    """

    def __init__(
        self,
        featurizer=None,
        *,
        num_workers: int = 2,
        network_provider: Callable[[], "ValueNetwork | None"] | None = None,
        spool_dir: str | None = None,
        max_batch_size: int = 512,
        submit_timeout_seconds: float = 120.0,
        start_method: str = "spawn",
        max_respawns: int = 0,
    ):
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        if max_respawns < 0:
            raise ValueError("max_respawns must be >= 0")
        self._featurizer = featurizer
        self.network_provider = network_provider
        self.submit_timeout_seconds = submit_timeout_seconds
        self._core = ScoringCore(max_batch_size)
        self._owns_spool = spool_dir is None
        self._spool_dir = spool_dir or tempfile.mkdtemp(prefix="repro-scoring-")
        os.makedirs(self._spool_dir, exist_ok=True)

        self._registry: "ModelRegistry | None" = None
        self._published: dict[Hashable, int] = {}
        self._registry_tokens: dict[int, int] = {}
        self._current_token: int | None = None
        self._tokens = itertools.count(1)
        self._publish_lock = threading.Lock()
        self._allow_crash_token = False  # failure-mode tests only

        self._lock = threading.Lock()
        self._pending: dict[int, _PendingRequest] = {}
        self._request_ids = itertools.count(1)
        self._next_worker = 0
        self._closed = False

        self.max_respawns = max_respawns
        self._respawns_used = 0
        context = multiprocessing.get_context(start_method)
        self._context = context
        self._result_queue = context.Queue()
        self._task_queues = []
        self._processes = []
        for worker_id in range(num_workers):
            task_queue, process = self._spawn_worker(worker_id)
            self._task_queues.append(task_queue)
            self._processes.append(process)
        self._dead = [False] * num_workers
        self._ready = [threading.Event() for _ in range(num_workers)]
        self._collector = threading.Thread(
            target=self._collect, name="scoring-collector", daemon=True
        )
        self._collector.start()

    def _spawn_worker(self, worker_id: int):
        """Start one scorer process; returns its ``(task_queue, process)``."""
        task_queue = self._context.Queue()
        process = self._context.Process(
            target=_scorer_main,
            args=(
                worker_id,
                self._spool_dir,
                task_queue,
                self._result_queue,
                self._core.max_batch_size,
            ),
            name=f"repro-scorer-{worker_id}",
            daemon=True,
        )
        process.start()
        return task_queue, process

    @property
    def num_workers(self) -> int:
        return len(self._processes)

    @property
    def max_batch_size(self) -> int:
        return self._core.max_batch_size

    # ------------------------------------------------------------------ #
    # Version publication
    # ------------------------------------------------------------------ #
    def publish(self, network: ValueNetwork) -> int:
        """Publish ``network``'s current weights; returns their token.

        Idempotent per :meth:`ValueNetwork.version_key`: the snapshot is
        captured and written once, then reused for every request pinned to
        the same weights.
        """
        from repro.lifecycle.snapshot import ModelSnapshot

        key = network.version_key()
        with self._publish_lock:
            token = self._published.get(key)
            if token is not None:
                return token
            token = next(self._tokens)
            snapshot = ModelSnapshot.capture(network, token, source="published")
            snapshot.save(os.path.join(self._spool_dir, _snapshot_filename(token)))
            self._published[key] = token
            self._core.count_published()
            self._evict_spool_locked(token)
            return token

    def _publish_snapshot(self, snapshot: "ModelSnapshot") -> int:
        """Publish a registry snapshot under a backend token."""
        with self._publish_lock:
            token = self._registry_tokens.get(snapshot.version)
            if token is not None:
                return token
            token = next(self._tokens)
            snapshot.save(os.path.join(self._spool_dir, _snapshot_filename(token)))
            self._registry_tokens[snapshot.version] = token
            self._core.count_published()
            self._evict_spool_locked(token)
            return token

    def _evict_spool_locked(self, newest_token: int) -> None:
        """Bound the spool: drop snapshot files older than the retention
        window.  The currently serving token is always exempt (unpinned
        traffic resolves to it between promotions); an *expired pin* to an
        evicted token degrades to a typed error, the same path as any
        unknown version — never silent mis-scoring."""
        horizon = newest_token - _SPOOL_RETENTION
        if horizon <= 0:
            return
        keep = {self._current_token}
        self._published = {
            key: token
            for key, token in self._published.items()
            if token > horizon or token in keep
        }
        self._registry_tokens = {
            version: token
            for version, token in self._registry_tokens.items()
            if token > horizon or token in keep
        }
        for token in range(max(horizon - _SPOOL_RETENTION, 1), horizon + 1):
            if token in keep:
                continue
            try:
                os.unlink(os.path.join(self._spool_dir, _snapshot_filename(token)))
            except OSError:
                pass

    def follow(self, registry: "ModelRegistry") -> None:
        """Track ``registry``: promotions repoint unpinned requests.

        Subscribes to the registry's serving-pointer changes; each newly
        serving snapshot is published to the spool directory and becomes the
        target of unpinned submits, keyed strictly by version — a promotion
        never ships a live object into the scorer processes.  :meth:`close`
        detaches the subscription.
        """
        self._registry = registry
        registry.subscribe(self._on_serving_change)
        if registry.serving_version is not None:
            self._on_serving_change(registry.serving())

    def _on_serving_change(self, snapshot: "ModelSnapshot") -> None:
        if self._closed:
            return
        self._current_token = self._publish_snapshot(snapshot)

    def _resolve_token(self, version: VersionPin) -> int:
        if isinstance(version, ValueNetwork):
            return self.publish(version)
        if version is None:
            if self._current_token is not None:
                return self._current_token
            if self.network_provider is not None:
                network = self.network_provider()
                if network is not None:
                    return self.publish(network)
            raise ScoringBackendError(
                "no model to score with: nothing published, no provider, and "
                "no followed registry with a serving version"
            )
        token = int(version)
        if token < 0:
            # Backend-internal tokens are positive; the only negative one is
            # the crash hook, and it must be armed explicitly by a test.
            if token == _CRASH_TOKEN and self._allow_crash_token:
                return token
            raise ScoringBackendError(f"cannot resolve model version {token}")
        if self._registry is None:
            raise ScoringBackendError(
                f"cannot resolve registry version {token}: backend is not "
                "following a ModelRegistry (call follow() first)"
            )
        from repro.lifecycle.snapshot import LifecycleError

        try:
            return self._publish_snapshot(self._registry.get(token))
        except LifecycleError as error:
            raise ScoringBackendError(str(error)) from error

    # ------------------------------------------------------------------ #
    # Search-facing API
    # ------------------------------------------------------------------ #
    def submit(
        self, query: Query, plans: list[PlanNode], version: VersionPin = None
    ) -> np.ndarray:
        """Featurise here, score in a scorer process, block for the reply."""
        if self._closed:
            raise RuntimeError("scoring backend is closed")
        if not plans:
            return np.zeros(0, dtype=np.float64)
        token = self._resolve_token(version)
        featurizer = self._featurizer
        if featurizer is None and isinstance(version, ValueNetwork):
            featurizer = version.featurizer
        if featurizer is None:
            raise ScoringBackendError(
                "backend has no featurizer: construct ProcessPoolBackend with "
                "one, or pin requests to a live network"
            )
        examples = [featurizer.featurize(query, plan) for plan in plans]
        payload = pack_examples(examples)
        trace_id = current_trace_id()
        if trace_id is not None:
            payload = attach_trace(payload, trace_id)

        # Closed-check, pending registration and the enqueue share one lock
        # with close(), so no task can slip in behind a shutdown sentinel and
        # leave its submitter waiting out the full timeout.
        with self._lock:
            if self._closed:
                raise RuntimeError("scoring backend is closed")
            worker_index = self._pick_worker_locked()
            request_id = next(self._request_ids)
            pending = _PendingRequest(worker_index)
            self._pending[request_id] = pending
            self._task_queues[worker_index].put((request_id, token, payload))

        if not pending.done.wait(timeout=self.submit_timeout_seconds):
            with self._lock:
                self._pending.pop(request_id, None)
            raise ScoringBackendError(
                f"scoring request timed out after {self.submit_timeout_seconds}s "
                f"(worker {worker_index})"
            )
        if not pending.ok:
            raise ScoringBackendError(str(pending.data))
        # Graft here, in the submitting thread, where the trace context is
        # live — the collector thread that filled ``pending`` has none.
        remote, data = detach_span(pending.data)
        if remote is not None:
            scorer_id, seconds = remote
            add_span(
                "scoring.forward", seconds,
                process=f"scorer-{scorer_id}", examples=len(examples),
            )
        predictions = unpack_predictions(data)
        self._core.record(1, len(examples), pending.chunk_sizes)
        return predictions

    def _pick_worker_locked(self) -> int:
        for _ in range(len(self._processes)):
            index = self._next_worker
            self._next_worker = (self._next_worker + 1) % len(self._processes)
            if not self._dead[index]:
                return index
        raise ScoringBackendError("all scorer processes are dead")

    # ------------------------------------------------------------------ #
    # Collector thread: replies and crash detection
    # ------------------------------------------------------------------ #
    def _collect(self) -> None:
        while True:
            if self._closed and not self._pending:
                return
            try:
                request_id, ok, data, chunk_sizes = self._result_queue.get(timeout=0.1)
            except Empty:
                try:
                    self._reap_dead_workers()
                except Exception:  # noqa: BLE001 - collector must survive
                    # A failed reap/respawn (fd pressure, spawn errors) must
                    # not kill the collector: pending replies would otherwise
                    # wait out their full timeout with nobody listening.
                    pass
                continue
            except (EOFError, OSError, ValueError):
                return  # queue torn down during close()
            if request_id == 0:  # readiness handshake
                self._ready[chunk_sizes[0]].set()
                continue
            with self._lock:
                pending = self._pending.pop(request_id, None)
            if pending is None:
                continue  # submitter gave up (timeout)
            pending.ok = ok
            pending.data = data
            pending.chunk_sizes = tuple(chunk_sizes)
            pending.done.set()

    def _reap_dead_workers(self) -> None:
        """Fail the in-flight requests of workers that died mid-batch.

        With a ``max_respawns`` budget remaining, the dead worker is then
        replaced with a fresh process on the same slot (restoring snapshots
        from the spool on demand), so a transient crash costs one batch
        instead of permanently shrinking the pool.
        """
        for index, process in enumerate(self._processes):
            if self._dead[index] or process.is_alive():
                continue
            with self._lock:
                self._dead[index] = True
                orphaned = [
                    (request_id, pending)
                    for request_id, pending in self._pending.items()
                    if pending.worker_index == index
                ]
                for request_id, _ in orphaned:
                    del self._pending[request_id]
            self._core.count_crash()
            for _, pending in orphaned:
                pending.ok = False
                pending.data = (
                    f"scorer process {index} (pid {process.pid}) died mid-batch "
                    f"with exit code {process.exitcode}"
                )
                pending.done.set()
            self._respawn_worker(index, process)

    def _respawn_worker(self, index: int, crashed) -> None:
        """Replace the crashed worker on slot ``index`` if budget remains."""
        with self._lock:
            if self._closed or self._respawns_used >= self.max_respawns:
                return
            self._respawns_used += 1
        crashed.join(timeout=1.0)  # reap the corpse; it already exited
        try:
            self._task_queues[index].close()  # release the dead slot's pipe
        except (OSError, ValueError):
            pass
        task_queue, process = self._spawn_worker(index)
        with self._lock:
            if self._closed:
                # close() raced the respawn: tear the replacement down too.
                try:
                    task_queue.put(None)
                except (ValueError, OSError):
                    pass
                process.join(timeout=1.0)
                if process.is_alive():
                    process.terminate()
                return
            self._task_queues[index] = task_queue
            self._processes[index] = process
            self._ready[index] = threading.Event()
            self._dead[index] = False
        self._core.count_respawn()
        emit_event("scorer_respawn", worker_id=index)

    # ------------------------------------------------------------------ #
    # Introspection and lifecycle
    # ------------------------------------------------------------------ #
    def wait_ready(self, timeout: float | None = None) -> bool:
        """Block until every scorer process has finished starting up.

        Spawned workers pay an interpreter + import cost before their task
        loop runs; the pool is usable before then (submits just queue), but
        latency-sensitive callers — and fair benchmarks — can wait it out.

        Returns:
            True when all workers signalled ready within ``timeout``.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        for event in self._ready:
            remaining = (
                None if deadline is None else max(deadline - time.monotonic(), 0.0)
            )
            if not event.wait(timeout=remaining):
                return False
        return True

    def alive_workers(self) -> int:
        """Scorer processes still serving."""
        return sum(
            0 if dead else int(process.is_alive())
            for dead, process in zip(self._dead, self._processes)
        )

    def stats(self) -> ScoringBridgeStats:
        """A snapshot of the batching counters (crashes and publishes included)."""
        return self._core.snapshot()

    def close(self) -> None:
        """Stop the scorer processes and release the spool directory."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        if self._registry is not None:
            self._registry.unsubscribe(self._on_serving_change)
        for index, task_queue in enumerate(self._task_queues):
            if not self._dead[index]:
                try:
                    task_queue.put(None)
                except (ValueError, OSError):
                    pass
        deadline = time.monotonic() + 5.0
        for process in self._processes:
            process.join(timeout=max(deadline - time.monotonic(), 0.1))
            if process.is_alive():
                process.terminate()
                process.join(timeout=1.0)
        self._collector.join(timeout=2.0)
        for task_queue in self._task_queues:
            task_queue.close()
        self._result_queue.close()
        # Wake any stragglers still waiting on a reply.
        with self._lock:
            orphaned = list(self._pending.values())
            self._pending.clear()
        for pending in orphaned:
            pending.ok = False
            pending.data = "scoring backend closed"
            pending.done.set()
        if self._owns_spool:
            shutil.rmtree(self._spool_dir, ignore_errors=True)
