"""Figure 6: Balsa's workload speedups over PostgreSQL-like and CommDB-like experts.

Paper: train/test speedups of 2.1x/1.7x (JOB), 1.3x/1.3x (JOB Slow), 1.1x/1.2x
(TPC-H) over PostgreSQL, and larger speedups (up to 2.8x) over CommDB because
its left-deep-only space is weaker.  The shape to check: speedups >= ~1 and
the CommDB column >= the PostgreSQL column.
"""

from benchmarks.conftest import run_once
from repro.evaluation import experiments
from repro.evaluation.reporting import format_table


def bench_figure6_speedups(benchmark, scale):
    result = run_once(
        benchmark,
        experiments.run_figure6_speedups,
        scale,
        workloads=("job", "tpch"),
        experts=("postgres", "commdb"),
    )
    print()
    print(
        format_table(
            ["workload", "expert", "train speedup", "test speedup"],
            [
                [r["workload"], r["expert"], r["train_speedup"], r["test_speedup"]]
                for r in result["rows"]
            ],
            title="Figure 6: Balsa speedups over the expert optimizers",
        )
    )
    assert all(r["train_speedup"] > 0 for r in result["rows"])
