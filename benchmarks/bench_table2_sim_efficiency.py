"""Table 2: simulation learning efficiency (dataset sizes, collection and train times).

Paper: JOB 516K points / 6.8 min collection / 24 min training; TPC-H is far
smaller (12K / 1.1 min / 1 min).  The shape to check: JOB-like workloads yield
orders of magnitude more simulation data than TPC-H, and collection is cheap
relative to training.
"""

from benchmarks.conftest import run_once
from repro.evaluation import experiments
from repro.evaluation.reporting import format_table


def bench_table2_simulation_efficiency(benchmark, scale):
    result = run_once(
        benchmark,
        experiments.run_table2_simulation_efficiency,
        scale,
        workloads=("job", "job_slow", "tpch"),
    )
    print()
    print(
        format_table(
            ["workload", "size", "collection (min)", "train (min)"],
            [
                [r["workload"], r["dataset_size"], r["collection_minutes"], r["train_minutes"]]
                for r in result["rows"]
            ],
            title="Table 2: simulation learning efficiency",
        )
    )
    by_workload = {r["workload"]: r for r in result["rows"]}
    assert by_workload["job"]["dataset_size"] > by_workload["tpch"]["dataset_size"]
