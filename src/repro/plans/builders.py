"""Convenience constructors for plan trees."""

from __future__ import annotations

from typing import Sequence

from repro.plans.nodes import JoinNode, JoinOperator, PlanNode, ScanNode, ScanOperator
from repro.sql.query import Query


def scan(
    query: Query, alias: str, operator: ScanOperator = ScanOperator.SEQ_SCAN
) -> ScanNode:
    """Build a scan leaf for ``alias`` of ``query``."""
    return ScanNode(alias=alias, table=query.alias_to_table[alias], operator=operator)


def join(
    left: PlanNode, right: PlanNode, operator: JoinOperator = JoinOperator.HASH_JOIN
) -> JoinNode:
    """Join two subplans with the given physical operator."""
    return JoinNode(left=left, right=right, operator=operator)


def all_scan_operators() -> tuple[ScanOperator, ...]:
    """All physical scan operators in the search space."""
    return (ScanOperator.SEQ_SCAN, ScanOperator.INDEX_SCAN)


def all_join_operators() -> tuple[JoinOperator, ...]:
    """All physical join operators in the search space."""
    return (JoinOperator.HASH_JOIN, JoinOperator.MERGE_JOIN, JoinOperator.NESTED_LOOP)


def left_deep_plan(
    query: Query,
    alias_order: Sequence[str],
    join_operator: JoinOperator = JoinOperator.HASH_JOIN,
    scan_operator: ScanOperator = ScanOperator.SEQ_SCAN,
) -> PlanNode:
    """Build a left-deep plan joining aliases in the given order.

    Args:
        query: The query the plan belongs to.
        alias_order: Join order; must cover all query aliases exactly once.
        join_operator: Physical operator used for every join.
        scan_operator: Physical operator used for every scan.

    Returns:
        A left-deep :class:`~repro.plans.nodes.PlanNode`.
    """
    aliases = list(alias_order)
    if set(aliases) != set(query.aliases):
        raise ValueError("alias_order must be a permutation of the query's aliases")
    current: PlanNode = scan(query, aliases[0], scan_operator)
    for alias in aliases[1:]:
        current = JoinNode(current, scan(query, alias, scan_operator), join_operator)
    return current
