"""Convenience facade re-exporting the library's main entry points.

Typical usage::

    from repro import BalsaConfig, BalsaAgent, make_job_benchmark

    benchmark = make_job_benchmark(fact_rows=1000, num_queries=40)
    config = BalsaConfig.small(seed=0, num_iterations=20)
    agent = BalsaAgent(
        benchmark.environment(), config,
        expert_runtimes=benchmark.expert_runtimes(),
    )
    agent.train()
    print(agent.workload_runtime(benchmark.test_queries))
"""

from repro.agent.balsa import BalsaAgent
from repro.agent.config import BalsaConfig
from repro.agent.environment import BalsaEnvironment
from repro.baselines.bao import BaoAgent
from repro.baselines.neo import NeoAgent
from repro.diversity.merge import merge_agent_experiences, retrain_from_experience
from repro.evaluation.experiments import ExperimentScale
from repro.service.metrics import ServiceMetrics
from repro.service.service import PlannerService, ServiceResponse
from repro.workloads.benchmark import (
    WorkloadBenchmark,
    make_job_benchmark,
    make_tpch_benchmark,
)

__all__ = [
    "BalsaAgent",
    "BalsaConfig",
    "BalsaEnvironment",
    "BaoAgent",
    "NeoAgent",
    "PlannerService",
    "ServiceMetrics",
    "ServiceResponse",
    "merge_agent_experiences",
    "retrain_from_experience",
    "ExperimentScale",
    "WorkloadBenchmark",
    "make_job_benchmark",
    "make_tpch_benchmark",
]
