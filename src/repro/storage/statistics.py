"""Per-column statistics: row counts, distinct counts and equi-depth histograms.

These statistics feed the histogram cardinality estimator
(:mod:`repro.cardinality.estimator`), which plays the role of PostgreSQL's
``ANALYZE``-collected statistics in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.storage.database import Database


@dataclass
class ColumnStatistics:
    """Statistics for one column.

    Attributes:
        num_rows: Table row count.
        num_distinct: Number of distinct values.
        min_value: Minimum value.
        max_value: Maximum value.
        histogram_bounds: Equi-depth histogram bucket boundaries
            (``num_buckets + 1`` values).
        most_common_values: The most frequent values (like PostgreSQL's MCV list).
        most_common_fractions: Their frequencies as fractions of the table.
    """

    num_rows: int
    num_distinct: int
    min_value: float
    max_value: float
    histogram_bounds: np.ndarray
    most_common_values: np.ndarray
    most_common_fractions: np.ndarray

    def equality_selectivity(self, value: object) -> float:
        """Selectivity of ``column = value`` (MCV list, then uniform fallback)."""
        if self.num_rows == 0:
            return 0.0
        matches = np.flatnonzero(self.most_common_values == value)
        if len(matches):
            return float(self.most_common_fractions[matches[0]])
        remaining_fraction = max(0.0, 1.0 - float(self.most_common_fractions.sum()))
        remaining_distinct = max(1, self.num_distinct - len(self.most_common_values))
        return remaining_fraction / remaining_distinct

    def range_selectivity(self, low: float | None, high: float | None) -> float:
        """Selectivity of ``low <= column <= high`` using the histogram."""
        if self.num_rows == 0:
            return 0.0
        lo = self.min_value if low is None else float(low)
        hi = self.max_value if high is None else float(high)
        if hi < lo:
            return 0.0
        bounds = self.histogram_bounds
        if len(bounds) < 2 or bounds[-1] == bounds[0]:
            return 1.0 if lo <= self.min_value <= hi else 0.5
        num_buckets = len(bounds) - 1
        # Fraction of each bucket covered by [lo, hi], assuming uniformity
        # inside buckets (exactly PostgreSQL's approach).
        total = 0.0
        for i in range(num_buckets):
            b_lo, b_hi = float(bounds[i]), float(bounds[i + 1])
            width = max(b_hi - b_lo, 1e-12)
            overlap = max(0.0, min(hi, b_hi) - max(lo, b_lo))
            if b_lo == b_hi and lo <= b_lo <= hi:
                overlap = width
            total += min(1.0, overlap / width)
        return min(1.0, total / num_buckets)


@dataclass
class TableStatistics:
    """Statistics for one table: row count plus per-column statistics."""

    num_rows: int
    columns: dict[str, ColumnStatistics]

    def column(self, name: str) -> ColumnStatistics:
        """Statistics for column ``name``."""
        return self.columns[name]


def _column_statistics(
    array: np.ndarray, num_buckets: int, num_mcv: int
) -> ColumnStatistics:
    """Compute :class:`ColumnStatistics` for one numpy column."""
    num_rows = len(array)
    if num_rows == 0:
        return ColumnStatistics(0, 0, 0.0, 0.0, np.zeros(2), np.array([]), np.array([]))
    values, counts = np.unique(array, return_counts=True)
    order = np.argsort(counts)[::-1]
    top = order[: min(num_mcv, len(order))]
    mcv = values[top]
    mcv_fracs = counts[top] / num_rows
    quantiles = np.linspace(0.0, 1.0, num_buckets + 1)
    bounds = np.quantile(array, quantiles)
    return ColumnStatistics(
        num_rows=num_rows,
        num_distinct=len(values),
        min_value=float(values.min()),
        max_value=float(values.max()),
        histogram_bounds=np.asarray(bounds, dtype=np.float64),
        most_common_values=mcv,
        most_common_fractions=np.asarray(mcv_fracs, dtype=np.float64),
    )


def collect_statistics(
    database: Database, num_buckets: int = 20, num_mcv: int = 10
) -> dict[str, TableStatistics]:
    """Run the equivalent of ``ANALYZE`` over the whole database.

    Args:
        database: The database to profile.
        num_buckets: Equi-depth histogram bucket count per column.
        num_mcv: Number of most-common values tracked per column.

    Returns:
        Mapping from table name to :class:`TableStatistics`.
    """
    stats: dict[str, TableStatistics] = {}
    for name, table in database.tables.items():
        columns = {
            column: _column_statistics(values, num_buckets, num_mcv)
            for column, values in table.columns.items()
        }
        stats[name] = TableStatistics(num_rows=table.num_rows, columns=columns)
    return stats
