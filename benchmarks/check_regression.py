"""CI perf-regression gate over pytest-benchmark ``--benchmark-json`` output.

Compares the headline ``extra_info`` metrics a benchmark emitted against a
committed baseline file and fails (exit 1) when any check is violated, with
one clear message per violation.  Baselines live in
``benchmarks/baselines/*.json``:

.. code-block:: json

    {
      "benchmark": "bench_http_gateway",
      "description": "single-process gateway load",
      "checks": [
        {"metric": "failed_requests", "max": 0},
        {"metric": "service_cache_hit_rate", "min": 0.5},
        {"metric": "http_qps", "baseline": 100.0,
         "direction": "higher", "tolerance": 0.5},
        {"metric": "qps_scaling_4w_vs_1w", "min": 1.6,
         "when_cpus_at_least": 4}
      ]
    }

Check semantics (a check may combine several bounds):

- ``max`` / ``min`` — absolute bounds on the measured value;
- ``baseline`` + ``direction`` (+ ``tolerance``, default 0.25) — relative
  band: with ``direction: "higher"`` (bigger is better) the value must stay
  above ``baseline * (1 - tolerance)``; with ``"lower"`` below
  ``baseline * (1 + tolerance)``;
- ``required`` (default true) — a missing metric is itself a violation
  unless ``required`` is false;
- ``when_cpus_at_least`` — skip the check on smaller runners (CPU count
  from the results' ``available_cpus`` extra_info, else ``os.cpu_count()``)
  so hardware-dependent bars (QPS scaling) only gate where they can hold.

Usage (pairs are matched positionally, any number of them)::

    python benchmarks/check_regression.py \\
        --baseline benchmarks/baselines/gateway.json --results gateway.json \\
        --baseline benchmarks/baselines/scoring.json --results scoring.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys

DEFAULT_TOLERANCE = 0.25


def load_extra_info(results: dict, benchmark_filter: str | None = None) -> dict:
    """Merged ``extra_info`` of the (filtered) benchmarks in a results dict.

    ``benchmark_filter`` selects benchmarks whose ``name`` (or the test part
    of ``fullname``, after ``::``) contains the substring; None takes every
    benchmark in the file.  The module path before ``::`` is deliberately NOT
    matched — a file named ``bench_http_gateway.py`` must not drag every
    benchmark it contains into a ``bench_http_gateway`` filter.  Later
    benchmarks win key collisions (rare: headline keys are bench-specific).
    """
    merged: dict = {}
    for entry in results.get("benchmarks", []):
        name = entry.get("name", "")
        testname = entry.get("fullname", "").rsplit("::", 1)[-1]
        if benchmark_filter and (
            benchmark_filter not in name and benchmark_filter not in testname
        ):
            continue
        merged.update(entry.get("extra_info", {}) or {})
    return merged


def _check_one(check: dict, metrics: dict, cpus: int) -> list[str]:
    """Violation messages for one baseline check (empty = pass/skip)."""
    metric = check.get("metric")
    if not metric:
        return [f"baseline check is missing 'metric': {check!r}"]
    needed = check.get("when_cpus_at_least")
    if needed is not None and cpus < needed:
        return []
    if metric not in metrics:
        if check.get("required", True):
            return [
                f"{metric}: missing from the results' extra_info "
                f"(available: {sorted(metrics) or 'none'})"
            ]
        return []
    try:
        value = float(metrics[metric])
    except (TypeError, ValueError):
        return [f"{metric}: value {metrics[metric]!r} is not numeric"]

    violations = []
    if "max" in check and value > float(check["max"]):
        violations.append(
            f"{metric}: {value:g} exceeds the allowed maximum {check['max']:g}"
        )
    if "min" in check and value < float(check["min"]):
        violations.append(
            f"{metric}: {value:g} is below the required minimum {check['min']:g}"
        )
    if "baseline" in check:
        baseline = float(check["baseline"])
        tolerance = float(check.get("tolerance", DEFAULT_TOLERANCE))
        direction = check.get("direction", "higher")
        if direction == "higher":
            floor = baseline * (1.0 - tolerance)
            if value < floor:
                violations.append(
                    f"{metric}: {value:g} regressed below {floor:g} "
                    f"(baseline {baseline:g}, tolerance -{tolerance:.0%})"
                )
        elif direction == "lower":
            ceiling = baseline * (1.0 + tolerance)
            if value > ceiling:
                violations.append(
                    f"{metric}: {value:g} regressed above {ceiling:g} "
                    f"(baseline {baseline:g}, tolerance +{tolerance:.0%})"
                )
        else:
            violations.append(
                f"{metric}: unknown direction {direction!r} "
                "(expected 'higher' or 'lower')"
            )
    return violations


def evaluate(baseline: dict, results: dict, cpus: int | None = None) -> list[str]:
    """All violation messages for one (baseline, results) pair."""
    metrics = load_extra_info(results, baseline.get("benchmark"))
    if cpus is None:
        reported = metrics.get("available_cpus")
        try:
            cpus = int(reported) if reported is not None else (os.cpu_count() or 1)
        except (TypeError, ValueError):
            cpus = os.cpu_count() or 1
    checks = baseline.get("checks", [])
    if not checks:
        return [f"baseline {baseline.get('description', '?')!r} has no checks"]
    violations = []
    for check in checks:
        violations.extend(_check_one(check, metrics, cpus))
    return violations


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Gate benchmark extra_info metrics against committed baselines."
    )
    parser.add_argument(
        "--baseline", action="append", default=[], metavar="BASELINE_JSON",
        help="baseline file; repeat for more pairs",
    )
    parser.add_argument(
        "--results", action="append", default=[], metavar="RESULTS_JSON",
        help="pytest-benchmark --benchmark-json output; pairs with --baseline "
        "positionally",
    )
    parser.add_argument(
        "--cpus", type=int, default=None,
        help="override the CPU count used for when_cpus_at_least gating",
    )
    args = parser.parse_args(argv)
    if not args.baseline or len(args.baseline) != len(args.results):
        parser.error("--baseline and --results must appear the same number of times")

    failed = False
    for baseline_path, results_path in zip(args.baseline, args.results):
        try:
            with open(baseline_path, encoding="utf-8") as handle:
                baseline = json.load(handle)
        except (OSError, ValueError) as error:
            print(f"FAIL {baseline_path}: unreadable baseline ({error})")
            failed = True
            continue
        try:
            with open(results_path, encoding="utf-8") as handle:
                results = json.load(handle)
        except (OSError, ValueError) as error:
            print(f"FAIL {results_path}: unreadable results ({error})")
            failed = True
            continue
        label = baseline.get("description") or os.path.basename(baseline_path)
        violations = evaluate(baseline, results, cpus=args.cpus)
        if violations:
            failed = True
            print(f"FAIL {label} ({results_path}):")
            for violation in violations:
                print(f"  - {violation}")
        else:
            print(f"PASS {label} ({len(baseline.get('checks', []))} checks)")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
