"""Figure 9: per-query speedups over the expert vs the expert's runtime.

Paper: Balsa speeds up most queries, with the biggest wins on the slowest
queries; slowdowns concentrate on queries that are already fast.  The shape to
check: the runtime-weighted aggregate speedup exceeds the unweighted share of
slowed-down queries' impact (i.e. slow queries improve).
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.evaluation import experiments
from repro.evaluation.reporting import format_table


def bench_figure9_per_query(benchmark, scale):
    result = run_once(benchmark, experiments.run_figure9_per_query, scale, workload="job")
    rows = []
    for split in ("train", "test"):
        for point in sorted(result["points"][split], key=lambda p: -p["expert_runtime"])[:8]:
            rows.append([split, point["query"], point["expert_runtime"], point["speedup"]])
    print()
    print(
        format_table(
            ["split", "query", "expert runtime (s)", "speedup"],
            rows,
            title="Figure 9: per-query speedups (8 slowest per split shown)",
        )
    )
    train_speedups = [p["speedup"] for p in result["points"]["train"]]
    assert np.isfinite(train_speedups).all()
