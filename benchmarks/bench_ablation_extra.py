"""Extra ablation (paper §10, footnote 11): cardinality-estimate noise.

Paper: dividing the simulator's cardinality estimates by random factors with a
median of 5x has little impact on Balsa's final plans, because most learning
happens after simulation.  The shape to check: the noisy-estimator agent's
train speedup stays within a small factor of the clean agent's.
"""

from benchmarks.conftest import run_once
from repro.evaluation import experiments
from repro.evaluation.reporting import format_table


def bench_estimator_noise_ablation(benchmark, scale):
    result = run_once(
        benchmark, experiments.run_estimator_noise_ablation, scale, noise_factors=(1.0, 5.0)
    )
    print()
    print(
        format_table(
            ["estimate noise factor", "train speedup", "test speedup"],
            [
                [r["noise_factor"], r["train_speedup"], r["test_speedup"]]
                for r in result["rows"]
            ],
            title="Estimator-noise ablation (paper §10)",
        )
    )
    clean, noisy = result["rows"][0], result["rows"][1]
    assert noisy["train_speedup"] >= 0.25 * clean["train_speedup"]
