"""Threaded batching backend: cross-search coalescing on one scoring thread.

Each beam search scores the children of an expanded state in one submit.
When several searches run concurrently, those per-frontier batches are often
small and arrive close together; this backend funnels them through a single
scoring thread that drains the request queue, concatenates the featurised
examples into one larger forward pass, then scatters the predictions back to
the waiting searches.  Tree-convolution forward passes are thereby amortised
across the beam frontiers of *all* in-flight queries.

Compared to the historical ``BatchedScoringBridge`` (now a thin alias over
this class), featurisation has moved off the scoring thread into the
submitting workers: the single scoring thread spends its time in numpy
forward passes, not in Python featurisation, and the featuriser cache is
populated from the same threads that later hit it.
"""

from __future__ import annotations

import queue
import threading
import time
from typing import TYPE_CHECKING, Callable, Sequence

import numpy as np

from repro.featurization.featurizer import FeaturizedExample
from repro.model.value_network import ValueNetwork
from repro.plans.nodes import PlanNode
from repro.scoring.core import NetworkResolver, ScoringCore
from repro.scoring.protocol import ScoringBridgeStats, VersionPin
from repro.sql.query import Query

if TYPE_CHECKING:
    from repro.lifecycle.registry import ModelRegistry

_SENTINEL = object()


class _ScoreRequest:
    """One pending scoring request from a beam search."""

    __slots__ = ("examples", "network", "done", "result", "error")

    def __init__(self, examples: list[FeaturizedExample], network: ValueNetwork):
        self.examples = examples
        self.network = network
        self.done = threading.Event()
        self.result: np.ndarray | None = None
        self.error: BaseException | None = None


class ThreadedBatchingBackend:
    """Coalesces scoring requests from concurrent searches into large batches.

    Args:
        network_provider: Zero-argument callable returning the current
            network (a callable rather than a reference so the backend
            follows model swaps).
        registry: Optional :class:`ModelRegistry` to resolve integer version
            pins against (equivalent to calling :meth:`follow`).
        featurizer: Featuriser for restoring registry snapshots.
        max_batch_size: Upper bound on examples per forward pass; larger
            coalesced batches are chunked.
        coalesce_wait_seconds: How long the scoring thread lingers for
            stragglers after receiving a request before running the batch.
            Zero scores whatever has already queued without waiting.
        adaptive_batching: Enable :class:`ScoringCore`'s load-adaptive
            batch cap: the coalescing budget grows while the request queue
            is deep and shrinks back when it drains.
    """

    def __init__(
        self,
        network_provider: Callable[[], "ValueNetwork | None"] | None = None,
        *,
        registry: "ModelRegistry | None" = None,
        featurizer=None,
        max_batch_size: int = 512,
        coalesce_wait_seconds: float = 0.001,
        adaptive_batching: bool = False,
    ):
        self._resolver = NetworkResolver(network_provider, registry, featurizer)
        self._core = ScoringCore(max_batch_size, adaptive=adaptive_batching)
        self.coalesce_wait_seconds = coalesce_wait_seconds
        self._queue: queue.Queue = queue.Queue()
        self._submit_lock = threading.Lock()
        self._closed = False
        self._thread = threading.Thread(
            target=self._run, name="scoring-backend", daemon=True
        )
        self._thread.start()

    @property
    def max_batch_size(self) -> int:
        return self._core.max_batch_size

    # ------------------------------------------------------------------ #
    # Search-facing API
    # ------------------------------------------------------------------ #
    def submit(
        self, query: Query, plans: list[PlanNode], version: VersionPin = None
    ) -> np.ndarray:
        """Score ``plans`` for ``query``; blocks until the batch runs.

        Featurisation happens here, on the submitting thread; only the
        featurised examples (pinned to their resolved network) travel to the
        scoring thread.  Requests pinned to different networks are never
        mixed into one forward pass.
        """
        if not plans:
            return np.zeros(0, dtype=np.float64)
        network = self._resolver.resolve(version)
        featurizer = self._resolver.featurizer or network.featurizer
        examples = [featurizer.featurize(query, plan) for plan in plans]
        request = _ScoreRequest(examples, network)
        # The closed check and the enqueue share a lock with close() so no
        # request can slip in behind the shutdown sentinel and wait forever.
        with self._submit_lock:
            if self._closed:
                raise RuntimeError("scoring backend is closed")
            self._core.observe_load(self._queue.qsize())
            self._queue.put(request)
        request.done.wait()
        if request.error is not None:
            raise request.error
        return request.result

    def follow(self, registry: "ModelRegistry") -> None:
        """Resolve version pins (and unpinned requests) against ``registry``."""
        self._resolver.follow(registry)

    def stats(self) -> ScoringBridgeStats:
        """A snapshot of the coalescing counters."""
        return self._core.snapshot()

    def close(self) -> None:
        """Stop the scoring thread; pending requests are still served."""
        with self._submit_lock:
            if self._closed:
                return
            self._closed = True
            self._queue.put(_SENTINEL)
        self._thread.join()

    # ------------------------------------------------------------------ #
    # Scoring thread
    # ------------------------------------------------------------------ #
    def _run(self) -> None:
        while True:
            item = self._queue.get()
            if item is _SENTINEL:
                break
            requests = self._gather([item])
            if requests is None:
                break
            self._serve(requests)

    def _gather(self, requests: list[_ScoreRequest]) -> list[_ScoreRequest] | None:
        """Drain stragglers into ``requests`` until the batch budget is met.

        Returns ``None`` when the sentinel arrives mid-drain (after serving
        what was already gathered).
        """
        deadline = time.perf_counter() + self.coalesce_wait_seconds
        saw_sentinel = False
        budget = self._core.batch_cap
        while sum(len(r.examples) for r in requests) < budget:
            remaining = deadline - time.perf_counter()
            try:
                if remaining > 0:
                    item = self._queue.get(timeout=remaining)
                else:
                    item = self._queue.get_nowait()
            except queue.Empty:
                break
            if item is _SENTINEL:
                saw_sentinel = True
                break
            requests.append(item)
        if saw_sentinel:
            self._serve(requests)
            return None
        return requests

    def _serve(self, requests: list[_ScoreRequest]) -> None:
        """Run coalesced forward passes and scatter results to requests.

        Requests pinned to different networks (a hot-swap window: some
        searches still on version N, new ones on N+1) are never mixed into
        one forward pass; each pinned group gets its own batch.
        """
        for group in self._group_by_network(requests):
            try:
                examples = [
                    example for request in group for example in request.examples
                ]
                predictions = self._core.predict_examples(
                    group[0].network, examples, requests=len(group)
                )
                offset = 0
                for request in group:
                    request.result = predictions[offset : offset + len(request.examples)]
                    offset += len(request.examples)
            except BaseException as error:  # surface failures in the caller
                for request in group:
                    request.error = error
            finally:
                for request in group:
                    request.done.set()

    @staticmethod
    def _group_by_network(
        requests: Sequence[_ScoreRequest],
    ) -> list[list[_ScoreRequest]]:
        groups: dict[int, list[_ScoreRequest]] = {}
        for request in requests:
            groups.setdefault(id(request.network), []).append(request)
        return list(groups.values())
