"""Workload-level and per-query performance metrics (paper §8.1, "Metrics")."""

from __future__ import annotations

from typing import Mapping

import numpy as np


def workload_runtime(latencies: Mapping[str, float]) -> float:
    """Workload runtime: the sum of per-query latencies."""
    return float(sum(latencies.values()))


def normalized_runtime(
    latencies: Mapping[str, float], expert_latencies: Mapping[str, float]
) -> float:
    """Workload runtime normalised by the expert's runtime on the same queries."""
    expert_total = workload_runtime(
        {name: expert_latencies[name] for name in latencies}
    )
    if expert_total <= 0:
        raise ValueError("expert workload runtime must be positive")
    return workload_runtime(latencies) / expert_total


def speedup(
    latencies: Mapping[str, float], expert_latencies: Mapping[str, float]
) -> float:
    """Workload speedup over the expert (the paper's Figure 6/16 metric)."""
    return 1.0 / normalized_runtime(latencies, expert_latencies)


def per_query_speedups(
    latencies: Mapping[str, float], expert_latencies: Mapping[str, float]
) -> dict[str, float]:
    """Per-query speedups over the expert (Figure 9)."""
    speedups = {}
    for name, latency in latencies.items():
        if latency <= 0:
            raise ValueError(f"non-positive latency for query {name!r}")
        speedups[name] = expert_latencies[name] / latency
    return speedups


def per_query_regressions(
    baseline_costs: Mapping[str, float], candidate_costs: Mapping[str, float]
) -> dict[str, float]:
    """Per-query cost ratios candidate / baseline (> 1 means a regression).

    The shadow-evaluation gate uses these to decide whether a candidate model
    may replace the serving one: a ratio of 1.0 is parity, 2.0 means the
    candidate's plan costs twice the serving plan on that query.  Zero or
    negative baseline costs are guarded so a free baseline query never
    divides by zero.
    """
    regressions = {}
    for name, candidate in candidate_costs.items():
        baseline = baseline_costs[name]
        regressions[name] = candidate / max(baseline, 1e-12)
    return regressions


def median_and_range(values: list[float]) -> tuple[float, float, float]:
    """Median plus (min, max) range, the aggregation used across seeded runs."""
    array = np.asarray(values, dtype=np.float64)
    return float(np.median(array)), float(array.min()), float(array.max())
