"""Query featurisation: the [table → selectivity] vector."""

from __future__ import annotations

import numpy as np

from repro.cardinality.base import CardinalityEstimator
from repro.catalog.schema import Schema
from repro.sql.query import Query


class QueryEncoder:
    """Encodes a query as a fixed-length per-table selectivity vector.

    Each slot corresponds to one table of the schema and holds the estimated
    selectivity of the query's filters on that table (1.0 for an unfiltered
    joined table, 0.0 for an absent table).  When a query references the same
    table under several aliases, the slot holds the product of the aliases'
    selectivities — a compact way to keep the encoding fixed-size, consistent
    with the paper's "simpler than both Neo and DQ" design.

    Args:
        schema: The database schema (defines the slot order).
        estimator: Cardinality estimator used for per-alias selectivities.
    """

    def __init__(self, schema: Schema, estimator: CardinalityEstimator):
        self.schema = schema
        self.estimator = estimator
        self.table_order: list[str] = schema.table_names()
        self._slots = {table: i for i, table in enumerate(self.table_order)}
        self._cache: dict[str, np.ndarray] = {}

    @property
    def dimension(self) -> int:
        """Length of the encoding vector."""
        return len(self.table_order)

    def encode(self, query: Query) -> np.ndarray:
        """Encode ``query`` into its selectivity vector."""
        cached = self._cache.get(query.name)
        if cached is not None:
            return cached
        encoding = np.zeros(self.dimension, dtype=np.float64)
        present = np.zeros(self.dimension, dtype=bool)
        for table_ref in query.tables:
            slot = self._slots[table_ref.table]
            selectivity = self.estimator.selectivity(query, table_ref.alias)
            if present[slot]:
                encoding[slot] *= selectivity
            else:
                encoding[slot] = selectivity
                present[slot] = True
        self._cache[query.name] = encoding
        return encoding
