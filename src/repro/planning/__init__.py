"""The unified planning API: one protocol, one envelope, a planner registry.

Every optimizer in the repository — Balsa's beam search, the classical DP and
greedy enumerators, the QuickPick/random samplers, the expert baselines and
the Bao/Neo agents — sits behind the same three pieces:

- the envelopes (:class:`PlanRequest` / :class:`PlanResult`, in
  :mod:`repro.planning.envelope`): a uniform request carrying the query,
  ``k``, a planning budget, a priority and per-request knobs, answered by a
  uniform result carrying plans, predictions, timings, search stats and the
  planner's identity;
- the protocol (:class:`Planner`, in :mod:`repro.planning.protocol`): any
  object with ``name`` and ``plan(request) -> PlanResult``;
- the registry (:mod:`repro.planning.registry`): string-keyed lookup so
  ``repro.planning.get("postgres").plan(PlanRequest(query=q, k=3))`` works
  for every registered backend, and
  :func:`~repro.planning.adapters.registry_from_benchmark` wires the nine
  standard planners for a :class:`~repro.workloads.benchmark.WorkloadBenchmark`.

The serving front door (:class:`~repro.service.service.PlannerService`)
accepts the same envelopes, adds caching/dedup/concurrency, and enforces
deadlines and capacity with :class:`AdmissionError`.

Adapter classes and :func:`registry_from_benchmark` are re-exported lazily
(they pull in the heavier agent/baseline modules); import them from
:mod:`repro.planning.adapters` directly in library code.
"""

from repro.planning.envelope import (
    AdmissionError,
    PlanningError,
    PlanRequest,
    PlanResult,
    UnknownPlannerError,
)
from repro.planning.protocol import Planner, planner_version
from repro.planning.registry import (
    PlannerRegistry,
    available,
    default_registry,
    get,
    register,
    unregister,
)

#: Adapter names resolved lazily from :mod:`repro.planning.adapters` to keep
#: ``import repro.planning`` (pulled in by low-level modules) lightweight and
#: cycle-free.
_LAZY_ADAPTER_NAMES = (
    "AgentPlanner",
    "BeamPlanner",
    "RandomPlanner",
    "STANDARD_PLANNERS",
    "register_versioned_network",
    "registry_from_benchmark",
    "versioned_planner_name",
)

__all__ = [
    "AdmissionError",
    "Planner",
    "PlannerRegistry",
    "PlanningError",
    "PlanRequest",
    "PlanResult",
    "UnknownPlannerError",
    "available",
    "default_registry",
    "get",
    "planner_version",
    "register",
    "unregister",
    *_LAZY_ADAPTER_NAMES,
]


def __getattr__(name: str):
    if name in _LAZY_ADAPTER_NAMES:
        from repro.planning import adapters

        return getattr(adapters, name)
    raise AttributeError(f"module 'repro.planning' has no attribute {name!r}")
