"""Greedy plan construction for queries too large for exact DP.

PostgreSQL switches from exhaustive DP to GEQO above a table-count threshold;
our expert optimizer switches to this greedy pairing heuristic instead: it
repeatedly merges the pair of partial plans whose join has the lowest total
cost, trying every allowed physical operator, until one plan remains.  This
keeps expert planning polynomial for the largest JOB-like queries (up to 16
tables) while remaining cost-model-driven.
"""

from __future__ import annotations

import time
import warnings

from repro.costmodel.base import CostModel
from repro.execution.hints import HintSet
from repro.planning.envelope import PlanRequest, PlanResult
from repro.plans.builders import scan
from repro.plans.nodes import JoinNode, JoinOperator, PlanNode, ScanOperator
from repro.sql.query import Query


class GreedyOptimizer:
    """Greedy bottom-up pairing guided by a cost model.

    Args:
        cost_model: Additive cost model.
        hint_set: Restricts physical operators (``None`` = all operators).
        physical: Whether to enumerate physical operators.
    """

    name = "greedy"

    def __init__(
        self,
        cost_model: CostModel,
        hint_set: HintSet | None = None,
        physical: bool = True,
    ):
        self.cost_model = cost_model
        self.hint_set = hint_set or HintSet(name="all")
        self.physical = physical

    def plan(self, request: PlanRequest) -> PlanResult:
        """Plan ``request.query`` greedily (the :class:`Planner` protocol entry)."""
        started = time.perf_counter()
        plan, cost = self.best_plan_and_cost(request.query)
        return PlanResult(
            plans=[plan],
            predicted_latencies=[cost],
            planning_seconds=time.perf_counter() - started,
            planner_name=self.name,
        )

    def optimize(self, query: Query) -> tuple[PlanNode, float]:
        """Deprecated alias of :meth:`best_plan_and_cost`."""
        warnings.warn(
            "GreedyOptimizer.optimize() is deprecated; use plan(PlanRequest(...)) "
            "or best_plan_and_cost()",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.best_plan_and_cost(query)

    def best_plan_and_cost(self, query: Query) -> tuple[PlanNode, float]:
        """Build a complete plan for ``query`` greedily.

        Returns:
            ``(plan, cost)`` where ``cost`` is the plan's total model cost.
        """
        scan_ops = self._scan_operators()
        join_ops = self._join_operators()

        partials: list[tuple[PlanNode, float]] = []
        for alias in query.aliases:
            best_scan: tuple[PlanNode, float] | None = None
            for operator in scan_ops:
                candidate = scan(query, alias, operator)
                cost = self.cost_model.node_cost(query, candidate)
                if best_scan is None or cost < best_scan[1]:
                    best_scan = (candidate, cost)
            partials.append(best_scan)

        while len(partials) > 1:
            best: tuple[int, int, PlanNode, float] | None = None
            for i in range(len(partials)):
                for j in range(len(partials)):
                    if i == j:
                        continue
                    left_plan, left_cost = partials[i]
                    right_plan, right_cost = partials[j]
                    if not query.joins_between(
                        left_plan.leaf_aliases, right_plan.leaf_aliases
                    ):
                        continue
                    for operator in join_ops:
                        candidate = JoinNode(left_plan, right_plan, operator)
                        cost = self.cost_model.combine(
                            query, candidate, left_cost, right_cost
                        )
                        if best is None or cost < best[3]:
                            best = (i, j, candidate, cost)
            if best is None:
                raise ValueError(
                    f"query {query.name!r}: join graph is disconnected; cannot plan "
                    "without cross products"
                )
            i, j, candidate, cost = best
            keep = [p for idx, p in enumerate(partials) if idx not in (i, j)]
            keep.append((candidate, cost))
            partials = keep

        return partials[0]

    def _scan_operators(self) -> tuple[ScanOperator, ...]:
        if not self.physical:
            return (ScanOperator.SEQ_SCAN,)
        allowed = tuple(
            op
            for op in (ScanOperator.SEQ_SCAN, ScanOperator.INDEX_SCAN)
            if self.hint_set.allows_scan(op)
        )
        return allowed or (ScanOperator.SEQ_SCAN,)

    def _join_operators(self) -> tuple[JoinOperator, ...]:
        if not self.physical:
            return (JoinOperator.HASH_JOIN,)
        allowed = tuple(
            op
            for op in (JoinOperator.HASH_JOIN, JoinOperator.MERGE_JOIN, JoinOperator.NESTED_LOOP)
            if self.hint_set.allows_join(op)
        )
        return allowed or (JoinOperator.HASH_JOIN,)
