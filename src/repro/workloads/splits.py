"""Train/test splits of a workload (paper §8.1 and §8.5).

- **Random split**: a randomly sampled test set (the main "JOB" setting).
- **Slow split**: the test set is the N slowest queries when planned by an
  expert optimizer ("JOB Slow").
- **Template split**: whole join templates are held out (the "4 slowest
  templates" split and Ext-JOB-style generalisation).
"""

from __future__ import annotations

from typing import Mapping, Sequence


from repro.sql.query import Query, QuerySet
from repro.utils.rng import new_rng


def random_split(
    queries: Sequence[Query], test_size: int, seed: int = 0, name: str = "job"
) -> tuple[QuerySet, QuerySet]:
    """Randomly split queries into train/test sets."""
    if test_size >= len(queries):
        raise ValueError("test_size must be smaller than the workload")
    rng = new_rng(seed)
    order = rng.permutation(len(queries))
    test_idx = set(order[:test_size].tolist())
    train = [q for i, q in enumerate(queries) if i not in test_idx]
    test = [q for i, q in enumerate(queries) if i in test_idx]
    return QuerySet(f"{name}/train", train), QuerySet(f"{name}/test", test)


def slow_split(
    queries: Sequence[Query],
    expert_runtimes: Mapping[str, float],
    test_size: int,
    name: str = "job_slow",
) -> tuple[QuerySet, QuerySet]:
    """Hold out the slowest queries (by expert runtime) as the test set."""
    missing = [q.name for q in queries if q.name not in expert_runtimes]
    if missing:
        raise KeyError(f"expert runtimes missing for queries: {missing[:5]}")
    ordered = sorted(queries, key=lambda q: expert_runtimes[q.name], reverse=True)
    test_names = {q.name for q in ordered[:test_size]}
    train = [q for q in queries if q.name not in test_names]
    test = [q for q in queries if q.name in test_names]
    return QuerySet(f"{name}/train", train), QuerySet(f"{name}/test", test)


def template_split(
    queries: Sequence[Query],
    template_of: Mapping[str, int],
    test_templates: Sequence[int],
    name: str = "job_templates",
) -> tuple[QuerySet, QuerySet]:
    """Hold out all queries belonging to the given templates."""
    test_set = set(test_templates)
    train = [q for q in queries if template_of[q.name] not in test_set]
    test = [q for q in queries if template_of[q.name] in test_set]
    return QuerySet(f"{name}/train", train), QuerySet(f"{name}/test", test)


def slowest_templates(
    queries: Sequence[Query],
    template_of: Mapping[str, int],
    expert_runtimes: Mapping[str, float],
    num_templates: int = 4,
) -> list[int]:
    """The templates with the largest total expert runtime (paper §8.5)."""
    totals: dict[int, float] = {}
    for query in queries:
        template = template_of[query.name]
        totals[template] = totals.get(template, 0.0) + expert_runtimes[query.name]
    ranked = sorted(totals, key=lambda t: totals[t], reverse=True)
    return ranked[:num_templates]
