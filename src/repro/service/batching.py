"""Cross-search scoring coalescing for the planner service.

Each beam search scores the children of an expanded state in one
``ValueNetwork.predict`` call.  When several searches run concurrently, those
per-frontier batches are often small and arrive close together; the bridge
funnels them through a single scoring thread that drains the request queue,
concatenates the featurised examples into one larger forward pass, then
scatters the predictions back to the waiting searches.  Tree-convolution
forward passes are thereby amortised across the beam frontiers of *all*
in-flight queries, not just one.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.model.value_network import ValueNetwork
from repro.plans.nodes import PlanNode
from repro.sql.query import Query


class _ScoreRequest:
    """One pending scoring request from a beam search."""

    __slots__ = ("query", "plans", "network", "done", "result", "error")

    def __init__(
        self, query: Query, plans: list[PlanNode], network: ValueNetwork | None = None
    ):
        self.query = query
        self.plans = plans
        self.network = network
        self.done = threading.Event()
        self.result: np.ndarray | None = None
        self.error: BaseException | None = None


_SENTINEL = object()


@dataclass
class ScoringBridgeStats:
    """Counters describing how well scoring requests coalesced.

    Attributes:
        requests: Scoring requests submitted by beam searches.
        examples: Total (query, plan) pairs scored.
        forward_batches: Value-network forward passes actually run.
        coalesced_batches: Forward passes that merged more than one request.
        max_batch_examples: Largest single forward-pass batch.
    """

    requests: int = 0
    examples: int = 0
    forward_batches: int = 0
    coalesced_batches: int = 0
    max_batch_examples: int = 0

    @property
    def mean_batch_examples(self) -> float:
        """Average examples per forward pass (0 when nothing was scored)."""
        return self.examples / self.forward_batches if self.forward_batches else 0.0


class BatchedScoringBridge:
    """Coalesces scoring requests from concurrent searches into large batches.

    Args:
        network_provider: Zero-argument callable returning the current
            :class:`ValueNetwork` (a callable rather than a reference so the
            bridge follows model swaps, e.g. Neo-style retrains).
        max_batch_size: Upper bound on examples per forward pass; larger
            coalesced batches are chunked.
        coalesce_wait_seconds: How long the scoring thread lingers for
            stragglers after receiving a request before running the batch.
            Zero scores whatever has already queued without waiting.
    """

    def __init__(
        self,
        network_provider: Callable[[], ValueNetwork],
        max_batch_size: int = 512,
        coalesce_wait_seconds: float = 0.001,
    ):
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        self.network_provider = network_provider
        self.max_batch_size = max_batch_size
        self.coalesce_wait_seconds = coalesce_wait_seconds
        self._queue: queue.Queue = queue.Queue()
        self._lock = threading.Lock()
        self._submit_lock = threading.Lock()
        self._stats = ScoringBridgeStats()
        self._closed = False
        self._thread = threading.Thread(
            target=self._run, name="planner-scoring-bridge", daemon=True
        )
        self._thread.start()

    # ------------------------------------------------------------------ #
    # Search-facing API
    # ------------------------------------------------------------------ #
    def score(
        self,
        query: Query,
        plans: list[PlanNode],
        network: ValueNetwork | None = None,
    ) -> np.ndarray:
        """Score ``plans`` for ``query``; blocks until the batch runs.

        Drop-in replacement for ``ValueNetwork.predict`` — beam searches pass
        this as their ``score_fn``.

        Args:
            query: The query the plans belong to.
            plans: Candidate plans to score.
            network: Optional network pinned to this request.  The serving
                layer pins the network resolved at admission time so an
                in-flight search keeps scoring against version N across a hot
                swap to N+1; unpinned requests follow ``network_provider``.
        """
        if not plans:
            return np.zeros(0, dtype=np.float64)
        request = _ScoreRequest(query, list(plans), network)
        # The closed check and the enqueue share a lock with close() so no
        # request can slip in behind the shutdown sentinel and wait forever.
        with self._submit_lock:
            if self._closed:
                raise RuntimeError("scoring bridge is closed")
            self._queue.put(request)
        request.done.wait()
        if request.error is not None:
            raise request.error
        return request.result

    def stats(self) -> ScoringBridgeStats:
        """A snapshot of the coalescing counters."""
        with self._lock:
            return ScoringBridgeStats(
                requests=self._stats.requests,
                examples=self._stats.examples,
                forward_batches=self._stats.forward_batches,
                coalesced_batches=self._stats.coalesced_batches,
                max_batch_examples=self._stats.max_batch_examples,
            )

    def close(self) -> None:
        """Stop the scoring thread; pending requests are still served."""
        with self._submit_lock:
            if self._closed:
                return
            self._closed = True
            self._queue.put(_SENTINEL)
        self._thread.join()

    # ------------------------------------------------------------------ #
    # Scoring thread
    # ------------------------------------------------------------------ #
    def _run(self) -> None:
        while True:
            item = self._queue.get()
            if item is _SENTINEL:
                break
            requests = self._gather([item])
            if requests is None:
                break
            self._serve(requests)

    def _gather(self, requests: list[_ScoreRequest]) -> list[_ScoreRequest] | None:
        """Drain stragglers into ``requests`` until the batch budget is met.

        Returns ``None`` when the sentinel arrives mid-drain (after serving
        what was already gathered).
        """
        deadline = time.perf_counter() + self.coalesce_wait_seconds
        saw_sentinel = False
        while sum(len(r.plans) for r in requests) < self.max_batch_size:
            remaining = deadline - time.perf_counter()
            try:
                if remaining > 0:
                    item = self._queue.get(timeout=remaining)
                else:
                    item = self._queue.get_nowait()
            except queue.Empty:
                break
            if item is _SENTINEL:
                saw_sentinel = True
                break
            requests.append(item)
        if saw_sentinel:
            self._serve(requests)
            return None
        return requests

    def _serve(self, requests: list[_ScoreRequest]) -> None:
        """Run coalesced forward passes and scatter results to requests.

        Requests pinned to different networks (a hot-swap window: some
        searches still on version N, new ones on N+1) are never mixed into
        one forward pass; each pinned group gets its own batch.
        """
        for group in self._group_by_network(requests):
            try:
                predictions = self._predict(group)
                offset = 0
                for request in group:
                    request.result = predictions[offset : offset + len(request.plans)]
                    offset += len(request.plans)
            except BaseException as error:  # surface failures in the caller
                for request in group:
                    request.error = error
            finally:
                for request in group:
                    request.done.set()

    @staticmethod
    def _group_by_network(
        requests: Sequence[_ScoreRequest],
    ) -> list[list[_ScoreRequest]]:
        groups: dict[int, list[_ScoreRequest]] = {}
        for request in requests:
            groups.setdefault(id(request.network), []).append(request)
        return list(groups.values())

    def _predict(self, requests: Sequence[_ScoreRequest]) -> np.ndarray:
        network = requests[0].network
        if network is None:
            network = self.network_provider()
        featurizer = network.featurizer
        examples = [
            featurizer.featurize(request.query, plan)
            for request in requests
            for plan in request.plans
        ]
        outputs = []
        chunks = 0
        for start in range(0, len(examples), self.max_batch_size):
            chunk = examples[start : start + self.max_batch_size]
            outputs.append(network.predict_examples(chunk))
            chunks += 1
        with self._lock:
            stats = self._stats
            stats.requests += len(requests)
            stats.examples += len(examples)
            stats.forward_batches += chunks
            stats.coalesced_batches += chunks if len(requests) > 1 else 0
            largest = min(len(examples), self.max_batch_size)
            stats.max_batch_examples = max(stats.max_batch_examples, largest)
        return np.concatenate(outputs) if outputs else np.zeros(0, dtype=np.float64)
