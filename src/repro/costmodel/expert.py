"""A PostgreSQL-style expert cost model.

The expert cost model mirrors the execution engine's per-operator work
formulas (hash build/probe costs, sort costs, index probe costs, nested-loop
products, memory spills) but evaluates them on *estimated* cardinalities from
a :class:`~repro.cardinality.base.CardinalityEstimator` instead of the true
intermediate sizes.  That combination — sophisticated operator modelling,
imperfect cardinalities, one-size-fits-all constants — is exactly what makes
the real PostgreSQL optimizer both strong and beatable, and is what the paper
uses both as its expert baseline's brain and as the "Expert Simulator"
ablation (Figure 10).
"""

from __future__ import annotations

import math

from repro.cardinality.base import CardinalityEstimator
from repro.costmodel.base import CostModel
from repro.execution.latency import LatencyModel
from repro.plans.nodes import JoinNode, JoinOperator, PlanNode, ScanNode, ScanOperator
from repro.sql.expr import ComparisonOp
from repro.sql.query import Query
from repro.storage.database import Database


def _log2(value: float) -> float:
    return math.log2(max(2.0, value))


class ExpertCostModel(CostModel):
    """Physical cost model with PostgreSQL-flavoured operator formulas.

    Args:
        estimator: Cardinality estimator used for every intermediate size.
        database: Database (needed to know base-table sizes and which columns
            are indexed, as the real planner does through the catalog).
        constants: Operator cost constants.  Defaults to the engine's
            :class:`~repro.execution.latency.LatencyModel` defaults, i.e. the
            expert "knows" the hardware profile but not the true cardinalities.
        cost_constant_error: Multiplier applied to nested-loop and index costs
            to model the expert's generic (not workload-tuned) constants.  A
            value of 1.0 means perfectly tuned constants.
    """

    is_physical = True

    def __init__(
        self,
        estimator: CardinalityEstimator,
        database: Database,
        constants: LatencyModel | None = None,
        cost_constant_error: float = 1.6,
    ):
        self.estimator = estimator
        self.database = database
        self.constants = constants or LatencyModel()
        self.cost_constant_error = cost_constant_error

    # ------------------------------------------------------------------ #
    # CostModel interface
    # ------------------------------------------------------------------ #
    def node_cost(self, query: Query, node: PlanNode) -> float:
        if isinstance(node, ScanNode):
            return self._scan_cost(query, node)
        if isinstance(node, JoinNode):
            return self._join_cost(query, node)
        raise TypeError(f"unknown plan node type {type(node)!r}")

    # ------------------------------------------------------------------ #
    # Operator formulas
    # ------------------------------------------------------------------ #
    def _scan_cost(self, query: Query, node: ScanNode) -> float:
        c = self.constants
        table = self.database.table(node.table)
        base_rows = table.num_rows
        out_rows = self.estimator.estimate(query, node.leaf_aliases)
        cost = c.startup_cost
        if node.operator is ScanOperator.INDEX_SCAN:
            usable = any(
                f.op is ComparisonOp.EQ and table.has_index(f.column)
                for f in query.filters_for(node.alias)
            )
            if usable:
                cost += (
                    c.index_probe_cost * _log2(base_rows) * self.cost_constant_error
                    + out_rows
                )
            else:
                cost += base_rows * c.seq_scan_cost * 1.5
        else:
            cost += base_rows * c.seq_scan_cost
        return cost + out_rows * c.cpu_tuple_cost

    def _join_cost(self, query: Query, node: JoinNode) -> float:
        c = self.constants
        left_rows = self.estimator.estimate(query, node.left.leaf_aliases)
        right_rows = self.estimator.estimate(query, node.right.leaf_aliases)
        out_rows = self.estimator.estimate(query, node.leaf_aliases)
        cost = c.startup_cost
        if node.operator is JoinOperator.HASH_JOIN:
            build = left_rows * c.hash_build_cost
            probe = right_rows * c.hash_probe_cost
            if left_rows > c.memory_limit_tuples:
                build *= c.spill_factor
                probe *= c.spill_factor
            cost += build + probe
        elif node.operator is JoinOperator.MERGE_JOIN:
            cost += c.sort_cost * (
                left_rows * _log2(left_rows) + right_rows * _log2(right_rows)
            )
            cost += (left_rows + right_rows) * c.cpu_tuple_cost
        else:  # nested loop
            indexed = self._indexed_inner(query, node)
            if indexed:
                inner_alias = next(iter(node.right.leaf_aliases))
                inner_table = self.database.table(query.alias_to_table[inner_alias])
                probe_cost = (
                    c.index_probe_cost
                    * _log2(inner_table.num_rows)
                    * self.cost_constant_error
                )
                cost += left_rows * probe_cost + out_rows * c.cpu_tuple_cost
            else:
                cost += (
                    left_rows
                    * right_rows
                    * c.nested_loop_cost
                    * self.cost_constant_error
                )
        return cost + out_rows * c.cpu_tuple_cost

    def _indexed_inner(self, query: Query, node: JoinNode) -> bool:
        if not isinstance(node.right, ScanNode):
            return False
        inner_alias = node.right.alias
        table = self.database.table(node.right.table)
        for predicate in query.joins_between(
            node.left.leaf_aliases, node.right.leaf_aliases
        ):
            if inner_alias in predicate.aliases() and table.has_index(
                predicate.column_for(inner_alias)
            ):
                return True
        return False
