"""Online learning from live gateway traffic (the serving-side §4 loop).

Balsa's core loop — plan, execute, observe the real cost, retrain — ran only
inside the offline agent until now.  This package runs it *while serving*:

- :class:`~repro.experience.sink.ExperienceSink` — the request-path recorder:
  a bounded, drop-counting queue the gateway appends one tuple to per served
  plan (never blocks, never raises, audits its own latency);
- :class:`~repro.experience.replay.ReplayBuffer` — fingerprint-dedup +
  reservoir sampling + recency-weighted draws + JSONL persistence, turning
  the repetitive live stream into a bounded training set that survives
  restarts;
- :class:`~repro.experience.loop.OnlineTrainerLoop` — the autonomous
  consumer: costs observations under the shared yardstick, replays them, and
  on a cadence/threshold policy runs fine-tune rounds through the existing
  :class:`~repro.lifecycle.manager.ModelLifecycle` (train → shadow gate →
  promote → live-monitor rollback arming);
- :class:`~repro.experience.metrics.ExperienceMetrics` — the counters and
  cost trend served by ``GET /v1/experience`` and the ``experience`` block
  of ``GET /v1/metrics``.
"""

from repro.experience.loop import OnlineTrainerLoop
from repro.experience.metrics import ExperienceMetrics
from repro.experience.replay import (
    ExperienceTuple,
    ReplayBuffer,
    ReplayBufferStats,
    with_executed_cost,
)
from repro.experience.sink import ExperienceSink, SinkStats

__all__ = [
    "ExperienceMetrics",
    "ExperienceSink",
    "ExperienceTuple",
    "OnlineTrainerLoop",
    "ReplayBuffer",
    "ReplayBufferStats",
    "SinkStats",
    "with_executed_cost",
]
