"""Tests for the telemetry subsystem: tracing, metrics, events, streaming.

Covers the unit layer (registry exposition and merging, span trees, ring
bounds, the event bus, JSON logging), the gateway integration (a ``/v1/plan``
request producing one trace whose spans cross the scorer *process* and the
shared-cache *server*, Prometheus exposition covering every subsystem, worker
headers on error responses, SSE lifecycle events), and the fleet layer (a
2-worker :class:`~repro.server.sharding.ShardedGateway` whose supervisor
serves worker-merged ``/metrics``).
"""

from __future__ import annotations

import json
import logging
import math
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.costmodel.cout import CoutCostModel
from repro.experience import ExperienceMetrics
from repro.lifecycle import ModelRegistry
from repro.model.value_network import ValueNetwork, ValueNetworkConfig
from repro.search.beam import BeamSearchPlanner
from repro.server import PlanningServer, TrafficShadower
from repro.server.shadow_traffic import ShadowTrafficStats
from repro.server.sharding import (
    PlanCacheServer,
    ShardedGateway,
    SharedCacheClient,
    TelemetryPushClient,
    TelemetrySnapshotServer,
    WorkerSpec,
)
from repro.service.cache import TieredPlanCache
from repro.service.service import PlannerService
from repro.telemetry import (
    EventBus,
    JsonLogFormatter,
    MetricsRegistry,
    add_span,
    emit_event,
    enabled,
    get_event_bus,
    get_tracer,
    merge_snapshots,
    new_trace_id,
    render_snapshot,
    set_enabled,
    set_log_context,
    span,
    start_trace,
    valid_trace_id,
)
from repro.telemetry.trace import Trace, Tracer
from repro.workloads.benchmark import make_job_benchmark


def small_planner() -> BeamSearchPlanner:
    return BeamSearchPlanner(beam_size=2, top_k=2, enumerate_scan_operators=False)


@pytest.fixture(scope="module")
def bench():
    return make_job_benchmark(
        fact_rows=200, num_queries=6, num_templates=3, test_size=2,
        seed=2, size_range=(3, 4),
    )


@pytest.fixture(scope="module")
def network(bench) -> ValueNetwork:
    """Untrained but servable: telemetry cares about spans, not plan quality."""
    return ValueNetwork(
        bench.featurizer,
        ValueNetworkConfig(
            query_hidden=16, query_embedding=8, tree_channels=(16, 8),
            head_hidden=8, seed=2,
        ),
    )


def http(method: str, url: str, payload=None, headers=None, timeout: float = 30.0):
    """One JSON HTTP exchange; returns (status, body, response headers)."""
    data = None
    send_headers = dict(headers or {})
    if payload is not None:
        data = json.dumps(payload).encode("utf-8")
        send_headers["Content-Type"] = "application/json"
    request = urllib.request.Request(
        url, data=data, method=method, headers=send_headers
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return (
                response.status,
                json.loads(response.read().decode("utf-8")),
                dict(response.headers),
            )
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read().decode("utf-8")), dict(error.headers)


def fetch_text(url: str, timeout: float = 30.0) -> tuple[int, str]:
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return response.status, response.read().decode("utf-8")


def span_index(trace_json: dict) -> dict:
    """Flatten a trace's span tree into {name: span_dict} (pre-order)."""
    index: dict = {}

    def walk(node: dict) -> None:
        index.setdefault(node["name"], node)
        for child in node.get("spans", []):
            walk(child)

    walk(trace_json["root"])
    return index


# ---------------------------------------------------------------------- #
# Metrics registry
# ---------------------------------------------------------------------- #
class TestMetricsRegistry:
    def test_counter_gauge_histogram_render(self):
        registry = MetricsRegistry()
        registry.counter("t_requests_total", "Requests.", {"planner": "a"}).inc(3)
        registry.gauge("t_pending", "Pending.").set(2.5)
        hist = registry.histogram("t_seconds", "Latency.")
        hist.observe(0.0002)
        hist.observe(100.0)  # beyond the last bound -> +Inf bucket
        text = registry.render()
        assert "# HELP t_requests_total Requests." in text
        assert "# TYPE t_requests_total counter" in text
        assert 't_requests_total{planner="a"} 3' in text
        assert "t_pending 2.5" in text
        assert 't_seconds_bucket{le="+Inf"} 2' in text
        assert "t_seconds_count 2" in text
        # Buckets are cumulative: every bound above 0.0002 already counts it.
        assert 't_seconds_bucket{le="0.00025"} 1' in text

    def test_label_values_are_escaped(self):
        registry = MetricsRegistry()
        registry.counter("t_total", "t", {"q": 'he said "hi"\n'}).inc()
        text = registry.render()
        assert 't_total{q="he said \\"hi\\"\\n"} 1' in text

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("t_metric", "t")
        with pytest.raises(ValueError):
            registry.gauge("t_metric", "t")

    def test_merge_sums_counters_and_histograms(self):
        snapshots = []
        for value in (3, 4):
            registry = MetricsRegistry()
            registry.counter("t_total", "t", {"planner": "a"}).inc(value)
            registry.histogram("t_seconds", "t").observe(0.01)
            snapshots.append(registry.snapshot())
        merged = merge_snapshots(snapshots)
        text = render_snapshot(merged)
        assert 't_total{planner="a"} 7' in text
        assert "t_seconds_count 2" in text

    def test_merge_gauges_by_aggregation(self):
        snapshots = []
        for value in (2.0, 4.0):
            registry = MetricsRegistry()
            registry.gauge("t_sum", "t").set(value)
            registry.gauge("t_max", "t", aggregation="max").set(value)
            registry.gauge("t_mean", "t", aggregation="mean").set(value)
            snapshots.append(registry.snapshot())
        values = {
            metric["name"]: metric["value"]
            for metric in merge_snapshots(snapshots)["metrics"]
        }
        assert values["t_sum"] == 6.0
        assert values["t_max"] == 4.0
        assert values["t_mean"] == 3.0


# ---------------------------------------------------------------------- #
# Tracing
# ---------------------------------------------------------------------- #
class TestTracing:
    def test_span_tree_nesting_and_annotations(self):
        with start_trace("/v1/plan") as trace:
            with span("outer", k=2):
                with span("inner"):
                    pass
            trace_id = trace.trace_id
        recorded = get_tracer().find(trace_id)
        assert recorded is not None
        index = span_index(recorded.to_json_dict())
        assert {"outer", "inner"} <= set(index)
        assert index["outer"]["annotations"] == {"k": 2}
        assert index["inner"] in index["outer"]["spans"]

    def test_grafted_span_backdates_its_start(self):
        with start_trace("/x") as trace:
            add_span("remote.work", 0.25, process="scorer-1", examples=4)
            trace_id = trace.trace_id
        recorded = get_tracer().find(trace_id)
        grafted = span_index(recorded.to_json_dict())["remote.work"]
        assert grafted["process"] == "scorer-1"
        assert grafted["duration_ms"] == pytest.approx(250.0)
        assert grafted["start_ms"] >= 0.0

    def test_ring_is_bounded_and_counter_is_not(self):
        tracer = Tracer(ring_size=4)
        for index in range(10):
            trace = Trace(f"/q{index}")
            trace.finish()
            tracer.record(trace)
        payload = tracer.to_json_dict()
        assert payload["recorded"] == 10
        assert len(payload["traces"]) == 4
        assert payload["traces"][0]["path"] == "/q9"  # newest first

    def test_slowest_keeps_the_worst_requests(self):
        tracer = Tracer(ring_size=8, slow_log_size=2)
        for seconds in (0.01, 0.5, 0.02, 0.9):
            trace = Trace("/p")
            trace.root.duration_seconds = seconds
            tracer.record(trace)
        slowest = tracer.to_json_dict()["slowest"]
        durations = [entry["duration_ms"] for entry in slowest]
        assert durations == sorted(durations, reverse=True)
        assert durations[0] == pytest.approx(900.0)
        assert len(durations) == 2

    def test_disabled_tracing_is_a_noop(self):
        was = enabled()
        try:
            set_enabled(False)
            with start_trace("/off") as trace:
                assert trace is None
                with span("nothing") as child:
                    assert child is None
        finally:
            set_enabled(was)

    def test_incoming_trace_id_is_honored_and_invalid_ones_replaced(self):
        supplied = new_trace_id()
        with start_trace("/x", trace_id=supplied) as trace:
            assert trace.trace_id == supplied
        with start_trace("/x", trace_id="not valid! way " + "x" * 100) as trace:
            assert valid_trace_id(trace.trace_id)
            assert trace.trace_id != supplied


# ---------------------------------------------------------------------- #
# Events and logging
# ---------------------------------------------------------------------- #
class TestEventsAndLogging:
    def test_event_bus_cursor_and_capacity(self):
        bus = EventBus(capacity=4)
        cursor = bus.cursor
        for index in range(6):
            bus.emit("tick", index=index)
        events, cursor = bus.since(cursor)
        # The two oldest fell off the ring; the rest arrive in order.
        assert [event.fields["index"] for event in events] == [2, 3, 4, 5]
        assert bus.since(cursor)[0] == []

    def test_emit_event_reaches_the_global_bus(self):
        bus = get_event_bus()
        cursor = bus.cursor
        emit_event("test_event", detail="yes")
        events, _ = bus.since(cursor)
        assert any(
            event.kind == "test_event" and event.fields["detail"] == "yes"
            for event in events
        )

    def test_json_log_formatter_carries_trace_and_context(self):
        formatter = JsonLogFormatter()
        set_log_context(worker=3)
        try:
            with start_trace("/logged") as trace:
                record = logging.LogRecord(
                    "repro.test", logging.INFO, __file__, 1, "hello %s", ("world",),
                    None,
                )
                record.repro_fields = {"round": 7}
                payload = json.loads(formatter.format(record))
                assert payload["message"] == "hello world"
                assert payload["level"] == "info"
                assert payload["trace_id"] == trace.trace_id
                assert payload["worker"] == 3
                assert payload["round"] == 7
        finally:
            set_log_context(worker=None)


# ---------------------------------------------------------------------- #
# Non-finite floats on the ops wire (satellite: consistent spellings)
# ---------------------------------------------------------------------- #
class TestWireSpellings:
    def test_experience_metrics_spell_non_finite_floats(self):
        metrics = ExperienceMetrics(
            last_round_seconds=math.nan, cost_trend=[1.0, math.inf]
        )
        body = metrics.to_json_dict()
        json.dumps(body, allow_nan=False)  # strictly JSON-safe
        assert body["last_round_seconds"] == "NaN"
        assert body["cost_trend"] == [1.0, "Infinity"]

    def test_shadow_stats_spell_non_finite_floats(self):
        stats = ShadowTrafficStats(
            rolling_regression=math.inf, worst_regression=math.nan
        )
        body = stats.to_json_dict()
        json.dumps(body, allow_nan=False)
        assert body["rolling_regression"] == "Infinity"
        assert body["worst_regression"] == "NaN"


# ---------------------------------------------------------------------- #
# Gateway integration: one stack, process-pool scoring, shared cache tier
# ---------------------------------------------------------------------- #
class _StubExperience:
    """The minimal ``experience`` surface the gateway consumes."""

    def __init__(self):
        self._metrics = ExperienceMetrics(running=True, rounds=1)

    def observe(self, *args, **kwargs) -> None:
        pass

    def metrics(self) -> ExperienceMetrics:
        return self._metrics


@pytest.fixture(scope="module")
def tele_stack(bench, network, tmp_path_factory):
    """Gateway + process-pool scorers + shared cache tier, started once."""
    tmp = tmp_path_factory.mktemp("telemetry")
    cache_server = PlanCacheServer(str(tmp / "cache.sock"), capacity=256).start()
    service = PlannerService(
        network,
        planner=small_planner(),
        max_workers=2,
        cache_capacity=64,
        scoring_backend="process",
    )
    service.cache = TieredPlanCache(
        service.cache, SharedCacheClient(cache_server.address)
    )
    registry = ModelRegistry(retention=8)
    baseline = registry.register(network, source="baseline")
    registry.promote(baseline.version)
    candidate = registry.register(network.clone(), source="candidate")
    shadower = TrafficShadower(
        service,
        registry,
        CoutCostModel(bench.estimator).cost,
        sample_fraction=0.5,
        min_samples=1_000,  # observe-only: never enough samples to roll back
        window=1_000,
        planner=small_planner(),
        featurizer=bench.featurizer,
    )
    gateway = PlanningServer(
        service,
        registry=registry,
        shadower=shadower,
        experience=_StubExperience(),
        queries=bench.all_queries(),
        featurizer=bench.featurizer,
    )
    gateway.worker_id = 7  # exercise the worker header on every response
    gateway.start()
    yield {
        "gateway": gateway,
        "service": service,
        "candidate_version": candidate.version,
        "baseline_version": baseline.version,
        "queries": list(bench.train_queries),
    }
    gateway.close()
    shadower.close()
    service.close()
    cache_server.close()


class TestGatewayTelemetry:
    def test_plan_request_produces_a_cross_process_trace(self, tele_stack):
        gateway = tele_stack["gateway"]
        query = tele_stack["queries"][0]
        trace_id = new_trace_id()
        status, body, headers = http(
            "POST", f"{gateway.base_url}/v1/plan",
            {"query": query.name, "k": 2},
            headers={"X-Repro-Trace": trace_id},
        )
        assert status == 200 and body["plans"]
        assert headers.get("X-Repro-Trace") == trace_id
        assert headers.get("X-Repro-Worker") == "7"

        status, payload, _ = http("GET", f"{gateway.base_url}/v1/traces")
        assert status == 200
        assert payload["worker_id"] == 7
        traces = [t for t in payload["traces"] if t["trace_id"] == trace_id]
        assert traces, f"trace {trace_id} not in the ring"
        index = span_index(traces[0])
        # The serving pipeline end to end...
        assert {"admission", "cache.lookup", "search", "scoring"} <= set(index)
        # ...including work measured inside the scorer *process*...
        assert index["scoring.forward"]["process"].startswith("scorer-")
        assert index["scoring.forward"] in index["scoring"]["spans"]
        # ...and inside the shared-cache *server* process/thread.
        assert "cache.shared.put" in index
        assert index["cache.server.put"]["process"] == "cache-server"
        assert traces[0]["root"]["annotations"]["status"] == 200

    def test_cache_hit_annotates_the_lookup_span(self, tele_stack):
        gateway = tele_stack["gateway"]
        query = tele_stack["queries"][0]
        payload = {"query": query.name, "k": 2}
        http("POST", f"{gateway.base_url}/v1/plan", payload)  # warm
        trace_id = new_trace_id()
        status, _, _ = http(
            "POST", f"{gateway.base_url}/v1/plan", payload,
            headers={"X-Repro-Trace": trace_id},
        )
        assert status == 200
        _, traces, _ = http("GET", f"{gateway.base_url}/v1/traces")
        match = [t for t in traces["traces"] if t["trace_id"] == trace_id]
        index = span_index(match[0])
        assert index["cache.lookup"]["annotations"]["hit"] is True
        assert "search" not in index

    def test_prometheus_exposition_covers_every_subsystem(self, tele_stack):
        gateway = tele_stack["gateway"]
        for query in tele_stack["queries"][:3]:
            http("POST", f"{gateway.base_url}/v1/plan", {"query": query.name})
        status, text = fetch_text(f"{gateway.base_url}/metrics")
        assert status == 200
        expected = [
            'repro_service_requests_total{planner="default"}',  # service
            "repro_scoring_requests_total",                     # scoring
            "repro_service_cache_hit_rate",                     # cache (L1)
            "repro_shared_cache_client_shared_stores",          # cache (tier)
            "repro_shadow_observed_total",                      # shadow
            "repro_experience_rounds_total",                    # experience
            'repro_http_requests_total{path="/v1/plan"}',       # gateway HTTP
            "repro_request_service_seconds_bucket",             # latency hist
            "repro_traces_recorded_total",                      # tracer
        ]
        for needle in expected:
            assert needle in text, f"{needle} missing from /metrics"
        # Exposition is well-formed enough for a Prometheus scraper: every
        # sample line's metric has a TYPE comment.
        typed = {
            line.split()[2] for line in text.splitlines()
            if line.startswith("# TYPE")
        }
        for line in text.splitlines():
            if not line or line.startswith("#"):
                continue
            name = line.split("{")[0].split()[0]
            base = name
            for suffix in ("_bucket", "_sum", "_count"):
                if name.endswith(suffix):
                    base = name[: -len(suffix)]
                    break
            assert base in typed or name in typed, f"untyped sample {name}"

    def test_error_responses_carry_the_worker_header(self, tele_stack):
        gateway = tele_stack["gateway"]
        # A routing 404 goes through BaseHTTPRequestHandler.send_error...
        status, _, headers = http("GET", f"{gateway.base_url}/definitely/not")
        assert status == 404
        assert headers.get("X-Repro-Worker") == "7"
        # ...and a handler-level error through the JSON reply path.
        status, body, headers = http(
            "POST", f"{gateway.base_url}/v1/plan", {"query": "no-such-query"}
        )
        assert status in (400, 404) and "error" in body
        assert headers.get("X-Repro-Worker") == "7"

    def test_stream_delivers_metrics_and_the_promotion_event(self, tele_stack):
        gateway = tele_stack["gateway"]
        query = tele_stack["queries"][0]
        http("POST", f"{gateway.base_url}/v1/plan", {"query": query.name})
        url = f"{gateway.base_url}/v1/metrics/stream?interval=0.1&max_events=400"
        lines: list[str] = []

        def consume() -> None:
            # Read line-by-line and hang up as soon as the promotion arrives:
            # the promote itself (network swap + scorer broadcast) can take
            # longer than a few stream ticks, so a fixed-size read would race.
            with urllib.request.urlopen(url, timeout=30) as response:
                assert response.headers["Content-Type"].startswith(
                    "text/event-stream"
                )
                deadline = time.monotonic() + 25
                while time.monotonic() < deadline:
                    line = response.readline()
                    if not line:
                        break
                    decoded = line.decode("utf-8")
                    lines.append(decoded)
                    if '"kind": "promotion"' in decoded:
                        break

        reader = threading.Thread(target=consume)
        reader.start()
        time.sleep(0.35)  # stream is up; now emit a promotion mid-stream
        status, body, _ = http(
            "POST", f"{gateway.base_url}/v1/models/promote",
            {"version": tele_stack["candidate_version"]},
        )
        assert status == 200, body
        reader.join(timeout=30)
        assert not reader.is_alive(), "SSE reader did not finish"
        text = "".join(lines)
        events = [block for block in text.split("\n\n") if block.strip()]
        metrics_events = [e for e in events if e.startswith("event: metrics")]
        lifecycle_events = [e for e in events if e.startswith("event: lifecycle")]
        assert metrics_events, text
        sample = json.loads(metrics_events[0].split("data: ", 1)[1])
        assert sample["requests"] >= 1 and sample["worker_id"] == 7
        promoted = [
            json.loads(e.split("data: ", 1)[1]) for e in lifecycle_events
        ]
        assert any(
            e.get("kind") == "promotion"
            and e.get("version") == tele_stack["candidate_version"]
            for e in promoted
        ), f"no promotion event in stream: {text[-500:]}"
        # Restore the baseline for any later test.
        http("POST", f"{gateway.base_url}/v1/models/rollback")


# ---------------------------------------------------------------------- #
# Fleet telemetry: the sharded supervisor's merged /metrics
# ---------------------------------------------------------------------- #
def make_worker_factory(bench, network):
    def factory(spec: WorkerSpec) -> PlanningServer:
        service = PlannerService(
            network, planner=small_planner(), max_workers=2, cache_capacity=128
        )
        return PlanningServer(
            service, queries=bench.all_queries(), host=spec.host, port=spec.port
        )

    return factory


class TestFleetTelemetry:
    def test_sink_and_push_client_round_trip(self, tmp_path):
        sink = TelemetrySnapshotServer(str(tmp_path / "telemetry.sock")).start()
        try:
            def snapshot_for(value: int):
                registry = MetricsRegistry()
                registry.counter("t_total", "t").inc(value)
                return registry.snapshot()

            clients = [
                TelemetryPushClient(
                    sink.address, worker_id, lambda v=value: snapshot_for(v)
                )
                for worker_id, value in ((0, 3), (1, 4))
            ]
            try:
                for client in clients:
                    assert client.push() is True
                assert sink.worker_ids() == [0, 1]
                merged = merge_snapshots(sink.snapshots())
                assert "t_total 7" in render_snapshot(merged)
                assert sink.stats()["snapshots_received"] == 2
            finally:
                for client in clients:
                    client.close()
        finally:
            sink.close()

    def test_two_worker_fleet_metrics_aggregation(self, bench, network):
        queries = list(bench.train_queries)
        driven = 0
        shard = ShardedGateway(
            make_worker_factory(bench, network),
            num_workers=2,
            max_respawns=0,
            drain_grace_seconds=0.05,
        )
        with shard:
            for round_index in range(3):
                for query in queries:
                    status, body, _ = http(
                        "POST", f"{shard.base_url}/v1/plan",
                        {"query": query.name, "k": 2},
                    )
                    assert status == 200 and body["plans"]
                    driven += 1

            # Workers push snapshots every ~0.25s; wait for both to report
            # and for the merged counter to cover all driven traffic.
            deadline = time.monotonic() + 20.0
            requests_total = 0.0
            while time.monotonic() < deadline:
                snapshot = shard.fleet_metrics_snapshot()
                reporting = (
                    shard.telemetry_server.stats()["workers_reporting"]
                )
                requests_total = sum(
                    metric["value"]
                    for metric in snapshot["metrics"]
                    if metric["name"] == "repro_service_requests_total"
                )
                if reporting == 2 and requests_total >= driven:
                    break
                time.sleep(0.1)
            assert shard.telemetry_server.stats()["workers_reporting"] == 2
            assert requests_total >= driven, (
                f"fleet merge saw {requests_total} requests, drove {driven}"
            )

            # The supervisor's own HTTP scrape target serves the same view.
            status, text = fetch_text(shard.metrics_url)
            assert status == 200
            assert "repro_shard_workers_alive 2" in text
            assert "repro_service_requests_total" in text
            assert "repro_http_requests_total" in text
            assert "repro_shard_snapshots_received_total" in text
            assert "repro_shared_cache_hits_total" in text
            # Worker-pushed histograms merged: the fleet saw every request.
            count_lines = [
                line for line in text.splitlines()
                if line.startswith("repro_request_service_seconds_count")
            ]
            assert count_lines and float(count_lines[0].split()[-1]) >= driven
        # After close() the supervisor listener is gone.
        with pytest.raises((OSError, urllib.error.URLError)):
            fetch_text(shard.metrics_url, timeout=2.0)
