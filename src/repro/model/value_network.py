"""The tree-convolution value network :math:`V_\\theta(query, plan)`.

Architecture (paper §7, "Value network details", scaled for CPU training):

1. a small MLP embeds the query's [table → selectivity] vector;
2. the query embedding is concatenated onto every plan node's feature vector;
3. a stack of tree convolution layers propagates information along the plan
   tree;
4. dynamic max pooling reduces the tree to a fixed-size vector;
5. a small MLP head outputs a single value.

Targets are trained in ``log1p`` space and standardised, which keeps a single
network usable both for simulation costs (up to 1e7) and for real latencies
(fractions of a second) and mirrors how predictions "naturally change from the
scales of costs to latencies through fine-tuning" (paper footnote 5).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

import numpy as np

from repro.featurization.featurizer import (
    FeaturizedExample,
    QueryPlanFeaturizer,
    SignatureFeaturizer,
    canonical_signature,
)
from repro.nn.layers import Linear, Parameter, ReLU
from repro.nn.tree_conv import DynamicMaxPool, TreeBatch, TreeConvLayer
from repro.plans.nodes import PlanNode
from repro.sql.query import Query
from repro.utils.rng import RngFactory


class StateDictError(RuntimeError):
    """Base class for weight (de)serialisation failures."""


class StateDictMismatchError(StateDictError):
    """A state dict is incompatible with the target network.

    Raised instead of silently mis-loading when the serialized weights were
    produced by a different architecture (missing/unexpected/mis-shaped
    parameters) or against a different featurisation (schema or encoder
    dimensionalities changed).
    """


@dataclass
class ValueNetworkConfig:
    """Hyper-parameters of the value network.

    Attributes:
        query_hidden: Width of the query MLP's hidden layer.
        query_embedding: Width of the query embedding concatenated to nodes.
        tree_channels: Output channels of each tree convolution layer.
        head_hidden: Width of the output MLP's hidden layer.
        seed: Seed controlling weight initialisation.
    """

    query_hidden: int = 64
    query_embedding: int = 32
    tree_channels: tuple[int, ...] = (64, 64, 32)
    head_hidden: int = 32
    seed: int = 0


def _config_from_state(state: dict) -> "ValueNetworkConfig | None":
    """Reconstruct the architecture config a state dict was captured with.

    ``tree_channels`` survives JSON/npz round trips as a list; the config
    dataclass expects a tuple.  Returns ``None`` (caller defaults) when the
    state dict predates config capture.
    """
    config = state.get("config")
    if config is None:
        return None
    config = dict(config)
    if "tree_channels" in config:
        config["tree_channels"] = tuple(config["tree_channels"])
    return ValueNetworkConfig(**config)


@dataclass
class _ForwardCache:
    """Intermediate activations needed by the backward pass."""

    queries: np.ndarray = None  # type: ignore[assignment]
    tree_batch: TreeBatch = None  # type: ignore[assignment]
    node_inputs: TreeBatch = None  # type: ignore[assignment]
    valid: np.ndarray = None  # type: ignore[assignment]


#: Process-wide source of unique network identifiers (see ``ValueNetwork.uid``).
_NETWORK_UIDS = itertools.count()


class ValueNetwork:
    """The learned value function.

    Args:
        featurizer: Featuriser defining input dimensionalities.
        config: Network hyper-parameters.
    """

    def __init__(
        self,
        featurizer: QueryPlanFeaturizer,
        config: ValueNetworkConfig | None = None,
    ):
        self.featurizer = featurizer
        self.config = config or ValueNetworkConfig()
        rng = RngFactory(self.config.seed)

        query_dim = featurizer.query_dimension
        node_dim = featurizer.plan_node_dimension
        cfg = self.config

        self.query_fc1 = Linear(query_dim, cfg.query_hidden, rng.make("qfc1"), "query_fc1")
        self.query_act1 = ReLU()
        self.query_fc2 = Linear(
            cfg.query_hidden, cfg.query_embedding, rng.make("qfc2"), "query_fc2"
        )
        self.query_act2 = ReLU()

        in_channels = node_dim + cfg.query_embedding
        self.tree_layers: list[TreeConvLayer] = []
        self.tree_activations: list[ReLU] = []
        for i, channels in enumerate(cfg.tree_channels):
            self.tree_layers.append(
                TreeConvLayer(in_channels, channels, rng.make("tree", i), f"tree_conv{i}")
            )
            self.tree_activations.append(ReLU())
            in_channels = channels

        self.pool = DynamicMaxPool()
        self.head_fc1 = Linear(in_channels, cfg.head_hidden, rng.make("hfc1"), "head_fc1")
        self.head_act1 = ReLU()
        self.head_fc2 = Linear(cfg.head_hidden, 1, rng.make("hfc2"), "head_fc2")

        # Target normalisation (fit from training data).
        self.label_mean = 0.0
        self.label_std = 1.0

        # Model identity for cross-query plan caches: ``uid`` distinguishes
        # network instances, ``version`` increments whenever the weights
        # change (checkpoint loads, training runs).
        self.uid = next(_NETWORK_UIDS)
        self.version = 0

        self._cache = _ForwardCache()

    # ------------------------------------------------------------------ #
    # Parameters and (de)serialisation
    # ------------------------------------------------------------------ #
    def parameters(self) -> list[Parameter]:
        """All trainable parameters."""
        params: list[Parameter] = []
        params += self.query_fc1.parameters() + self.query_fc2.parameters()
        for layer in self.tree_layers:
            params += layer.parameters()
        params += self.head_fc1.parameters() + self.head_fc2.parameters()
        return params

    def num_parameters(self) -> int:
        """Total scalar parameter count."""
        return sum(p.size for p in self.parameters())

    def get_state(self) -> dict[str, np.ndarray]:
        """Copy of all weights plus the label normalisation statistics."""
        state = {p.name: p.value.copy() for p in self.parameters()}
        state["__label_mean__"] = np.array([self.label_mean])
        state["__label_std__"] = np.array([self.label_std])
        return state

    def set_state(self, state: dict[str, np.ndarray]) -> None:
        """Load weights produced by :meth:`get_state`."""
        by_name = {p.name: p for p in self.parameters()}
        for name, values in state.items():
            if name == "__label_mean__":
                self.label_mean = float(values[0])
            elif name == "__label_std__":
                self.label_std = float(values[0])
            else:
                parameter = by_name[name]
                if parameter.value.shape != values.shape:
                    raise ValueError(
                        f"shape mismatch for {name}: {parameter.value.shape} vs {values.shape}"
                    )
                parameter.value = values.copy()
                parameter.grad = np.zeros_like(parameter.value)
        self.bump_version()

    # ------------------------------------------------------------------ #
    # Explicit checkpoint format (lifecycle snapshots)
    # ------------------------------------------------------------------ #
    def state_dict(self) -> dict:
        """A self-describing checkpoint of this network.

        Unlike the flat :meth:`get_state` mapping, the state dict carries the
        architecture config and the featuriser signature alongside the
        weights, so :meth:`load_state_dict` can verify compatibility instead
        of silently mis-loading.
        """
        from dataclasses import asdict

        return {
            "format": "value-network-v1",
            "weights": {p.name: p.value.copy() for p in self.parameters()},
            "label_mean": self.label_mean,
            "label_std": self.label_std,
            "config": asdict(self.config),
            "featurizer_signature": self.featurizer.signature(),
        }

    def load_state_dict(self, state: dict) -> None:
        """Load a checkpoint produced by :meth:`state_dict`.

        Raises:
            StateDictMismatchError: When the checkpoint's featuriser signature
                differs from this network's, or its weights do not line up
                with this architecture (missing, unexpected or mis-shaped
                parameters).
        """
        if not isinstance(state, dict) or "weights" not in state:
            raise StateDictMismatchError(
                "not a value-network state dict (missing 'weights'); "
                "use set_state() for flat weight mappings"
            )
        recorded = state.get("featurizer_signature")
        current = canonical_signature(self.featurizer.signature())
        # Canonical (deep-tuple) comparison: signatures that crossed a JSON
        # or npz boundary come back with lists where tuples were.
        if recorded is not None and canonical_signature(recorded) != current:
            raise StateDictMismatchError(
                f"featurizer mismatch: checkpoint was trained against "
                f"{canonical_signature(recorded)!r}, this network featurises "
                f"{current!r}"
            )
        weights = state["weights"]
        by_name = {p.name: p for p in self.parameters()}
        missing = sorted(set(by_name) - set(weights))
        unexpected = sorted(set(weights) - set(by_name))
        if missing or unexpected:
            raise StateDictMismatchError(
                f"parameter names do not line up: missing {missing or 'none'}, "
                f"unexpected {unexpected or 'none'}"
            )
        for name, parameter in by_name.items():
            values = np.asarray(weights[name])
            if parameter.value.shape != values.shape:
                raise StateDictMismatchError(
                    f"shape mismatch for {name}: network expects "
                    f"{parameter.value.shape}, checkpoint holds {values.shape}"
                )
        for name, parameter in by_name.items():
            parameter.value = np.array(weights[name], dtype=np.float64, copy=True)
            parameter.grad = np.zeros_like(parameter.value)
        self.label_mean = float(state.get("label_mean", 0.0))
        self.label_std = float(state.get("label_std", 1.0))
        self.bump_version()

    @classmethod
    def from_state_dict(
        cls,
        state: dict,
        featurizer: "QueryPlanFeaturizer | SignatureFeaturizer | None" = None,
    ) -> "ValueNetwork":
        """Materialise a network purely from a :meth:`state_dict` payload.

        This is the stateless restore contract the scoring backends build on:
        when ``featurizer`` is omitted, a
        :class:`~repro.featurization.featurizer.SignatureFeaturizer` is
        derived from the checkpoint's own ``featurizer_signature``, so a
        scorer process can reconstruct the network from the checkpoint alone
        — no schema, estimator or live objects required.  Networks restored
        this way can :meth:`predict_examples` (featurisation happened in the
        submitting worker) but not :meth:`predict` raw plans.

        Raises:
            StateDictMismatchError: The payload is not a self-describing
                state dict, or (with ``featurizer`` given) does not match it.
        """
        if not isinstance(state, dict) or "weights" not in state:
            raise StateDictMismatchError(
                "not a value-network state dict (missing 'weights')"
            )
        if featurizer is None:
            signature = state.get("featurizer_signature")
            if signature is None:
                raise StateDictMismatchError(
                    "state dict carries no featurizer_signature; pass a "
                    "featurizer explicitly to restore it"
                )
            featurizer = SignatureFeaturizer(signature)
        network = cls(featurizer, _config_from_state(state))
        network.load_state_dict(state)
        return network

    @classmethod
    def predict_from_state(
        cls, state: dict, examples: list[FeaturizedExample]
    ) -> np.ndarray:
        """Predict raw-unit values for ``examples`` straight from a checkpoint.

        One-shot form of :meth:`from_state_dict` + :meth:`predict_examples`;
        long-lived scorers should cache the restored network per version
        instead of paying the restore on every batch.
        """
        return cls.from_state_dict(state).predict_examples(examples)

    def bump_version(self) -> None:
        """Mark the weights as changed.

        Cache layers key plan entries on :meth:`version_key`; call this after
        any in-place weight mutation (the trainer does so after every fit) so
        stale predictions are never served.
        """
        self.version += 1

    def version_key(self) -> tuple[int, int]:
        """Identity of this network's current weights, usable as a cache key."""
        return (self.uid, self.version)

    def clone(self) -> "ValueNetwork":
        """A deep copy with identical weights (used for V_sim -> V_real)."""
        copy = ValueNetwork(self.featurizer, self.config)
        copy.set_state(self.get_state())
        return copy

    # ------------------------------------------------------------------ #
    # Label transform
    # ------------------------------------------------------------------ #
    def fit_label_transform(self, labels: np.ndarray) -> None:
        """Fit the log1p + standardisation transform on raw labels."""
        transformed = np.log1p(np.maximum(np.asarray(labels, dtype=np.float64), 0.0))
        self.label_mean = float(transformed.mean())
        self.label_std = float(max(transformed.std(), 1e-6))

    def transform_labels(self, labels: np.ndarray) -> np.ndarray:
        """Raw labels -> network target space."""
        transformed = np.log1p(np.maximum(np.asarray(labels, dtype=np.float64), 0.0))
        return (transformed - self.label_mean) / self.label_std

    def inverse_transform(self, outputs: np.ndarray) -> np.ndarray:
        """Network outputs -> raw label units (latency seconds / cost)."""
        outputs = np.asarray(outputs, dtype=np.float64)
        return np.expm1(np.clip(outputs * self.label_std + self.label_mean, -30.0, 30.0))

    # ------------------------------------------------------------------ #
    # Forward / backward
    # ------------------------------------------------------------------ #
    def forward(
        self, queries: np.ndarray, tree_batch: TreeBatch, training: bool = False
    ) -> np.ndarray:
        """Forward pass returning normalised-space predictions ``(batch,)``."""
        query_hidden = self.query_act1.forward(
            self.query_fc1.forward(queries, training), training
        )
        query_embed = self.query_act2.forward(
            self.query_fc2.forward(query_hidden, training), training
        )

        valid = tree_batch.valid
        batch_size, slots, node_dim = tree_batch.features.shape
        node_inputs = np.zeros(
            (batch_size, slots, node_dim + query_embed.shape[1]), dtype=np.float64
        )
        node_inputs[:, :, :node_dim] = tree_batch.features
        node_inputs[:, :, node_dim:] = query_embed[:, None, :] * valid[..., None]
        current = TreeBatch(
            features=node_inputs, left=tree_batch.left, right=tree_batch.right, valid=valid
        )

        for layer, activation in zip(self.tree_layers, self.tree_activations):
            convolved = layer.forward(current, training)
            activated = activation.forward(convolved.features, training)
            current = convolved.with_features(activated * valid[..., None])

        pooled = self.pool.forward(current, training)
        head_hidden = self.head_act1.forward(self.head_fc1.forward(pooled, training), training)
        outputs = self.head_fc2.forward(head_hidden, training)[:, 0]

        self._cache = _ForwardCache(
            queries=queries, tree_batch=tree_batch, node_inputs=current, valid=valid
        )
        return outputs

    def backward(self, grad_outputs: np.ndarray) -> None:
        """Backward pass from d(loss)/d(outputs); accumulates parameter grads."""
        grad = self.head_fc2.backward(grad_outputs[:, None])
        grad = self.head_fc1.backward(self.head_act1.backward(grad))
        grad_nodes = self.pool.backward(grad)

        valid = self._cache.valid
        for layer, activation in zip(
            reversed(self.tree_layers), reversed(self.tree_activations)
        ):
            grad_nodes = grad_nodes * valid[..., None]
            grad_nodes = activation.backward(grad_nodes)
            grad_nodes = layer.backward(grad_nodes)

        node_dim = self.featurizer.plan_node_dimension
        grad_query_embed = (grad_nodes[:, :, node_dim:] * valid[..., None]).sum(axis=1)
        grad_query_hidden = self.query_fc2.backward(
            self.query_act2.backward(grad_query_embed)
        )
        self.query_fc1.backward(self.query_act1.backward(grad_query_hidden))

    # ------------------------------------------------------------------ #
    # Prediction API
    # ------------------------------------------------------------------ #
    def predict_examples(self, examples: list[FeaturizedExample]) -> np.ndarray:
        """Predict raw-unit values for featurised examples."""
        queries, tree_batch = self.featurizer.batch(examples)
        outputs = self.forward(queries, tree_batch, training=False)
        return self.inverse_transform(outputs)

    def predict(self, query: Query, plans: list[PlanNode]) -> np.ndarray:
        """Predict raw-unit values for several candidate plans of one query."""
        examples = [self.featurizer.featurize(query, plan) for plan in plans]
        return self.predict_examples(examples)

    def predict_one(self, query: Query, plan: PlanNode) -> float:
        """Predict the raw-unit value of a single (query, plan) pair."""
        return float(self.predict(query, [plan])[0])
