"""In-memory column-store storage layer.

Tables are dictionaries of numpy arrays.  Each table can build per-column hash
indexes (value -> row positions) which the execution engine's indexed
nested-loop join uses, mirroring the primary/foreign-key indexes the paper
creates for the Join Order Benchmark (§8.1, "Expert performance").
"""

from repro.storage.table import Table
from repro.storage.database import Database
from repro.storage.index import HashIndex
from repro.storage.statistics import ColumnStatistics, TableStatistics, collect_statistics

__all__ = [
    "Table",
    "Database",
    "HashIndex",
    "ColumnStatistics",
    "TableStatistics",
    "collect_statistics",
]
