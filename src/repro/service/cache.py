"""Cross-query plan cache for the planner service.

Unlike the execution-side :class:`~repro.execution.plan_cache.PlanCache`
(which memoises *latencies* of executed plans during training), this cache
memoises *planner results*: the full top-k output of a beam search, keyed by
the query's structural fingerprint and the version of the model that produced
it.  A repeated query under an unchanged model skips search entirely; any
weight update (which bumps :meth:`ValueNetwork.bump_version`) naturally
invalidates every entry produced by the previous weights.

Two implementations share the interface:

- :class:`ServicePlanCache` — the in-process thread-safe LRU every service
  owns;
- :class:`TieredPlanCache` — that same LRU as an L1, layered over a
  cross-process shared tier (an owner-process
  :class:`~repro.server.sharding.PlanCacheServer` reached through a
  :class:`~repro.server.sharding.SharedCacheClient`), so a plan computed by
  one sharded gateway worker is a hit on every other worker.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Hashable, Protocol

from repro.planning.envelope import PlanResult as PlannerResult

#: Cache key: (query structural fingerprint, planner/model version key, k).
CacheKey = tuple[Hashable, ...]


def encode_cache_key(key: CacheKey) -> bytes:
    """Deterministic byte form of a cache key for the shared tier.

    Keys are tuples of strings, ints and nested tuples (fingerprints,
    ``ValueNetwork.version_key()`` pairs, ``k``, canonicalised knobs), whose
    ``repr`` is stable across processes — and across pre-forked workers,
    which inherit the very same network objects, so even the process-local
    ``uid`` component agrees.
    """
    return repr(key).encode("utf-8")


def version_tag(version: Hashable) -> bytes:
    """Byte form of a cache key's version component, for tier invalidation."""
    return repr(version).encode("utf-8")


@dataclass
class CacheStats:
    """Counters describing cache effectiveness.

    Attributes:
        hits: Lookups answered from the cache.
        misses: Lookups that fell through to planning.
        inserts: Entries stored.
        evictions: Entries evicted by the LRU policy.
        size: Current number of live entries.
        capacity: Maximum number of entries.
    """

    hits: int = 0
    misses: int = 0
    inserts: int = 0
    evictions: int = 0
    size: int = 0
    capacity: int = 0

    @property
    def lookups(self) -> int:
        """Total lookups served."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered from the cache (0 when unused)."""
        lookups = self.lookups
        return self.hits / lookups if lookups else 0.0


class ServicePlanCache:
    """A thread-safe LRU cache of :class:`PlannerResult` objects.

    Args:
        capacity: Maximum number of entries; the least recently used entry is
            evicted when full.  Zero disables caching (every lookup misses).
    """

    def __init__(self, capacity: int = 4096):
        if capacity < 0:
            raise ValueError("capacity must be >= 0")
        self.capacity = capacity
        self._entries: OrderedDict[CacheKey, PlannerResult] = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._inserts = 0
        self._evictions = 0

    def lookup(self, key: CacheKey) -> PlannerResult | None:
        """Return the cached result for ``key``, refreshing its recency."""
        with self._lock:
            result = self._entries.get(key)
            if result is None:
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return result

    def store(self, key: CacheKey, result: PlannerResult) -> None:
        """Insert ``result`` under ``key``, evicting the LRU entry if full."""
        if self.capacity == 0:
            return
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = result
            self._inserts += 1
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self._evictions += 1

    def contains(self, key: CacheKey) -> bool:
        """Whether ``key`` is cached, without touching recency or counters."""
        with self._lock:
            return key in self._entries

    def invalidate_version(self, version: Hashable) -> int:
        """Drop every entry keyed to ``version`` (the key's second component).

        Version-keyed entries already roll over naturally on a hot swap (new
        requests look up the new version); explicit invalidation frees the
        memory a displaced model's plans would otherwise hold until LRU
        pressure evicts them.  Returns the number of entries dropped.
        """
        with self._lock:
            doomed = [
                key for key in self._entries if len(key) > 1 and key[1] == version
            ]
            for key in doomed:
                del self._entries[key]
            return len(doomed)

    def clear(self) -> None:
        """Drop all entries (statistics are preserved)."""
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> CacheStats:
        """A snapshot of the cache counters."""
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                inserts=self._inserts,
                evictions=self._evictions,
                size=len(self._entries),
                capacity=self.capacity,
            )


class SharedTierClient(Protocol):
    """What :class:`TieredPlanCache` needs from a shared-tier connection.

    The production implementation is
    :class:`~repro.server.sharding.SharedCacheClient` (a Unix-socket client
    of the owner-process cache server); every method degrades to a miss /
    no-op when the tier is unreachable, so the L1 keeps serving alone.
    """

    def get(self, key: bytes) -> bytes | None: ...

    def put(self, key: bytes, tag: bytes, value: bytes) -> bool: ...

    def exists(self, key: bytes) -> bool: ...

    def invalidate(self, tag: bytes) -> int: ...

    def clear(self) -> bool: ...

    def stats(self) -> dict: ...


class TieredPlanCache:
    """A local LRU (L1) layered over a cross-process shared tier (L2).

    Drop-in replacement for :class:`ServicePlanCache` inside a
    :class:`~repro.service.service.PlannerService`: lookups consult the local
    LRU first and fall through to the shared tier (promoting hits into L1);
    stores write through to both, serialising results with the JSON wire
    codecs (:mod:`repro.server.wire`), so a plan computed by one gateway
    worker process is a cache hit on every other worker sharing the tier.

    The shared tier is strictly best-effort: a connection failure, a decode
    failure or a crashed cache server degrades this cache to L1-only
    behaviour — foreground requests never fail because the tier did.

    Args:
        local: The in-process L1 (typically the service's existing cache).
        shared: The shared-tier client (see :class:`SharedTierClient`).
        min_shared_planning_seconds: Admission floor for the shared tier — a
            result whose ``planning_seconds`` is below it stays L1-only
            (skipped writes count in ``shared_stats``).  Cheap-to-replan
            results are not worth a wire round trip plus a tier slot; the
            :class:`~repro.server.sharding.PlanCacheServer` enforces the
            same policy server-side for clients that skip this check.
    """

    def __init__(
        self,
        local: ServicePlanCache,
        shared: SharedTierClient,
        *,
        min_shared_planning_seconds: float = 0.0,
    ):
        if min_shared_planning_seconds < 0:
            raise ValueError("min_shared_planning_seconds must be >= 0")
        self.local = local
        self.shared = shared
        self.min_shared_planning_seconds = min_shared_planning_seconds
        self._lock = threading.Lock()
        self._shared_hits = 0
        self._shared_misses = 0
        self._shared_stores = 0
        self._admission_skipped = 0
        self._encode_failures = 0
        self._decode_failures = 0

    @property
    def capacity(self) -> int:
        return self.local.capacity

    def lookup(self, key: CacheKey) -> PlannerResult | None:
        """L1 lookup, falling through to the shared tier on a miss."""
        result = self.local.lookup(key)
        if result is not None:
            return result
        payload = self.shared.get(encode_cache_key(key))
        if payload is None:
            with self._lock:
                self._shared_misses += 1
            return None
        from repro.server.wire import WireFormatError, plan_result_from_json_dict
        import json

        try:
            result = plan_result_from_json_dict(json.loads(payload.decode("utf-8")))
        except (WireFormatError, UnicodeDecodeError, ValueError):
            # A corrupt/foreign entry is a miss, never a failed request.
            with self._lock:
                self._decode_failures += 1
                self._shared_misses += 1
            return None
        with self._lock:
            self._shared_hits += 1
        self.local.store(key, result)
        return result

    def store(self, key: CacheKey, result: PlannerResult) -> None:
        """Write through: the local LRU always, the shared tier best-effort."""
        self.local.store(key, result)
        if (
            self.min_shared_planning_seconds > 0
            and result.planning_seconds < self.min_shared_planning_seconds
        ):
            with self._lock:
                self._admission_skipped += 1
            return
        import json

        from repro.server.wire import plan_result_to_json_dict

        try:
            payload = json.dumps(
                plan_result_to_json_dict(result), allow_nan=False
            ).encode("utf-8")
        except (TypeError, ValueError):
            # Results carrying non-JSON extras stay local-only.
            with self._lock:
                self._encode_failures += 1
            return
        if self.shared.put(encode_cache_key(key), version_tag(key[1]), payload):
            with self._lock:
                self._shared_stores += 1

    def contains(self, key: CacheKey) -> bool:
        """Whether either tier holds ``key`` (no recency/counter updates)."""
        return self.local.contains(key) or self.shared.exists(encode_cache_key(key))

    def invalidate_version(self, version: Hashable) -> int:
        """Drop ``version``'s entries from both tiers; returns the total."""
        dropped = self.local.invalidate_version(version)
        return dropped + self.shared.invalidate(version_tag(version))

    def clear(self) -> None:
        """Drop all entries in both tiers (statistics are preserved)."""
        self.local.clear()
        self.shared.clear()

    def __len__(self) -> int:
        return len(self.local)

    def stats(self) -> CacheStats:
        """L1 counters (the interface :class:`ServiceMetrics` reports)."""
        return self.local.stats()

    def shared_stats(self) -> dict:
        """Tier-side counters: this client's view plus transport health."""
        with self._lock:
            report = {
                "shared_hits": self._shared_hits,
                "shared_misses": self._shared_misses,
                "shared_stores": self._shared_stores,
                "admission_skipped": self._admission_skipped,
                "encode_failures": self._encode_failures,
                "decode_failures": self._decode_failures,
            }
        lookups = report["shared_hits"] + report["shared_misses"]
        report["shared_hit_rate"] = report["shared_hits"] / lookups if lookups else 0.0
        report["transport"] = self.shared.stats()
        return report
