"""Scoring-backend throughput: inproc vs threaded vs process at 1/2/4 workers.

Not a paper figure — this measures the scoring path behind beam search.  A
JOB-derived workload is planned cold (plan cache disabled, so every request
runs a full search) through ``PlannerService`` once per (backend, workers)
cell:

- ``inproc``      — forward passes on the planning threads, GIL-bound:
  adding workers adds almost no planning throughput;
- ``threaded``    — one scoring thread coalescing concurrent frontiers into
  larger forward passes (amortises numpy call overhead, still one core);
- ``process``     — ``workers`` scorer processes loading published model
  snapshots; the only configuration whose scoring parallelism scales with
  cores;
- ``process+shm`` — the same pool shipping payloads zero-copy through
  shared-memory rings (fixed size here: the matrix compares transports,
  not controllers).

Every cell asserts plan parity against the serial ``BeamSearchPlanner``
baseline, so the backends are compared on identical work.  The headline
ratio — process @ 4 workers over inproc @ 4 threads — lands in
``benchmark.extra_info['process_vs_inproc_4w']`` together with
``available_cpus``; the >= 2x acceptance bar is asserted only under
``REPRO_BENCH_STRICT=1`` (dedicated >= 4-CPU hardware) and is otherwise
recorded: on a single-core or noisy shared runner every backend time-slices
the same cores and the ratio is a property of the machine, not the code.

Two focused scenarios ride alongside the matrix:

- ``bench_scoring_shm_vs_queue`` — identical pools, one with the shm fast
  path and one on the pickle queue, submitting the same featurised
  workload closed-loop; the throughput ratio is the headline
  (``shm_vs_queue``, bar >= 1.3x on >= 4 CPUs);
- ``bench_scoring_autoscaler_step`` — a paced arrival stream that steps to
  10x its steady rate mid-run against an autoscaled ``process+shm`` pool;
  records p99 latency before/during/after the step and asserts zero failed
  requests (the p99 ratio bar needs dedicated cores, like the others).
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from benchmarks.conftest import run_once
from repro.evaluation.reporting import format_table
from repro.model.value_network import ValueNetwork, ValueNetworkConfig
from repro.scoring import AutoscalerConfig, ProcessPoolBackend, ScoringBackendError
from repro.search.beam import BeamSearchPlanner
from repro.service.service import PlannerService
from repro.workloads.benchmark import make_job_benchmark

#: CI smoke mode (REPRO_BENCH_QUICK=1) shrinks the workload.
QUICK = os.environ.get("REPRO_BENCH_QUICK", "") == "1"
STRICT = os.environ.get("REPRO_BENCH_STRICT", "") == "1"

BACKENDS = ("inproc", "threaded", "process", "process+shm")
WORKER_COUNTS = (1, 2, 4)
MIN_PROCESS_SPEEDUP = 2.0
MIN_SHM_SPEEDUP = 1.3
MAX_STEP_P99_RATIO = 2.0


def _available_cpus() -> int:
    if hasattr(os, "sched_getaffinity"):
        return len(os.sched_getaffinity(0))
    return os.cpu_count() or 0


def _make_planner() -> BeamSearchPlanner:
    # Quick mode shrinks the search; the full config keeps frontiers wide so
    # per-submit scoring work dwarfs per-submit overhead (IPC for the
    # process backend, queue hops for the threaded one).
    if QUICK:
        return BeamSearchPlanner(beam_size=5, top_k=3, enumerate_scan_operators=False)
    return BeamSearchPlanner(beam_size=10, top_k=5, enumerate_scan_operators=True)


def _make_network(bundle) -> ValueNetwork:
    config = (
        ValueNetworkConfig(
            query_hidden=64, query_embedding=32, tree_channels=(64, 64, 32),
            head_hidden=32, seed=0,
        )
        if QUICK
        else ValueNetworkConfig(
            query_hidden=128, query_embedding=64, tree_channels=(128, 128, 64),
            head_hidden=64, seed=0,
        )
    )
    return ValueNetwork(bundle.featurizer, config)


def _measure_cell(bundle, queries, network, backend_name: str, workers: int) -> dict:
    """Plan the workload cold through one (backend, workers) configuration."""
    backend = backend_name
    if backend_name in ("process", "process+shm"):
        # Build the pool up front and wait out the spawn/import cost, so the
        # timed window measures scoring throughput, not interpreter startup.
        # The shm cell keeps the pool fixed-size: the matrix compares
        # transports, not the autoscaler.
        backend = ProcessPoolBackend(
            bundle.featurizer, num_workers=workers,
            use_shm=backend_name == "process+shm",
        )
        backend.wait_ready(timeout=120.0)
    with PlannerService(
        network,
        planner=_make_planner(),
        max_workers=workers,
        cache_capacity=0,  # cold: every request runs a full search
        scoring_backend=backend,
    ) as service:
        started = time.perf_counter()
        responses = service.plan_many(queries)
        elapsed = time.perf_counter() - started
        scoring = service.metrics().scoring
    assert all(response.plans for response in responses)
    return {
        "backend": backend_name,
        "workers": workers,
        "seconds": elapsed,
        "qps": len(queries) / elapsed if elapsed > 0 else 0.0,
        "mean_batch": scoring.mean_batch_examples,
        "responses": responses,
    }


def _run_backend_matrix() -> dict:
    num_queries = 6 if QUICK else 12
    bundle = make_job_benchmark(
        fact_rows=300,
        num_queries=num_queries,
        num_templates=min(4, num_queries),
        test_size=2,
        seed=0,
        size_range=(3, 5) if QUICK else (5, 7),
    )
    queries = bundle.all_queries()
    network = _make_network(bundle)
    planner = _make_planner()

    # Serial baseline: also warms the shared featurizer cache so every cell
    # measures search + scoring, not first-touch featurisation.
    serial_started = time.perf_counter()
    serial = [planner.search(query, network) for query in queries]
    serial_seconds = time.perf_counter() - serial_started

    cells = []
    for backend_name in BACKENDS:
        for workers in WORKER_COUNTS:
            cell = _measure_cell(bundle, queries, network, backend_name, workers)
            # Identical work across backends: same best plan per query.
            for direct, response in zip(serial, cell.pop("responses")):
                assert response.best_plan.fingerprint() == (
                    direct.best_plan.fingerprint()
                ), (backend_name, workers, response.query.name)
            cells.append(cell)
    return {
        "queries": len(queries),
        "serial_seconds": serial_seconds,
        "serial_qps": len(queries) / serial_seconds if serial_seconds > 0 else 0.0,
        "cells": cells,
    }


def bench_scoring_backends(benchmark):
    outcome = run_once(benchmark, _run_backend_matrix)
    cells = outcome["cells"]
    by_key = {(cell["backend"], cell["workers"]): cell for cell in cells}
    print()
    print(
        format_table(
            ["backend", "workers", "seconds", "q/s", "mean batch"],
            [
                [
                    cell["backend"],
                    cell["workers"],
                    f"{cell['seconds']:.3f}",
                    f"{cell['qps']:.2f}",
                    f"{cell['mean_batch']:.1f}",
                ]
                for cell in cells
            ],
            title=(
                f"Scoring backends, cold cache ({outcome['queries']} JOB queries; "
                f"serial baseline {outcome['serial_qps']:.2f} q/s)"
            ),
        )
    )

    available_cpus = len(os.sched_getaffinity(0)) if hasattr(os, "sched_getaffinity") else os.cpu_count()
    for cell in cells:
        key = f"{cell['backend']}_{cell['workers']}w"
        benchmark.extra_info[f"{key}_qps"] = round(cell["qps"], 3)
        benchmark.extra_info[f"{key}_seconds"] = round(cell["seconds"], 4)
    benchmark.extra_info["serial_qps"] = round(outcome["serial_qps"], 3)
    benchmark.extra_info["available_cpus"] = int(available_cpus or 0)

    process_4w = by_key[("process", 4)]["qps"]
    inproc_4w = by_key[("inproc", 4)]["qps"]
    ratio = process_4w / inproc_4w if inproc_4w > 0 else float("inf")
    benchmark.extra_info["process_vs_inproc_4w"] = round(ratio, 3)
    # The acceptance bar needs dedicated cores to show itself: on fewer than
    # 4 CPUs (or a noisy shared runner) the scorer processes time-slice with
    # the planners instead of running beside them, and the quick smoke
    # workload is too light for scoring to dominate.  The ratio is therefore
    # always recorded in the JSON artifact but only enforced on hardware that
    # opts in with REPRO_BENCH_STRICT=1.
    enforced = STRICT
    print(
        f"process@4w vs inproc@4w: {ratio:.2f}x "
        f"(available_cpus={available_cpus}, bar={MIN_PROCESS_SPEEDUP}x "
        f"{'enforced' if enforced else 'recorded only'})"
    )
    if enforced:
        assert ratio >= MIN_PROCESS_SPEEDUP, (
            f"process backend at 4 workers delivered only {ratio:.2f}x over "
            f"in-process scoring at 4 threads (bar: {MIN_PROCESS_SPEEDUP}x)"
        )


# ---------------------------------------------------------------------- #
# shm transport vs the pickle queue, same pool otherwise
# ---------------------------------------------------------------------- #
def _make_scoring_workload(num_queries: int):
    """(query, plans) pairs plus the reference predictions for parity."""
    bundle = make_job_benchmark(
        fact_rows=300,
        num_queries=max(4, num_queries),
        num_templates=4,
        test_size=2,
        seed=0,
        size_range=(3, 5) if QUICK else (5, 7),
    )
    network = _make_network(bundle)
    planner = _make_planner()
    workload = []
    for query in bundle.all_queries()[:num_queries]:
        result = planner.search(query, network)
        workload.append((query, result.plans, network.predict(query, result.plans)))
    return bundle, network, workload


def _run_shm_vs_queue() -> dict:
    num_queries = 4 if QUICK else 8
    rounds = 3 if QUICK else 8
    bundle, network, workload = _make_scoring_workload(num_queries)
    cells = {}
    for label, use_shm in (("queue", False), ("shm", True)):
        backend = ProcessPoolBackend(
            bundle.featurizer, num_workers=2, use_shm=use_shm,
            submit_timeout_seconds=120.0,
        )
        try:
            backend.wait_ready(timeout=120.0)
            # Warm pass: publishes the snapshot, restores it in the scorers,
            # fills the featurizer cache — and asserts parity, so the two
            # transports are compared on verified-identical work.
            for query, plans, expected in workload:
                np.testing.assert_allclose(
                    backend.submit(query, plans, version=network),
                    expected, rtol=1e-9, atol=1e-12,
                )
            started = time.perf_counter()
            submits = 0
            for _ in range(rounds):
                for query, plans, _ in workload:
                    backend.submit(query, plans, version=network)
                    submits += 1
            elapsed = time.perf_counter() - started
            stats = backend.stats()
            cells[label] = {
                "seconds": elapsed,
                "submits_per_second": submits / elapsed if elapsed > 0 else 0.0,
                "shm_batches": stats.shm_batches,
                "shm_fallbacks": stats.shm_fallbacks,
            }
        finally:
            backend.close()
    # The timed window must have run entirely on the fast path.
    assert cells["shm"]["shm_batches"] > 0
    assert cells["shm"]["shm_fallbacks"] == 0
    assert cells["queue"]["shm_batches"] == 0
    return {"cells": cells, "submits": num_queries * rounds}


def bench_scoring_shm_vs_queue(benchmark):
    outcome = run_once(benchmark, _run_shm_vs_queue)
    cells = outcome["cells"]
    queue_sps = cells["queue"]["submits_per_second"]
    shm_sps = cells["shm"]["submits_per_second"]
    ratio = shm_sps / queue_sps if queue_sps > 0 else float("inf")
    available_cpus = _available_cpus()

    benchmark.extra_info["queue_submits_per_second"] = round(queue_sps, 3)
    benchmark.extra_info["shm_submits_per_second"] = round(shm_sps, 3)
    benchmark.extra_info["shm_vs_queue"] = round(ratio, 3)
    benchmark.extra_info["available_cpus"] = available_cpus

    enforced = STRICT and available_cpus >= 4
    print(
        f"\nshm vs queue transport: {shm_sps:.2f} vs {queue_sps:.2f} submits/s "
        f"-> {ratio:.2f}x (available_cpus={available_cpus}, "
        f"bar={MIN_SHM_SPEEDUP}x {'enforced' if enforced else 'recorded only'})"
    )
    if enforced:
        assert ratio >= MIN_SHM_SPEEDUP, (
            f"shm transport delivered only {ratio:.2f}x over the pickle "
            f"queue (bar: {MIN_SHM_SPEEDUP}x)"
        )


# ---------------------------------------------------------------------- #
# Autoscaler step response: a 10x arrival-rate step mid-run
# ---------------------------------------------------------------------- #
def _paced_phase(backend, network, workload, rate_hz: float, count: int) -> dict:
    """Submit ``count`` paced requests open-loop; gather latencies/failures."""
    latencies = []
    failures = 0

    def one(index: int):
        query, plans, _ = workload[index % len(workload)]
        started = time.perf_counter()
        backend.submit(query, plans, version=network)
        return time.perf_counter() - started

    interval = 1.0 / rate_hz
    with ThreadPoolExecutor(max_workers=8) as pool:
        futures = []
        next_at = time.perf_counter()
        for index in range(count):
            delay = next_at - time.perf_counter()
            if delay > 0:
                time.sleep(delay)
            futures.append(pool.submit(one, index))
            next_at += interval
        for future in futures:
            try:
                latencies.append(future.result())
            except ScoringBackendError:
                failures += 1
    return {
        "p99_seconds": float(np.percentile(latencies, 99)) if latencies else 0.0,
        "mean_seconds": float(np.mean(latencies)) if latencies else 0.0,
        "failures": failures,
        "count": count,
    }


def _run_autoscaler_step() -> dict:
    bundle, network, workload = _make_scoring_workload(4 if QUICK else 6)
    backend = ProcessPoolBackend(
        bundle.featurizer, num_workers=1, submit_timeout_seconds=120.0,
        use_shm=True, adaptive_batching=True,
        autoscaler=AutoscalerConfig(
            min_workers=1, max_workers=4, interval_seconds=0.02,
            up_hold_samples=2, down_hold_samples=50, cooldown_seconds=0.1,
        ),
    )
    try:
        backend.wait_ready(timeout=120.0)
        # Warm + calibrate: the steady rate is half of one worker's serial
        # capacity, so the 10x step genuinely overdrives the pool.
        warm_started = time.perf_counter()
        for query, plans, expected in workload:
            np.testing.assert_allclose(
                backend.submit(query, plans, version=network),
                expected, rtol=1e-9, atol=1e-12,
            )
        mean_latency = (time.perf_counter() - warm_started) / len(workload)
        steady_hz = 0.5 / max(mean_latency, 1e-4)

        counts = (12, 40, 12) if QUICK else (25, 80, 25)
        before = _paced_phase(backend, network, workload, steady_hz, counts[0])
        during = _paced_phase(backend, network, workload, steady_hz * 10, counts[1])
        after = _paced_phase(backend, network, workload, steady_hz, counts[2])
        stats = backend.stats()
    finally:
        backend.close()
    return {
        "steady_hz": steady_hz,
        "before": before,
        "during": during,
        "after": after,
        "scale_ups": stats.scale_ups,
        "scale_downs": stats.scale_downs,
        "workers_current": stats.workers_current,
    }


def bench_scoring_autoscaler_step(benchmark):
    outcome = run_once(benchmark, _run_autoscaler_step)
    before, during, after = (
        outcome["before"], outcome["during"], outcome["after"],
    )
    failed = before["failures"] + during["failures"] + after["failures"]
    steady_p99 = max(before["p99_seconds"], 1e-6)
    ratio = during["p99_seconds"] / steady_p99
    available_cpus = _available_cpus()

    print()
    print(
        format_table(
            ["phase", "rate (req/s)", "requests", "p99 (ms)", "mean (ms)"],
            [
                [
                    name,
                    f"{rate:.1f}",
                    phase["count"],
                    f"{phase['p99_seconds'] * 1e3:.1f}",
                    f"{phase['mean_seconds'] * 1e3:.1f}",
                ]
                for name, rate, phase in [
                    ("before", outcome["steady_hz"], before),
                    ("during (10x)", outcome["steady_hz"] * 10, during),
                    ("after", outcome["steady_hz"], after),
                ]
            ],
            title=(
                f"Autoscaler step response (scale_ups={outcome['scale_ups']}, "
                f"scale_downs={outcome['scale_downs']})"
            ),
        )
    )

    benchmark.extra_info["autoscaler_step_p99_before_ms"] = round(
        before["p99_seconds"] * 1e3, 2
    )
    benchmark.extra_info["autoscaler_step_p99_during_ms"] = round(
        during["p99_seconds"] * 1e3, 2
    )
    benchmark.extra_info["autoscaler_step_p99_after_ms"] = round(
        after["p99_seconds"] * 1e3, 2
    )
    benchmark.extra_info["autoscaler_step_p99_ratio"] = round(ratio, 3)
    benchmark.extra_info["autoscaler_failed_requests"] = failed
    benchmark.extra_info["autoscaler_scale_ups"] = outcome["scale_ups"]
    benchmark.extra_info["available_cpus"] = available_cpus

    # Zero failed requests is the hard bar on every machine: the step may
    # queue, but it must never drop or time out a request.
    assert failed == 0, f"{failed} requests failed during the rate step"

    enforced = STRICT and available_cpus >= 4
    print(
        f"p99 during 10x step: {ratio:.2f}x steady "
        f"(available_cpus={available_cpus}, bar={MAX_STEP_P99_RATIO}x "
        f"{'enforced' if enforced else 'recorded only'})"
    )
    if enforced:
        assert ratio <= MAX_STEP_P99_RATIO, (
            f"p99 during the 10x step was {ratio:.2f}x steady-state "
            f"(bar: {MAX_STEP_P99_RATIO}x)"
        )
