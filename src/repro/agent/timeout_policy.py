"""Safe execution via timeouts (paper §4.3).

Iteration 0 (right after simulation learning) runs every plan to completion;
let ``T`` be the maximum per-query runtime observed.  Every later iteration
applies a timeout of ``S x T`` to all agent-produced plans, where ``S`` is a
slack factor (Balsa uses 2).  Whenever an iteration finishes with a smaller
maximum per-query runtime ``T' < T``, the budget tightens to ``S x T'`` — a
self-generated curriculum.  Timed-out plans receive a large constant label
(4096 s) instead of their unknown true latency.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class TimeoutPolicy:
    """Tracks and tightens the per-iteration execution timeout.

    Attributes:
        slack: Slack factor ``S``.
        timeout_label: Label assigned to timed-out executions.
        enabled: Disable to reproduce the "no timeout" ablation (§8.3.2).
    """

    slack: float = 2.0
    timeout_label: float = 4096.0
    enabled: bool = True
    _max_runtime: float | None = None

    @property
    def max_runtime(self) -> float | None:
        """The best (smallest) maximum per-query runtime observed so far."""
        return self._max_runtime

    def current_timeout(self) -> float | None:
        """Timeout to apply to this iteration's executions (None = unlimited)."""
        if not self.enabled or self._max_runtime is None:
            return None
        return self.slack * self._max_runtime

    def observe_iteration(self, max_per_query_runtime: float) -> None:
        """Record an iteration's maximum per-query runtime, tightening if smaller."""
        if max_per_query_runtime <= 0:
            return
        if self._max_runtime is None or max_per_query_runtime < self._max_runtime:
            self._max_runtime = max_per_query_runtime

    def label_for(self, latency: float, timed_out: bool) -> float:
        """Training label for an execution (§4.3: big constant if timed out)."""
        return self.timeout_label if timed_out else latency
