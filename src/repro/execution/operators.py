"""Physical operator implementations.

Each operator both *computes its true output* (an
:class:`~repro.execution.result.IntermediateResult`) and *accounts its work*
under the :class:`~repro.execution.latency.LatencyModel` constants.  The output
of a join does not depend on the physical operator (hash, merge, nested loop
all produce the same rows); the work does, which is what differentiates good
and bad physical plans.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.execution.latency import LatencyModel
from repro.execution.result import (
    IntermediateResult,
    estimate_match_count,
    join_results,
)
from repro.plans.nodes import JoinNode, JoinOperator, ScanNode, ScanOperator
from repro.sql.expr import conjunction_mask
from repro.sql.query import Query
from repro.storage.database import Database


class IntermediateExplosionError(RuntimeError):
    """Raised when a join's true output exceeds the materialisation guard.

    Plans that hit this guard are the simulated equivalent of the paper's
    "disastrous plans": the engine reports them as exceeding any reasonable
    work budget instead of materialising hundreds of millions of tuples.
    """

    def __init__(self, estimated_rows: int, limit: int):
        super().__init__(
            f"join output of ~{estimated_rows} rows exceeds the materialisation "
            f"limit of {limit}"
        )
        self.estimated_rows = estimated_rows
        self.limit = limit


@dataclass
class OperatorOutput:
    """Result of executing one operator.

    Attributes:
        result: True output rows.
        work: Work units consumed by this operator alone.
    """

    result: IntermediateResult
    work: float


def _log2(n: int) -> float:
    return math.log2(max(2, n))


def execute_scan(
    database: Database,
    query: Query,
    node: ScanNode,
    model: LatencyModel,
) -> OperatorOutput:
    """Execute a scan leaf: apply the query's filters for the alias.

    A sequential scan touches every stored tuple.  An index scan is only
    cheaper when an equality filter exists on an indexed column; otherwise it
    degrades to a (slightly more expensive) full scan, as in a real engine
    where a full index scan has worse locality than a heap scan.
    """
    table = database.table(node.table)
    filters = query.filters_for(node.alias)
    num_rows = table.num_rows
    work = model.startup_cost

    if node.operator is ScanOperator.INDEX_SCAN:
        eq_filter = next(
            (
                f
                for f in filters
                if f.op.value == "=" and table.has_index(f.column)
            ),
            None,
        )
        if eq_filter is not None:
            matched = table.index(eq_filter.column).lookup(eq_filter.value)
            work += model.index_probe_cost * _log2(num_rows) + len(matched)
            remaining = [f for f in filters if f is not eq_filter]
            if remaining and len(matched):
                mask = conjunction_mask(
                    remaining,
                    {f.column: table.column(f.column)[matched] for f in remaining},
                    len(matched),
                )
                selected = matched[mask]
                work += len(matched) * model.cpu_tuple_cost
            else:
                selected = matched
        else:
            # No usable index: pay a locality penalty over a plain scan.
            mask = conjunction_mask(
                filters, {f.column: table.column(f.column) for f in filters}, num_rows
            )
            selected = np.flatnonzero(mask)
            work += num_rows * model.seq_scan_cost * 1.5
    else:
        mask = conjunction_mask(
            filters, {f.column: table.column(f.column) for f in filters}, num_rows
        )
        selected = np.flatnonzero(mask)
        work += num_rows * model.seq_scan_cost

    work += len(selected) * model.cpu_tuple_cost
    return OperatorOutput(
        result=IntermediateResult({node.alias: selected.astype(np.int64)}),
        work=work,
    )


def _indexed_nested_loop_applicable(
    database: Database, query: Query, node: JoinNode
) -> tuple[str, str] | None:
    """Whether the join can run as an indexed nested loop.

    Requires the right (inner) side to be a single base-table scan and at
    least one join predicate whose inner column carries an index.  Returns the
    ``(inner_alias, inner_column)`` pair used for index probes, or ``None``.
    """
    if not isinstance(node.right, ScanNode):
        return None
    inner_alias = node.right.alias
    table = database.table(node.right.table)
    predicates = query.joins_between(node.left.leaf_aliases, node.right.leaf_aliases)
    for predicate in predicates:
        if inner_alias in predicate.aliases():
            column = predicate.column_for(inner_alias)
            if table.has_index(column):
                return inner_alias, column
    return None


def execute_join(
    database: Database,
    query: Query,
    node: JoinNode,
    left: IntermediateResult,
    right: IntermediateResult,
    model: LatencyModel,
    max_intermediate_rows: int,
) -> OperatorOutput:
    """Execute a join of two already-computed inputs.

    Args:
        database: Database providing column values.
        query: The query (source of join predicates).
        node: The join node (provides the physical operator).
        left: Executed left input.
        right: Executed right input.
        model: Latency model constants.
        max_intermediate_rows: Materialisation guard.

    Returns:
        The join's :class:`OperatorOutput`.

    Raises:
        IntermediateExplosionError: If the true output would exceed the guard.
        ValueError: If no join predicate connects the two sides (cross product).
    """
    predicates = list(
        query.joins_between(left.aliases, right.aliases)
    )
    if not predicates:
        raise ValueError(
            f"cross product between {sorted(left.aliases)} and {sorted(right.aliases)}"
        )
    alias_to_table = dict(query.alias_to_table)

    # Guard against astronomically large true outputs before materialising.
    first = predicates[0]
    left_alias = first.left_alias if first.left_alias in left.aliases else first.right_alias
    right_alias = first.left_alias if first.left_alias in right.aliases else first.right_alias
    left_keys = left.column_values(
        database, alias_to_table, left_alias, first.column_for(left_alias)
    )
    right_keys = right.column_values(
        database, alias_to_table, right_alias, first.column_for(right_alias)
    )
    estimated = estimate_match_count(left_keys, right_keys)
    if estimated > max_intermediate_rows:
        raise IntermediateExplosionError(estimated, max_intermediate_rows)

    output = join_results(database, alias_to_table, left, right, predicates)
    out_rows = output.num_rows
    left_rows, right_rows = left.num_rows, right.num_rows
    work = model.startup_cost

    operator = node.operator
    if operator is JoinOperator.HASH_JOIN:
        build_work = left_rows * model.hash_build_cost
        probe_work = right_rows * model.hash_probe_cost
        if left_rows > model.memory_limit_tuples:
            build_work *= model.spill_factor
            probe_work *= model.spill_factor
        work += build_work + probe_work
    elif operator is JoinOperator.MERGE_JOIN:
        work += model.sort_cost * (
            left_rows * _log2(left_rows) + right_rows * _log2(right_rows)
        )
        work += (left_rows + right_rows) * model.cpu_tuple_cost
    elif operator is JoinOperator.NESTED_LOOP:
        indexed = _indexed_nested_loop_applicable(database, query, node)
        if indexed is not None:
            inner_alias, inner_column = indexed
            inner_table = database.table(query.alias_to_table[inner_alias])
            probe_cost = model.index_probe_cost * _log2(inner_table.num_rows)
            # Index probes hit the unfiltered inner table; residual inner
            # filters are applied to the fetched rows.
            total_matches = estimate_match_count(
                left_keys, inner_table.column(inner_column)
            )
            work += left_rows * probe_cost
            work += total_matches * model.cpu_tuple_cost
        else:
            work += left_rows * right_rows * model.nested_loop_cost
    else:  # pragma: no cover - exhaustive enum
        raise ValueError(f"unknown join operator {operator}")

    work += out_rows * model.cpu_tuple_cost
    return OperatorOutput(result=output, work=work)
