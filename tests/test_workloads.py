"""Tests for workload generation, splits and benchmark assembly."""

import pytest

from repro.workloads.benchmark import make_job_benchmark, make_tpch_benchmark
from repro.workloads.job import JOB_ALIASES, make_ext_job_queries, make_job_queries
from repro.workloads.splits import random_split, slow_split, slowest_templates, template_split
from repro.workloads.tpch import make_tpch_queries


class TestJobGeneration:
    def test_query_count_and_names_unique(self):
        queries, template_of = make_job_queries(num_queries=40, num_templates=10, seed=0)
        assert len(queries) == 40
        assert len({q.name for q in queries}) == 40
        assert set(template_of) == {q.name for q in queries}

    def test_queries_are_connected_and_within_size_range(self):
        queries, _ = make_job_queries(num_queries=30, num_templates=10, seed=1, size_range=(3, 8))
        for query in queries:
            assert query.is_connected()
            assert 3 <= query.num_tables <= 8
            assert query.num_joins >= query.num_tables - 1

    def test_queries_reference_known_tables(self):
        queries, _ = make_job_queries(num_queries=20, num_templates=5, seed=2)
        for query in queries:
            for table_ref in query.tables:
                assert table_ref.alias in JOB_ALIASES
                assert JOB_ALIASES[table_ref.alias] == table_ref.table

    def test_variants_share_join_graph_but_differ_in_filters(self):
        queries, template_of = make_job_queries(num_queries=30, num_templates=10, seed=3)
        by_template: dict[int, list] = {}
        for query in queries:
            by_template.setdefault(template_of[query.name], []).append(query)
        multi = next(group for group in by_template.values() if len(group) >= 2)
        assert set(multi[0].aliases) == set(multi[1].aliases)

    def test_deterministic_per_seed(self):
        a, _ = make_job_queries(num_queries=10, num_templates=5, seed=9)
        b, _ = make_job_queries(num_queries=10, num_templates=5, seed=9)
        assert [q.name for q in a] == [q.name for q in b]
        assert [len(q.filters) for q in a] == [len(q.filters) for q in b]

    def test_filters_within_count_bounds(self):
        queries, _ = make_job_queries(
            num_queries=20, num_templates=5, seed=4, filters_per_query=(2, 4)
        )
        for query in queries:
            assert len(query.filters) <= 4

    def test_ext_job_differs_from_job(self):
        job_queries, _ = make_job_queries(num_queries=20, num_templates=5, seed=0)
        ext = make_ext_job_queries(num_queries=10, seed=99)
        assert len(ext) == 10
        assert all(q.name.startswith("ext") for q in ext)
        assert all(q.is_connected() for q in ext)
        job_names = {q.name for q in job_queries}
        assert not job_names & {q.name for q in ext}


class TestTpchGeneration:
    def test_template_partition(self):
        train, test = make_tpch_queries(queries_per_template=4, seed=0)
        assert len(train) == 7 * 4
        assert len(test) == 4
        assert all(q.name.startswith("tpch10") for q in test)

    def test_queries_connected(self):
        train, test = make_tpch_queries(queries_per_template=2, seed=1)
        for query in train + test:
            assert query.is_connected()

    def test_join_counts_small(self):
        train, _ = make_tpch_queries(queries_per_template=1, seed=0)
        assert max(q.num_tables for q in train) <= 8


class TestSplits:
    @pytest.fixture(scope="class")
    def queries(self):
        queries, template_of = make_job_queries(num_queries=20, num_templates=5, seed=0)
        return queries, template_of

    def test_random_split_partition(self, queries):
        qs, _ = queries
        train, test = random_split(qs, test_size=5, seed=0)
        assert len(train) == 15 and len(test) == 5
        assert not set(train.names()) & set(test.names())

    def test_random_split_too_large_test(self, queries):
        qs, _ = queries
        with pytest.raises(ValueError):
            random_split(qs, test_size=len(qs))

    def test_slow_split_selects_slowest(self, queries):
        qs, _ = queries
        runtimes = {q.name: float(i) for i, q in enumerate(qs)}
        train, test = slow_split(qs, runtimes, test_size=3)
        assert set(test.names()) == {qs[-1].name, qs[-2].name, qs[-3].name}

    def test_slow_split_missing_runtime(self, queries):
        qs, _ = queries
        with pytest.raises(KeyError):
            slow_split(qs, {}, test_size=3)

    def test_template_split_holds_out_whole_templates(self, queries):
        qs, template_of = queries
        held_out = [0, 1]
        train, test = template_split(qs, template_of, held_out)
        assert all(template_of[name] in held_out for name in test.names())
        assert all(template_of[name] not in held_out for name in train.names())

    def test_slowest_templates(self, queries):
        qs, template_of = queries
        runtimes = {q.name: (10.0 if template_of[q.name] == 2 else 1.0) for q in qs}
        worst = slowest_templates(qs, template_of, runtimes, num_templates=1)
        assert worst == [2]


class TestBenchmarks:
    @pytest.fixture(scope="class")
    def job_benchmark(self):
        return make_job_benchmark(
            fact_rows=300, num_queries=10, num_templates=4, test_size=3,
            seed=0, size_range=(3, 5),
        )

    def test_job_benchmark_structure(self, job_benchmark):
        assert len(job_benchmark.train_queries) == 7
        assert len(job_benchmark.test_queries) == 3
        assert {"postgres", "commdb"} <= set(job_benchmark.experts)
        assert job_benchmark.database.table("movie_companies").has_index("movie_id")

    def test_environment_shares_substrate(self, job_benchmark):
        environment = job_benchmark.environment()
        assert environment.database is job_benchmark.database
        assert environment.query_by_name(job_benchmark.train_queries[0].name)

    def test_expert_runtimes_cached(self, job_benchmark):
        first = job_benchmark.expert_runtimes()
        executions_after_first = job_benchmark.engine.num_executions
        second = job_benchmark.expert_runtimes()
        assert first == second
        assert job_benchmark.engine.num_executions == executions_after_first

    def test_expert_workload_runtime_positive(self, job_benchmark):
        assert job_benchmark.expert_workload_runtime(job_benchmark.train_queries) > 0

    def test_unknown_expert_raises(self, job_benchmark):
        with pytest.raises(KeyError):
            job_benchmark.expert("oracle")

    def test_slow_split_benchmark(self):
        benchmark = make_job_benchmark(
            split="slow", fact_rows=300, num_queries=8, num_templates=4,
            test_size=2, seed=0, size_range=(3, 5),
        )
        runtimes = benchmark.expert_runtimes()
        test_runtimes = [runtimes[n] for n in benchmark.test_queries.names()]
        train_runtimes = [runtimes[n] for n in benchmark.train_queries.names()]
        assert min(test_runtimes) >= max(train_runtimes) - 1e-9

    def test_ext_job_included_when_requested(self):
        benchmark = make_job_benchmark(
            fact_rows=300, num_queries=8, num_templates=4, test_size=2,
            seed=0, size_range=(3, 5), include_ext_job=True,
        )
        assert "ext_job" in benchmark.extra_queries
        assert len(benchmark.extra_queries["ext_job"]) == 24

    def test_invalid_split_rejected(self):
        with pytest.raises(ValueError):
            make_job_benchmark(split="bogus", fact_rows=300, num_queries=8,
                               num_templates=4, test_size=2)

    def test_tpch_benchmark_structure(self):
        benchmark = make_tpch_benchmark(base_rows=200, queries_per_template=2, seed=0)
        assert len(benchmark.train_queries) == 14
        assert len(benchmark.test_queries) == 2
        assert benchmark.database.num_rows("lineitem") > 0
