"""Query plan trees (logical and physical).

A plan is an immutable binary tree of :class:`~repro.plans.nodes.PlanNode`
objects: :class:`~repro.plans.nodes.ScanNode` leaves over base-table aliases
and :class:`~repro.plans.nodes.JoinNode` internal nodes.  Plans carry their
physical operators (scan and join types); cost models that are "logical only"
(such as :math:`C_{out}`) simply ignore them, exactly as footnote 4 of the
paper describes.
"""

from repro.plans.nodes import (
    JoinNode,
    JoinOperator,
    PlanNode,
    ScanNode,
    ScanOperator,
)
from repro.plans.builders import (
    all_join_operators,
    all_scan_operators,
    join,
    left_deep_plan,
    scan,
)
from repro.plans.analysis import (
    OperatorComposition,
    PlanShape,
    operator_composition,
    operator_counts,
    plan_shape,
)
from repro.plans.validation import InvalidPlanError, is_valid_plan, validate_plan

__all__ = [
    "JoinNode",
    "JoinOperator",
    "PlanNode",
    "ScanNode",
    "ScanOperator",
    "all_join_operators",
    "all_scan_operators",
    "join",
    "left_deep_plan",
    "scan",
    "OperatorComposition",
    "PlanShape",
    "plan_shape",
    "operator_composition",
    "operator_counts",
    "InvalidPlanError",
    "is_valid_plan",
    "validate_plan",
]
