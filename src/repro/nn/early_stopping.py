"""Early stopping on a validation metric (paper §7)."""

from __future__ import annotations


class EarlyStopping:
    """Stop training when the validation loss stops improving.

    Args:
        patience: Number of epochs without improvement tolerated before
            stopping.
        min_delta: Minimum decrease in loss considered an improvement.
    """

    def __init__(self, patience: int = 5, min_delta: float = 1e-4):
        self.patience = patience
        self.min_delta = min_delta
        self.best_loss = float("inf")
        self.best_epoch = -1
        self.epochs_without_improvement = 0

    def update(self, loss: float, epoch: int) -> bool:
        """Record a validation loss; return ``True`` when training should stop."""
        if loss < self.best_loss - self.min_delta:
            self.best_loss = loss
            self.best_epoch = epoch
            self.epochs_without_improvement = 0
            return False
        self.epochs_without_improvement += 1
        return self.epochs_without_improvement >= self.patience

    @property
    def should_stop(self) -> bool:
        """Whether the patience budget is exhausted."""
        return self.epochs_without_improvement >= self.patience
