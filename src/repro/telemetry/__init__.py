"""Telemetry: request tracing, unified metrics, lifecycle events, JSON logs.

Three independent pillars, all stdlib-only and all safe to leave enabled:

- :mod:`repro.telemetry.trace` — per-request span trees carried across the
  gateway thread pool (contextvars), the scorer processes (wire wrapper) and
  the shared-cache socket (traced frames); a bounded ring behind
  ``GET /v1/traces``.
- :mod:`repro.telemetry.metrics` — counters/gauges/histograms published at
  scrape time from the existing per-subsystem stat blocks; Prometheus text
  behind ``GET /metrics``; snapshots mergeable across a sharded fleet.
- :mod:`repro.telemetry.events` — bounded lifecycle event bus (promotions,
  rollbacks, scorer respawns) feeding the ``GET /v1/metrics/stream`` SSE
  endpoint.

:mod:`repro.telemetry.logging` adds one-line-JSON structured logging shared
by gateway, supervisor and scorer processes.
"""

from repro.telemetry.events import Event, EventBus, emit_event, get_event_bus
from repro.telemetry.logging import (
    JsonLogFormatter,
    configure_json_logging,
    get_log_context,
    maybe_configure_from_env,
    set_log_context,
)
from repro.telemetry.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    merge_snapshots,
    render_snapshot,
)
from repro.telemetry.publish import GatewayTelemetry
from repro.telemetry.trace import (
    Span,
    Trace,
    Tracer,
    add_span,
    annotate,
    current_trace_id,
    enabled,
    get_tracer,
    new_trace_id,
    set_enabled,
    span,
    start_trace,
    valid_trace_id,
)

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Event",
    "EventBus",
    "Gauge",
    "GatewayTelemetry",
    "Histogram",
    "JsonLogFormatter",
    "MetricsRegistry",
    "Span",
    "Trace",
    "Tracer",
    "add_span",
    "annotate",
    "configure_json_logging",
    "current_trace_id",
    "emit_event",
    "enabled",
    "get_event_bus",
    "get_log_context",
    "get_registry",
    "get_tracer",
    "maybe_configure_from_env",
    "merge_snapshots",
    "new_trace_id",
    "render_snapshot",
    "set_enabled",
    "set_log_context",
    "span",
    "start_trace",
    "valid_trace_id",
]
