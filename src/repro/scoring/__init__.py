"""Pluggable scoring backends: the path from beam search to forward passes.

Everything between ``BeamSearchPlanner.search(score_fn=...)`` and
``ValueNetwork.predict_examples`` lives in this package, behind one
:class:`~repro.scoring.protocol.ScoringBackend` protocol
(``submit(query, plans, version) -> ndarray``, ``follow(registry)``,
``stats()``, ``close()``) with three implementations:

- :class:`~repro.scoring.inproc.InProcessBackend` — forward passes on the
  calling thread (the GIL-bound baseline, and the serving layer's fallback
  when another backend fails);
- :class:`~repro.scoring.threaded.ThreadedBatchingBackend` — one scoring
  thread coalescing the frontiers of concurrent searches into larger forward
  passes (the historical ``BatchedScoringBridge``, recomposed: featurisation
  now happens in the submitting workers);
- :class:`~repro.scoring.process.ProcessPoolBackend` — N scorer processes
  restoring published :class:`~repro.lifecycle.snapshot.ModelSnapshot` files
  via the stateless ``ValueNetwork.from_state_dict`` contract, fed by the
  pickle-free :mod:`~repro.scoring.wire` payload format.  Breaks the GIL
  bound; hot swaps propagate by version token, never as live objects.
  Selected as ``"process+shm"``, the same pool ships payloads zero-copy
  through per-worker :class:`~repro.scoring.shm.ShmRingBuffer` slots,
  adapts its forward-pass batch cap to load, and is scaled elastically by
  a :class:`~repro.scoring.autoscale.PoolAutoscaler`.

Every backend pins requests to a model version, and two versions are never
mixed into one forward pass — the invariant the model-lifecycle hot swap
relies on.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.scoring.autoscale import AutoscalerConfig, PoolAutoscaler
from repro.scoring.inproc import InProcessBackend
from repro.scoring.process import ProcessPoolBackend
from repro.scoring.protocol import (
    ScoringBackend,
    ScoringBackendError,
    ScoringBridgeStats,
    ScoringStats,
    VersionPin,
)
from repro.scoring.shm import ShmRingBuffer
from repro.scoring.threaded import ThreadedBatchingBackend
from repro.scoring.wire import pack_examples, unpack_examples

if TYPE_CHECKING:
    from repro.model.value_network import ValueNetwork

#: The names ``make_scoring_backend`` (and ``BalsaConfig.scoring_backend``)
#: accept.
BACKEND_NAMES = ("inproc", "threaded", "process", "process+shm")


def make_scoring_backend(
    name: str,
    network_provider: "Callable[[], ValueNetwork | None] | None" = None,
    *,
    featurizer=None,
    num_workers: int = 2,
    max_batch_size: int = 512,
    coalesce_wait_seconds: float = 0.001,
    **kwargs,
) -> ScoringBackend:
    """Build a scoring backend by name.

    Args:
        name: One of ``"inproc"``, ``"threaded"``, ``"process"``,
            ``"process+shm"``.
        network_provider: Source of the current network for unpinned
            requests.
        featurizer: Featuriser for the submitting side (required by the
            process backends unless every request pins a live network).
        num_workers: Scorer processes (process backends only).  For
            ``"process+shm"`` this is the *ceiling*: the default autoscaler
            elastically runs 1..num_workers processes.
        max_batch_size: Forward-pass size cap (the hard ceiling when the
            adaptive controller is on).
        coalesce_wait_seconds: Straggler window (threaded backend only).
        **kwargs: Forwarded to the backend constructor.  ``"process+shm"``
            defaults ``use_shm``/``adaptive_batching`` on and installs an
            :class:`AutoscalerConfig` spanning 1..``num_workers``; pass
            ``autoscaler=None`` for a fixed-size shm pool.
    """
    if name == "inproc":
        return InProcessBackend(
            network_provider,
            featurizer=featurizer,
            max_batch_size=max_batch_size,
            **kwargs,
        )
    if name == "threaded":
        return ThreadedBatchingBackend(
            network_provider,
            featurizer=featurizer,
            max_batch_size=max_batch_size,
            coalesce_wait_seconds=coalesce_wait_seconds,
            **kwargs,
        )
    if name in ("process", "process+shm"):
        if name == "process+shm":
            kwargs.setdefault("use_shm", True)
            kwargs.setdefault("adaptive_batching", True)
            kwargs.setdefault(
                "autoscaler",
                AutoscalerConfig(min_workers=1, max_workers=max(num_workers, 1)),
            )
        return ProcessPoolBackend(
            featurizer,
            network_provider=network_provider,
            num_workers=num_workers,
            max_batch_size=max_batch_size,
            **kwargs,
        )
    raise ValueError(
        f"unknown scoring backend {name!r}; expected one of {BACKEND_NAMES}"
    )


__all__ = [
    "AutoscalerConfig",
    "BACKEND_NAMES",
    "InProcessBackend",
    "PoolAutoscaler",
    "ProcessPoolBackend",
    "ScoringBackend",
    "ScoringBackendError",
    "ScoringBridgeStats",
    "ScoringStats",
    "ShmRingBuffer",
    "ThreadedBatchingBackend",
    "VersionPin",
    "make_scoring_backend",
    "pack_examples",
    "unpack_examples",
]
