"""Search states: sets of partial plans for a query."""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

from repro.plans.nodes import PlanNode


@dataclass(frozen=True)
class SearchState:
    """A set of partial plans covering disjoint alias subsets of one query.

    Beam search starts from the state containing one scan per alias and
    repeatedly joins two member plans until a state contains a single complete
    plan (paper §4.2).

    Attributes:
        plans: The member plans, stored in a canonical (fingerprint-sorted)
            order so equal states compare and hash equal.
    """

    plans: tuple[PlanNode, ...]

    def __post_init__(self) -> None:
        ordered = tuple(sorted(self.plans, key=lambda p: p.fingerprint()))
        object.__setattr__(self, "plans", ordered)

    @cached_property
    def fingerprint(self) -> str:
        """Stable identity of the state."""
        return "|".join(p.fingerprint() for p in self.plans)

    @property
    def num_plans(self) -> int:
        """Number of member plans."""
        return len(self.plans)

    def covered_aliases(self) -> frozenset[str]:
        """Union of aliases covered by the member plans."""
        covered: frozenset[str] = frozenset()
        for plan in self.plans:
            covered |= plan.leaf_aliases
        return covered

    def is_terminal(self) -> bool:
        """Whether the state consists of exactly one (complete) plan."""
        return len(self.plans) == 1

    def replace_pair(self, i: int, j: int, joined: PlanNode) -> "SearchState":
        """New state with plans ``i`` and ``j`` replaced by their join."""
        remaining = tuple(p for idx, p in enumerate(self.plans) if idx not in (i, j))
        return SearchState(plans=remaining + (joined,))
