"""Featurisation of queries and plans for the value network.

Paper §7:

- *"A query is featurized as a vector [table → selectivity] where each slot
  corresponds to a table and holds its estimated selectivity.  Absent tables'
  slots are filled with zeros."* — :class:`~repro.featurization.query_encoder.QueryEncoder`.
- *"Each plan has the same encoding as Neo"* — a per-node feature vector of a
  physical-operator one-hot concatenated with a multi-hot of the base tables
  covered by the node's subtree —
  :class:`~repro.featurization.plan_encoder.PlanEncoder`.

:class:`~repro.featurization.featurizer.QueryPlanFeaturizer` bundles the two
and builds padded :class:`~repro.nn.tree_conv.TreeBatch` objects for training
and inference.
"""

from repro.featurization.query_encoder import QueryEncoder
from repro.featurization.plan_encoder import PlanEncoder
from repro.featurization.featurizer import (
    FeaturizedExample,
    QueryPlanFeaturizer,
    SignatureFeaturizer,
    batch_examples,
    canonical_signature,
)

__all__ = [
    "QueryEncoder",
    "PlanEncoder",
    "FeaturizedExample",
    "QueryPlanFeaturizer",
    "SignatureFeaturizer",
    "batch_examples",
    "canonical_signature",
]
