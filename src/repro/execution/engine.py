"""The execution engine: runs physical plans and reports simulated latencies."""

from __future__ import annotations

from dataclasses import dataclass, field


from repro.execution.latency import LatencyModel
from repro.execution.operators import (
    IntermediateExplosionError,
    execute_join,
    execute_scan,
)
from repro.execution.result import IntermediateResult
from repro.plans.nodes import JoinNode, PlanNode, ScanNode
from repro.plans.validation import validate_plan
from repro.sql.query import Query
from repro.storage.database import Database
from repro.utils.rng import derive_seed


@dataclass
class ExecutionResult:
    """Outcome of executing one plan.

    Attributes:
        query_name: Name of the executed query.
        plan_fingerprint: Identity of the executed plan.
        latency: Simulated latency in seconds.  When ``timed_out`` is true this
            is the timeout budget the execution was cut off at, not a true
            completion time.
        timed_out: Whether the execution exceeded the timeout budget.
        output_rows: Cardinality of the final result (0 when timed out).
        work: Accumulated work units at the point execution stopped.
        node_cardinalities: True output cardinality for every executed subtree,
            keyed by its frozenset of aliases.
    """

    query_name: str
    plan_fingerprint: str
    latency: float
    timed_out: bool
    output_rows: int
    work: float
    node_cardinalities: dict[frozenset, int] = field(default_factory=dict)


class ExecutionTimeout(Exception):
    """Internal signal: the work budget was exhausted mid-plan."""


class ExecutionEngine:
    """Executes physical plans against a :class:`~repro.storage.Database`.

    This is the "environment" of the reinforcement-learning loop (Figure 1 of
    the paper): the agent submits a plan, the engine returns its latency.
    Timeouts (paper §4.3) are supported natively: a plan whose accumulated
    work exceeds the budget is terminated early.

    Args:
        database: The database to execute against.
        latency_model: Work-to-latency conversion constants.
        max_intermediate_rows: Materialisation guard for disastrous plans.
        noise_seed: Root seed for per-execution latency noise (only relevant
            when the latency model's ``noise_std`` is positive).
    """

    def __init__(
        self,
        database: Database,
        latency_model: LatencyModel | None = None,
        max_intermediate_rows: int = 3_000_000,
        noise_seed: int = 0,
    ):
        self.database = database
        self.latency_model = latency_model or LatencyModel()
        self.max_intermediate_rows = max_intermediate_rows
        self.noise_seed = noise_seed
        self.num_executions = 0
        self.total_simulated_seconds = 0.0

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def execute(
        self,
        query: Query,
        plan: PlanNode,
        timeout: float | None = None,
        validate: bool = True,
    ) -> ExecutionResult:
        """Execute ``plan`` for ``query``.

        Args:
            query: The query being executed.
            plan: A complete physical plan for the query.
            timeout: Optional latency budget in (simulated) seconds.  When the
                accumulated work exceeds this budget the execution stops and
                the result is marked ``timed_out``.
            validate: Whether to validate the plan against the query first.

        Returns:
            An :class:`ExecutionResult`.
        """
        if validate:
            validate_plan(query, plan, require_complete=True)
        work_budget = (
            None if timeout is None else self.latency_model.to_work(timeout)
        )
        state = _ExecutionState(budget=work_budget)
        timed_out = False
        exploded_rows = 0
        output_rows = 0
        try:
            result = self._execute_node(query, plan, state)
            output_rows = result.num_rows
        except ExecutionTimeout:
            timed_out = True
        except IntermediateExplosionError as explosion:
            timed_out = True
            exploded_rows = explosion.estimated_rows

        if timed_out:
            if timeout is not None:
                latency = timeout
            else:
                # No timeout was requested but the plan blew past the
                # materialisation guard: report a pessimistic latency that
                # reflects at least the work of producing the exploded
                # intermediate, so disastrous plans never look cheap.
                pessimistic_work = max(
                    state.work,
                    float(max(exploded_rows, self.max_intermediate_rows))
                    * self.latency_model.hash_probe_cost
                    * 4.0,
                )
                latency = self.latency_model.to_latency(pessimistic_work)
        else:
            latency = self.latency_model.to_latency(state.work)
            latency = self.latency_model.apply_noise(
                latency,
                derive_seed(self.noise_seed, query.name, plan.fingerprint(),
                            self.num_executions),
            )
            # Noise must never turn a completed run into a timeout violation.
            if timeout is not None:
                latency = min(latency, timeout)

        self.num_executions += 1
        self.total_simulated_seconds += latency
        return ExecutionResult(
            query_name=query.name,
            plan_fingerprint=plan.fingerprint(),
            latency=latency,
            timed_out=timed_out,
            output_rows=output_rows,
            work=state.work,
            node_cardinalities=dict(state.cardinalities),
        )

    def true_cardinality(self, query: Query, aliases: frozenset[str] | None = None) -> int:
        """True cardinality of the (sub)query restricted to ``aliases``.

        Computed by executing a canonical hash-join plan over the alias set.
        Cardinality probes use a much larger materialisation guard than normal
        executions because even a modest final result can be reached through
        large intermediates under the canonical order; if the probe still
        exceeds the guard, the guard value is returned as a lower bound.

        Used by the true-cardinality estimator and by tests.
        """
        target = query if aliases is None else query.restricted_to(aliases)
        plan = _canonical_plan(target)
        probe_limit = max(self.max_intermediate_rows, 20_000_000)
        original_limit = self.max_intermediate_rows
        self.max_intermediate_rows = probe_limit
        try:
            result = self.execute(target, plan, timeout=None, validate=False)
        finally:
            self.max_intermediate_rows = original_limit
        if result.timed_out:
            return probe_limit
        return result.output_rows

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _execute_node(
        self, query: Query, node: PlanNode, state: "_ExecutionState"
    ) -> IntermediateResult:
        if isinstance(node, ScanNode):
            output = execute_scan(self.database, query, node, self.latency_model)
        elif isinstance(node, JoinNode):
            left = self._execute_node(query, node.left, state)
            right = self._execute_node(query, node.right, state)
            output = execute_join(
                self.database,
                query,
                node,
                left,
                right,
                self.latency_model,
                self.max_intermediate_rows,
            )
        else:  # pragma: no cover - only two node kinds exist
            raise TypeError(f"unknown plan node type {type(node)!r}")

        state.work += output.work
        state.cardinalities[node.leaf_aliases] = output.result.num_rows
        if state.budget is not None and state.work > state.budget:
            raise ExecutionTimeout()
        return output.result


@dataclass
class _ExecutionState:
    """Mutable per-execution accumulator."""

    budget: float | None
    work: float = 0.0
    cardinalities: dict[frozenset, int] = field(default_factory=dict)


def _canonical_plan(query: Query) -> PlanNode:
    """A deterministic left-deep hash-join plan over a connected query.

    Join order follows a breadth-first traversal of the join graph from the
    lexicographically smallest alias, so the same alias set always produces
    the same plan (useful for cardinality probing and caching).
    """
    import networkx as nx

    from repro.plans.builders import scan
    from repro.plans.nodes import JoinNode, JoinOperator

    aliases = sorted(query.aliases)
    if len(aliases) == 1:
        return scan(query, aliases[0])
    graph = query.join_graph
    order = list(nx.bfs_tree(graph, aliases[0]))
    # Any aliases unreachable from the start (disconnected subsets should not
    # occur for valid queries) are appended at the end.
    order += [a for a in aliases if a not in order]
    current: PlanNode = scan(query, order[0])
    remaining = order[1:]
    covered = {order[0]}
    while remaining:
        # Pick the next alias connected to the covered set to avoid cross joins.
        next_alias = None
        for alias in remaining:
            if query.joins_between(covered, {alias}):
                next_alias = alias
                break
        if next_alias is None:
            next_alias = remaining[0]
        remaining.remove(next_alias)
        covered.add(next_alias)
        current = JoinNode(current, scan(query, next_alias), JoinOperator.HASH_JOIN)
    return current
