"""Best-first beam search over search states, guided by the value network.

Paper §4.2: the search starts from a root state containing all base-table
scans.  A beam of size ``b`` keeps the most promising states (by predicted
latency).  Expanding a state applies every action — joining two eligible
member plans with a physical join operator, assigning scan operators when a
side is a bare table — and the children are scored by the value network.  The
search stops once ``k`` complete plans have been found; Balsa uses
``b = 20, k = 10`` during training.

A state's score is ``max`` over its member plans of ``V(query, plan)``
(footnote 6), and per-plan predictions are cached so each distinct subplan is
scored by the network exactly once per search.

:meth:`BeamSearchPlanner.search` is the native entry point and returns the
uniform :class:`~repro.planning.envelope.PlanResult` envelope; it accepts a
per-call ``top_k`` override and an absolute ``deadline`` at which the search
cuts off early (returning whatever complete plans it has, flagged
``deadline_exceeded``).  The registry-facing protocol adapter is
:class:`~repro.planning.adapters.BeamPlanner`.  The historical
:meth:`BeamSearchPlanner.plan` signature survives as a deprecated delegate.
"""

from __future__ import annotations

import heapq
import time
import warnings
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.model.value_network import ValueNetwork
from repro.planning.envelope import PlanResult
from repro.plans.builders import all_join_operators, all_scan_operators, scan
from repro.plans.nodes import JoinNode, PlanNode, ScanNode
from repro.search.state import SearchState
from repro.sql.query import Query

#: Historical name of the search's result type, kept as an alias: beam search
#: now returns the uniform planning envelope directly.
PlannerResult = PlanResult


@dataclass
class _BeamEntry:
    """Heap entry ordering states by predicted latency."""

    score: float
    order: int
    state: SearchState = field(compare=False)

    def __lt__(self, other: "_BeamEntry") -> bool:
        return (self.score, self.order) < (other.score, other.order)


class BeamSearchPlanner:
    """Beam-search planner over a value network.

    Args:
        beam_size: Beam width ``b``.
        top_k: Number of complete plans to collect before stopping (``k``).
        enumerate_scan_operators: Whether actions assign scan operators when a
            join side is a bare table (disable to shrink the action space).
        max_expansions: Safety bound on the number of state expansions.
    """

    name = "beam"

    def __init__(
        self,
        beam_size: int = 20,
        top_k: int = 10,
        enumerate_scan_operators: bool = True,
        max_expansions: int = 4000,
    ):
        self.beam_size = beam_size
        self.top_k = top_k
        self.enumerate_scan_operators = enumerate_scan_operators
        self.max_expansions = max_expansions

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def search(
        self,
        query: Query,
        network: ValueNetwork,
        score_fn: Callable[[Query, list[PlanNode]], Sequence[float]] | None = None,
        top_k: int | None = None,
        deadline: float | None = None,
    ) -> PlanResult:
        """Search for up to ``top_k`` complete plans for ``query``.

        Args:
            query: The query to plan.
            network: Value network guiding the search.
            score_fn: Optional replacement for ``network.predict`` — the
                planner service injects its scoring backend here (a bound
                ``ScoringBackend.submit``), so frontier expansions from
                concurrent searches coalesce into larger forward passes or
                run in scorer processes; the search is agnostic to which.
            top_k: Per-call override of the configured ``top_k``.
            deadline: Absolute ``time.perf_counter()`` timestamp at which the
                search stops expanding and returns whatever complete plans it
                has found so far (``deadline_exceeded`` is set on the result).
        """
        started = time.perf_counter()
        k = self.top_k if top_k is None else top_k
        predict = score_fn if score_fn is not None else network.predict
        plan_scores: dict[str, float] = {}
        counter = 0

        def score_plans(plans: Sequence[PlanNode]) -> None:
            """Batch-score plans not seen before in this search."""
            unseen = [p for p in plans if p.fingerprint() not in plan_scores]
            unique: dict[str, PlanNode] = {p.fingerprint(): p for p in unseen}
            if not unique:
                return
            ordered = list(unique.values())
            predictions = predict(query, ordered)
            for plan, value in zip(ordered, predictions):
                plan_scores[plan.fingerprint()] = float(value)

        def state_score(state: SearchState) -> float:
            return max(plan_scores[p.fingerprint()] for p in state.plans)

        root_plans = [scan(query, alias) for alias in query.aliases]
        score_plans(root_plans)
        root = SearchState(plans=tuple(root_plans))
        if root.is_terminal():
            # Single-table query: the only plan is a scan of that table.
            plan = root.plans[0]
            return PlanResult(
                plans=[plan],
                predicted_latencies=[plan_scores[plan.fingerprint()]],
                planning_seconds=time.perf_counter() - started,
                states_expanded=0,
                plans_scored=len(plan_scores),
                planner_name=self.name,
            )

        beam: list[_BeamEntry] = [_BeamEntry(state_score(root), counter, root)]
        complete: dict[str, tuple[PlanNode, float]] = {}
        visited: set[str] = {root.fingerprint}
        expansions = 0
        out_of_budget = False

        while beam and len(complete) < k and expansions < self.max_expansions:
            if deadline is not None and time.perf_counter() >= deadline:
                out_of_budget = True
                break
            entry = heapq.heappop(beam)
            state = entry.state
            expansions += 1

            children = self._expand(query, state)
            if not children:
                continue
            # Score every member plan of every child; the per-search cache makes
            # this cheap (only plans never seen in this search hit the network).
            score_plans([plan for child in children for plan in child.plans])

            for child in children:
                if child.fingerprint in visited:
                    continue
                visited.add(child.fingerprint)
                if child.is_terminal():
                    plan = child.plans[0]
                    complete[plan.fingerprint()] = (
                        plan,
                        plan_scores[plan.fingerprint()],
                    )
                    continue
                counter += 1
                heapq.heappush(beam, _BeamEntry(state_score(child), counter, child))

            # Keep only the best ``beam_size`` states.
            if len(beam) > self.beam_size:
                beam = heapq.nsmallest(self.beam_size, beam)
                heapq.heapify(beam)

        ordered = sorted(complete.values(), key=lambda pair: pair[1])[:k]
        elapsed = time.perf_counter() - started
        return PlanResult(
            plans=[plan for plan, _ in ordered],
            predicted_latencies=[value for _, value in ordered],
            planning_seconds=elapsed,
            states_expanded=expansions,
            plans_scored=len(plan_scores),
            planner_name=self.name,
            deadline_exceeded=out_of_budget,
        )

    def plan(
        self,
        query: Query,
        network: ValueNetwork,
        score_fn: Callable[[Query, list[PlanNode]], Sequence[float]] | None = None,
    ) -> PlanResult:
        """Deprecated alias of :meth:`search` (the pre-envelope entry point)."""
        warnings.warn(
            "BeamSearchPlanner.plan() is deprecated; use BeamSearchPlanner.search() "
            "or plan through the repro.planning registry",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.search(query, network, score_fn=score_fn)

    # ------------------------------------------------------------------ #
    # Expansion
    # ------------------------------------------------------------------ #
    def _expand(self, query: Query, state: SearchState) -> list[SearchState]:
        """Apply every action to ``state``: join two eligible member plans."""
        children: list[SearchState] = []
        plans = state.plans
        for i in range(len(plans)):
            for j in range(len(plans)):
                if i == j:
                    continue
                left, right = plans[i], plans[j]
                if not query.joins_between(left.leaf_aliases, right.leaf_aliases):
                    continue
                for left_variant in self._scan_variants(left):
                    for right_variant in self._scan_variants(right):
                        for join_operator in all_join_operators():
                            joined = JoinNode(left_variant, right_variant, join_operator)
                            children.append(state.replace_pair(i, j, joined))
        return children

    def _scan_variants(self, plan: PlanNode) -> list[PlanNode]:
        """Scan-operator assignments for a bare table; joined plans are fixed."""
        if isinstance(plan, ScanNode) and self.enumerate_scan_operators:
            return [plan.with_operator(op) for op in all_scan_operators()]
        return [plan]
