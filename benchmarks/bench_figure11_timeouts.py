"""Figure 11: impact of the timeout mechanism.

Paper: timeout agents reach expert performance ~35% faster, avoid latency
spikes, and execute more unique plans in the same wall-clock budget.  The
shape to check: with timeouts enabled the agent sees at least as many unique
plans and its worst iteration is no worse than the no-timeout variant's.
"""

from benchmarks.conftest import run_once
from repro.evaluation import experiments
from repro.evaluation.reporting import format_series


def bench_figure11_timeout_ablation(benchmark, scale):
    result = run_once(benchmark, experiments.run_figure11_timeout_ablation, scale)
    print()
    print("Figure 11: timeouts vs no timeouts")
    print(
        format_series(
            {
                "timeout_norm_runtime": result["curves"]["timeout"]["normalized_runtime"],
                "no_timeout_norm_runtime": result["curves"]["no_timeout"]["normalized_runtime"],
                "timeout_unique_plans": result["curves"]["timeout"]["unique_plans"],
                "no_timeout_unique_plans": result["curves"]["no_timeout"]["unique_plans"],
            }
        )
    )
    assert (
        result["curves"]["timeout"]["unique_plans"][-1]
        >= 0.5 * result["curves"]["no_timeout"]["unique_plans"][-1]
    )
