"""Declarative SLOs with multi-window burn-rate evaluation.

An :class:`SloObjective` names a good-event fraction the service promises
(``objective``) and how to pull cumulative ``(bad, total)`` event counts
out of a :class:`~repro.telemetry.metrics.MetricsRegistry` snapshot.  The
:class:`SloEvaluator` keeps a short timestamped history of those counters
per objective and computes **burn rates** the SRE way:

    ``burn(w) = (Δbad / Δtotal over window w) / (1 - objective)``

A burn rate of 1.0 spends the error budget exactly at the rate the
objective allows; 14.4 exhausts a 30-day budget in 2 days.  An objective
*breaches* only when **both** a fast window (default 5 minutes — catches
the regression quickly) and a slow window (default 1 hour — proves it is
sustained, not a blip) burn above the objective's threshold.  Both
windows scale down uniformly for tests via the evaluator's constructor.

Nothing here knows about alerting or HTTP: the evaluator turns snapshots
into :class:`SloStatus` rows; :mod:`repro.telemetry.alerts` turns those
rows into a state machine and actions.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable

__all__ = [
    "SeriesIndex",
    "SloEvaluator",
    "SloObjective",
    "SloStatus",
    "default_slo_objectives",
]

DEFAULT_FAST_WINDOW_SECONDS = 300.0
DEFAULT_SLOW_WINDOW_SECONDS = 3600.0


class SeriesIndex:
    """Read-side helper over one ``MetricsRegistry.snapshot()`` dict.

    Sums matching entries across label sets so extractors do not care how
    many planners or shards contributed a series.
    """

    def __init__(self, snapshot: dict) -> None:
        self._by_name: dict[str, list[dict]] = {}
        for entry in snapshot.get("metrics", []) if isinstance(snapshot, dict) else []:
            name = entry.get("name")
            if isinstance(name, str):
                self._by_name.setdefault(name, []).append(entry)

    def value(
        self,
        name: str,
        label_filter: Callable[[dict], bool] | None = None,
    ) -> float:
        """Summed counter/gauge value across matching label sets."""
        total = 0.0
        for entry in self._by_name.get(name, []):
            if entry.get("kind") not in {"counter", "gauge"}:
                continue
            if label_filter is not None and not label_filter(
                entry.get("labels", {}) or {}
            ):
                continue
            value = entry.get("value", 0.0)
            if isinstance(value, (int, float)):
                total += float(value)
        return total

    def histogram_split(self, name: str, threshold: float) -> tuple[float, float]:
        """``(bad, total)`` observation counts for one histogram family,
        where *bad* counts observations strictly above ``threshold``.

        Observations are only bucketed, not retained, so the split lands on
        bucket bounds: a bucket counts as *good* only when its entire range
        sits at or below the threshold — a threshold between bounds rounds
        toward flagging more observations bad, never fewer.
        """
        bad = 0.0
        total = 0.0
        for entry in self._by_name.get(name, []):
            if entry.get("kind") != "histogram":
                continue
            bounds = entry.get("bounds") or []
            counts = entry.get("counts") or []
            if len(counts) != len(bounds) + 1:
                continue
            entry_total = float(sum(counts))
            # Buckets are cumulative-by-construction here only in spirit:
            # counts[i] observes (bounds[i-1], bounds[i]], counts[-1] is the
            # +Inf bucket.  "Under" = every bucket whose upper bound stays
            # at or below the threshold.
            under = sum(
                float(count)
                for bound, count in zip(bounds, counts)
                if bound <= threshold
            )
            total += entry_total
            bad += max(entry_total - under, 0.0)
        return bad, total

    def names(self) -> list[str]:
        return sorted(self._by_name)


@dataclass(frozen=True)
class SloObjective:
    """One service-level objective.

    Attributes:
        name: Stable identifier (doubles as the alert name).
        objective: Promised good-event fraction in ``(0, 1)``; the error
            budget is ``1 - objective``.
        extract: ``snapshot_index -> (cumulative_bad, cumulative_total)``.
        burn_threshold: Both windows must burn at or above this rate for
            the objective to breach.
        description: Human line for ``/v1/alerts`` annotations.
    """

    name: str
    objective: float
    extract: Callable[[SeriesIndex], tuple[float, float]]
    burn_threshold: float = 6.0
    description: str = ""

    def __post_init__(self) -> None:
        if not 0.0 < self.objective < 1.0:
            raise ValueError(
                f"objective must be in (0, 1), got {self.objective} for {self.name}"
            )
        if self.burn_threshold <= 0:
            raise ValueError(
                f"burn_threshold must be positive, got {self.burn_threshold}"
            )

    @property
    def error_budget(self) -> float:
        return 1.0 - self.objective


@dataclass
class SloStatus:
    """One objective's evaluation at one instant."""

    name: str
    objective: float
    burn_threshold: float
    fast_burn_rate: float = 0.0
    slow_burn_rate: float = 0.0
    bad_total: float = 0.0
    event_total: float = 0.0
    breaching: bool = False
    description: str = ""

    def to_json_dict(self) -> dict:
        return {
            "name": self.name,
            "objective": self.objective,
            "error_budget": 1.0 - self.objective,
            "burn_threshold": self.burn_threshold,
            "fast_burn_rate": self.fast_burn_rate,
            "slow_burn_rate": self.slow_burn_rate,
            "bad_total": self.bad_total,
            "event_total": self.event_total,
            "breaching": self.breaching,
            "description": self.description,
        }


@dataclass
class _History:
    """Timestamped cumulative ``(bad, total)`` samples for one objective."""

    points: deque = field(default_factory=deque)  # (t, bad, total)


class SloEvaluator:
    """Turns registry snapshots into burn-rate statuses.

    Args:
        objectives: The SLOs to track.
        fast_window_seconds / slow_window_seconds: Burn-rate windows; scale
            both down together for tests (e.g. 0.2s / 1.0s).
        clock: Injectable monotonic clock.
    """

    def __init__(
        self,
        objectives: list[SloObjective] | None = None,
        *,
        fast_window_seconds: float = DEFAULT_FAST_WINDOW_SECONDS,
        slow_window_seconds: float = DEFAULT_SLOW_WINDOW_SECONDS,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if fast_window_seconds <= 0 or slow_window_seconds < fast_window_seconds:
            raise ValueError(
                "need 0 < fast_window_seconds <= slow_window_seconds, got "
                f"{fast_window_seconds}/{slow_window_seconds}"
            )
        self.objectives = list(
            objectives if objectives is not None else default_slo_objectives()
        )
        names = [o.name for o in self.objectives]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate objective names: {names}")
        self.fast_window_seconds = float(fast_window_seconds)
        self.slow_window_seconds = float(slow_window_seconds)
        self._clock = clock
        self._history: dict[str, _History] = {o.name: _History() for o in self.objectives}

    def observe(self, snapshot: dict, now: float | None = None) -> list[SloStatus]:
        """Fold one snapshot into the history and evaluate every objective."""
        if now is None:
            now = self._clock()
        index = SeriesIndex(snapshot)
        statuses: list[SloStatus] = []
        for objective in self.objectives:
            history = self._history[objective.name]
            try:
                bad, total = objective.extract(index)
            except Exception:
                # A missing subsystem (no scorer pool, no sink) must never
                # take the watchtower down; treat as no new evidence.
                bad, total = 0.0, 0.0
            points = history.points
            # Cumulative counters only move forward; a reset (restart)
            # would make deltas negative, so restart the history instead.
            if points and (bad < points[-1][1] or total < points[-1][2]):
                points.clear()
            points.append((now, bad, total))
            horizon = now - self.slow_window_seconds
            # Keep one point at-or-before the horizon so the slow-window
            # delta spans the full window instead of shrinking as we prune.
            while len(points) >= 2 and points[1][0] <= horizon:
                points.popleft()
            fast = self._burn(objective, points, now, self.fast_window_seconds)
            slow = self._burn(objective, points, now, self.slow_window_seconds)
            statuses.append(
                SloStatus(
                    name=objective.name,
                    objective=objective.objective,
                    burn_threshold=objective.burn_threshold,
                    fast_burn_rate=fast,
                    slow_burn_rate=slow,
                    bad_total=bad,
                    event_total=total,
                    breaching=(
                        fast >= objective.burn_threshold
                        and slow >= objective.burn_threshold
                    ),
                    description=objective.description,
                )
            )
        return statuses

    @staticmethod
    def _burn(
        objective: SloObjective,
        points: deque,
        now: float,
        window: float,
    ) -> float:
        if len(points) < 2:
            return 0.0
        cutoff = now - window
        base = points[0]
        for point in points:
            if point[0] <= cutoff:
                base = point
            else:
                break
        newest = points[-1]
        delta_total = newest[2] - base[2]
        if delta_total <= 0:
            return 0.0
        delta_bad = max(newest[1] - base[1], 0.0)
        return (delta_bad / delta_total) / objective.error_budget


def default_slo_objectives(
    *,
    latency_threshold_seconds: float = 0.25,
    latency_objective: float = 0.99,
    error_rate_objective: float = 0.999,
    cache_hit_objective: float = 0.5,
    scorer_crash_objective: float = 0.999,
    sink_drop_objective: float = 0.99,
    burn_threshold: float = 6.0,
) -> list[SloObjective]:
    """The gateway's five stock objectives over its published series."""

    def latency(index: SeriesIndex) -> tuple[float, float]:
        return index.histogram_split(
            "repro_request_service_seconds", latency_threshold_seconds
        )

    def http_errors(index: SeriesIndex) -> tuple[float, float]:
        def is_5xx(labels: dict) -> bool:
            return str(labels.get("status", "")).startswith("5")

        total = index.value("repro_http_responses_total")
        return index.value("repro_http_responses_total", is_5xx), total

    def cache_misses(index: SeriesIndex) -> tuple[float, float]:
        hits = index.value("repro_service_cache_hits_total")
        misses = index.value("repro_service_cache_misses_total")
        return misses, hits + misses

    def scorer_crashes(index: SeriesIndex) -> tuple[float, float]:
        crashes = index.value("repro_scoring_worker_crashes_total")
        requests = index.value("repro_scoring_requests_total")
        return crashes, max(requests, crashes)

    def sink_drops(index: SeriesIndex) -> tuple[float, float]:
        dropped = index.value("repro_experience_sink_dropped")
        recorded = index.value("repro_experience_sink_recorded")
        return dropped, dropped + recorded

    return [
        SloObjective(
            name="served_latency_p99",
            objective=latency_objective,
            extract=latency,
            burn_threshold=burn_threshold,
            description=(
                f"{latency_objective:.2%} of served requests complete within "
                f"{latency_threshold_seconds * 1e3:.0f}ms"
            ),
        ),
        SloObjective(
            name="http_error_rate",
            objective=error_rate_objective,
            extract=http_errors,
            burn_threshold=burn_threshold,
            description=f"{error_rate_objective:.2%} of HTTP responses are non-5xx",
        ),
        SloObjective(
            name="plan_cache_hit_rate",
            objective=cache_hit_objective,
            extract=cache_misses,
            burn_threshold=burn_threshold,
            description=(
                f"at least {cache_hit_objective:.0%} of plan lookups hit the cache"
            ),
        ),
        SloObjective(
            name="scorer_crash_rate",
            objective=scorer_crash_objective,
            extract=scorer_crashes,
            burn_threshold=burn_threshold,
            description=(
                f"fewer than {1 - scorer_crash_objective:.2%} of scoring requests "
                "coincide with a scorer crash"
            ),
        ),
        SloObjective(
            name="sink_drop_rate",
            objective=sink_drop_objective,
            extract=sink_drops,
            burn_threshold=burn_threshold,
            description=(
                f"fewer than {1 - sink_drop_objective:.0%} of experience tuples "
                "are dropped at the sink"
            ),
        ),
    ]
