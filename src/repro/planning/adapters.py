"""Adapters putting every optimizer in the repository behind the protocol.

Most planners implement :class:`~repro.planning.protocol.Planner` natively
(the classical optimizers, the expert baselines, Bao).  The adapters here
cover the rest:

- :class:`BeamPlanner` binds a value network (and optionally a custom scoring
  function) to a :class:`~repro.search.beam.BeamSearchPlanner` so beam search
  can be driven by a bare :class:`~repro.planning.envelope.PlanRequest`;
- :class:`RandomPlanner` samples uniformly random valid plans, deterministic
  per ``(seed, query, index)``;
- :class:`AgentPlanner` fronts a trained (or lazily bootstrapped)
  :class:`~repro.agent.balsa.BalsaAgent` / Neo agent, planning through the
  agent's own planner service.

:func:`registry_from_benchmark` wires the full standard set — ``"beam"``,
``"dp"``, ``"greedy"``, ``"quickpick"``, ``"postgres"``, ``"commdb"``,
``"bao"``, ``"neo"`` and ``"random"`` — for one
:class:`~repro.workloads.benchmark.WorkloadBenchmark`.
"""

from __future__ import annotations

import threading
import time
from typing import TYPE_CHECKING, Callable, Hashable, Sequence

from repro.optimizer.quickpick import random_plan
from repro.planning.envelope import PlanRequest, PlanResult
from repro.planning.registry import PlannerRegistry, default_registry
from repro.search.beam import BeamSearchPlanner
from repro.utils.rng import derive_seed, new_rng

if TYPE_CHECKING:
    from repro.agent.balsa import BalsaAgent
    from repro.model.value_network import ValueNetwork
    from repro.plans.nodes import PlanNode
    from repro.sql.query import Query
    from repro.workloads.benchmark import WorkloadBenchmark

#: The standard registry names, in registration order.
STANDARD_PLANNERS = (
    "beam",
    "dp",
    "greedy",
    "quickpick",
    "postgres",
    "commdb",
    "bao",
    "neo",
    "random",
)


class BeamPlanner:
    """Value-network beam search behind the :class:`Planner` protocol.

    Args:
        network: The value network guiding the search.  Mutually exclusive
            with ``network_provider``.
        network_provider: Zero-argument callable returning the current
            network (for callers that swap networks, e.g. retraining agents).
        planner: The underlying beam search (defaults to paper settings).
        score_fn: Optional replacement for ``network.predict`` (the planner
            service injects its batched scoring bridge here).
    """

    name = "beam"

    def __init__(
        self,
        network: "ValueNetwork | None" = None,
        *,
        network_provider: "Callable[[], ValueNetwork | None] | None" = None,
        planner: BeamSearchPlanner | None = None,
        score_fn: "Callable[[Query, list[PlanNode]], Sequence[float]] | None" = None,
    ):
        if (network is None) == (network_provider is None):
            raise ValueError("provide exactly one of network / network_provider")
        self.network_provider = network_provider or (lambda: network)
        self.planner = planner or BeamSearchPlanner()
        self.score_fn = score_fn

    def _network(self) -> "ValueNetwork":
        network = self.network_provider()
        if network is None:
            raise RuntimeError("beam planner has no value network yet")
        return network

    @property
    def thread_safe(self) -> bool:
        """Safe for concurrent ``plan`` calls only when scoring is delegated.

        Bare ``network.predict`` stashes per-call activations on shared layer
        objects; a ``score_fn`` (batching bridge or a lock-guarded predict)
        makes concurrent searches safe.
        """
        return self.score_fn is not None

    def version_key(self) -> Hashable:
        """The bound network's weight version (caches invalidate on updates)."""
        return self._network().version_key()

    def plan(self, request: PlanRequest) -> PlanResult:
        """Run beam search for the request, honouring ``k`` and the deadline."""
        deadline = None
        if request.deadline_seconds is not None:
            deadline = time.perf_counter() + request.deadline_seconds
        return self.planner.search(
            request.query,
            self._network(),
            score_fn=self.score_fn,
            top_k=request.k,
            deadline=deadline,
        )


def versioned_planner_name(base: str, version: object) -> str:
    """The registry key of a model version's planner (``"beam@v3"``).

    The lifecycle subsystem registers one planner per candidate/serving model
    version under these names, so shadow evaluation resolves both sides
    through the ordinary :class:`~repro.planning.registry.PlannerRegistry`
    rather than through private references.
    """
    return f"{base}@v{version}"


def register_versioned_network(
    registry: PlannerRegistry,
    network: "ValueNetwork",
    version: object,
    *,
    base: str = "beam",
    planner: BeamSearchPlanner | None = None,
) -> str:
    """Register a beam planner for one model version; returns its name.

    Re-registering a version replaces the previous entry (a restored snapshot
    is a fresh network object for the same logical version).
    """
    name = versioned_planner_name(base, version)
    adapter = BeamPlanner(network, planner=planner)
    adapter.name = name
    registry.register(name, adapter, replace=True)
    return name


class RandomPlanner:
    """Uniformly random valid plans, deterministic per (seed, query, index)."""

    name = "random"
    #: A pure function of (seed, query, index): no shared mutable state.
    thread_safe = True

    def __init__(self, seed: int = 0, bushy: bool = True):
        self.seed = seed
        self.bushy = bushy

    def plan(self, request: PlanRequest) -> PlanResult:
        """Sample ``request.k`` random valid plans (``nan`` predictions)."""
        started = time.perf_counter()
        plans = [
            random_plan(
                request.query,
                new_rng(derive_seed(self.seed, request.query.name, index)),
                bushy=self.bushy,
            )
            for index in range(request.k)
        ]
        return PlanResult(
            plans=plans,
            predicted_latencies=[float("nan")] * len(plans),
            planning_seconds=time.perf_counter() - started,
            planner_name=self.name,
        )


class AgentPlanner:
    """A Balsa-family agent behind the protocol, planning through its service.

    Args:
        agent: The agent (``BalsaAgent`` or ``NeoAgent``).  If it has not been
            bootstrapped yet, the first request triggers
            ``bootstrap_from_simulation()`` (expert demonstrations for Neo).
        name: Registry identity stamped on results (e.g. ``"neo"``).
    """

    # Not marked thread_safe: the agent's inner PlannerService is typically
    # configured with a single worker and assumes one caller at a time, so
    # the serving layer serialises this adapter's plan() calls.

    def __init__(self, agent: "BalsaAgent", name: str = "balsa"):
        self.agent = agent
        self.name = name
        self._bootstrap_lock = threading.Lock()
        # value_network is assigned *early* inside bootstrap (before training
        # finishes), so readiness needs its own completion flag.
        self._ready = agent.value_network is not None

    def _ready_agent(self) -> "BalsaAgent":
        if not self._ready:
            with self._bootstrap_lock:
                if not self._ready:
                    if self.agent.value_network is None:
                        self.agent.bootstrap_from_simulation()
                    self._ready = True
        return self.agent

    def version_key(self) -> Hashable:
        agent = self._ready_agent()
        return (self.name, agent.value_network.version_key())

    def plan(self, request: PlanRequest) -> PlanResult:
        """Plan through the agent's planner service (cache-aware)."""
        from dataclasses import replace

        response = self._ready_agent().planner_service.plan(request)
        return replace(response, planner_name=self.name)


def registry_from_benchmark(
    benchmark: "WorkloadBenchmark",
    network: "ValueNetwork | None" = None,
    *,
    bao: "object | None" = None,
    neo: "object | None" = None,
    balsa_config: "object | None" = None,
    beam_planner: BeamSearchPlanner | None = None,
    seed: int = 0,
    install: bool = False,
) -> PlannerRegistry:
    """Build a registry with the nine standard planners for ``benchmark``.

    Args:
        benchmark: The workload bundle providing database, experts and
            featurizer.
        network: Value network for ``"beam"`` (a fresh, untrained network is
            built when omitted — useful for serving-shape tests; pass a
            trained agent's ``value_network`` for meaningful plans).
        bao: A (possibly trained) :class:`~repro.baselines.bao.BaoAgent` to
            register as ``"bao"``; a fresh one is built when omitted.
        neo: A (possibly trained) :class:`~repro.baselines.neo.NeoAgent` to
            register as ``"neo"``; a fresh one (which lazily bootstraps from
            expert demonstrations on first use) is built when omitted.
        balsa_config: Config for the fresh Neo agent (default: small preset
            with zero iterations).
        beam_planner: Beam-search parameters for ``"beam"``.
        seed: Seed for the sampling planners and fresh agents.
        install: Also register every entry into the process-wide default
            registry (overwriting duplicates) so ``repro.planning.get(name)``
            resolves them.

    Returns:
        The populated :class:`PlannerRegistry`.
    """
    from repro.agent.config import BalsaConfig
    from repro.baselines.bao import BaoAgent
    from repro.baselines.neo import NeoAgent
    from repro.model.value_network import ValueNetwork
    from repro.optimizer.dp import DynamicProgrammingOptimizer
    from repro.optimizer.greedy import GreedyOptimizer
    from repro.optimizer.quickpick import QuickPickOptimizer

    postgres = benchmark.expert("postgres")
    commdb = benchmark.expert("commdb")
    config = balsa_config or BalsaConfig.small(seed=seed, num_iterations=0)
    if network is None:
        network = ValueNetwork(benchmark.featurizer, config.network)
    if bao is None:
        bao = BaoAgent(benchmark.environment(), postgres, seed=seed)
    if neo is None:
        neo = NeoAgent(
            benchmark.environment(),
            postgres,
            config,
            expert_runtimes={},
            agent_id=seed,
        )

    registry = PlannerRegistry()
    registry.register("beam", BeamPlanner(network, planner=beam_planner))
    registry.register("dp", DynamicProgrammingOptimizer(postgres.cost_model))
    registry.register("greedy", GreedyOptimizer(postgres.cost_model))
    registry.register("quickpick", QuickPickOptimizer(seed=seed))
    registry.register("postgres", postgres)
    registry.register("commdb", commdb)
    registry.register("bao", bao)
    registry.register("neo", neo if _is_planner(neo) else AgentPlanner(neo, name="neo"))
    registry.register("random", RandomPlanner(seed=seed))

    if install:
        for name in registry.available():
            default_registry.register(name, registry.get(name), replace=True)
    return registry


def _is_planner(candidate: object) -> bool:
    """Whether ``candidate`` already speaks the protocol on its own.

    Agents expose ``plan`` but route it through their planner service, which
    requires a bootstrapped network; the :class:`AgentPlanner` wrapper adds
    the lazy bootstrap and the registry name, so agents are always wrapped.
    """
    from repro.agent.balsa import BalsaAgent

    return callable(getattr(candidate, "plan", None)) and not isinstance(
        candidate, BalsaAgent
    )
