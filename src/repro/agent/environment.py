"""The environment bundle a Balsa agent trains against.

Mirrors Figure 1 of the paper: the environment is the database plus its
execution engine; the agent interacts with it only by submitting plans and
observing latencies.  The bundle also carries everything derived from the
database that agents and baselines share: statistics, the cardinality
estimator, the featuriser, a plan cache, and the training/test query sets.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cardinality.base import CardinalityEstimator
from repro.execution.engine import ExecutionEngine, ExecutionResult
from repro.execution.plan_cache import PlanCache
from repro.featurization.featurizer import QueryPlanFeaturizer
from repro.plans.nodes import PlanNode
from repro.sql.query import Query, QuerySet
from repro.storage.database import Database


@dataclass
class BalsaEnvironment:
    """Everything an agent needs to train on one workload + engine.

    Attributes:
        database: The populated database.
        engine: The execution engine (the RL environment proper).
        estimator: The cardinality estimator used for featurisation and by the
            simulator's cost model.
        featurizer: Query/plan featuriser shared by all models in a run.
        train_queries: The training workload.
        test_queries: The held-out test workload.
        plan_cache: Shared plan cache (paper §7) so reissued plans skip
            re-execution.
    """

    database: Database
    engine: ExecutionEngine
    estimator: CardinalityEstimator
    featurizer: QueryPlanFeaturizer
    train_queries: QuerySet
    test_queries: QuerySet
    plan_cache: PlanCache = field(default_factory=PlanCache)

    def query_by_name(self, name: str) -> Query:
        """Look up a query from either split by name."""
        for split in (self.train_queries, self.test_queries):
            try:
                return split.by_name(name)
            except KeyError:
                continue
        raise KeyError(f"no query named {name!r} in this environment")

    def execute(
        self, query: Query, plan: PlanNode, timeout: float | None = None
    ) -> tuple[ExecutionResult, bool]:
        """Execute a plan through the shared plan cache.

        Args:
            query: The query.
            plan: The physical plan.
            timeout: Optional latency budget.

        Returns:
            ``(result, was_cached)``.  Cached executions cost no additional
            simulated wall-clock time.
        """
        fingerprint = plan.fingerprint()
        cached = self.plan_cache.lookup(query.name, fingerprint, timeout)
        if cached is not None:
            return cached, True
        result = self.engine.execute(query, plan, timeout=timeout)
        self.plan_cache.store(query.name, fingerprint, result, timeout)
        return result, False
