"""A tiny SQL-ish formatter and parser for SPJ blocks.

The library does not need a full SQL grammar: workloads are generated
programmatically.  These helpers exist so that queries can be printed for
inspection (``format_query``) and round-tripped in tests and examples
(``parse_query``).  The accepted dialect is exactly what ``format_query``
emits::

    SELECT COUNT(*)
    FROM title AS t, movie_companies AS mc
    WHERE t.id = mc.movie_id
      AND t.production_year > 2000
      AND mc.company_type_id IN (1, 2);
"""

from __future__ import annotations

import ast
import re

from repro.sql.expr import ComparisonOp, FilterPredicate, JoinPredicate
from repro.sql.query import Query, TableRef

_JOIN_RE = re.compile(
    r"^\s*(\w+)\.(\w+)\s*=\s*(\w+)\.(\w+)\s*$",
)
_BETWEEN_RE = re.compile(
    r"^\s*(\w+)\.(\w+)\s+BETWEEN\s+(.+)\s+AND\s+(.+)\s*$", re.IGNORECASE
)
_IN_RE = re.compile(r"^\s*(\w+)\.(\w+)\s+IN\s+\((.+)\)\s*$", re.IGNORECASE)
_CMP_RE = re.compile(r"^\s*(\w+)\.(\w+)\s*(<=|>=|!=|=|<|>)\s*(.+?)\s*$")


def _parse_literal(text: str) -> object:
    """Parse a SQL-ish literal (number or quoted string)."""
    text = text.strip()
    try:
        return ast.literal_eval(text)
    except (ValueError, SyntaxError):
        return text.strip("'\"")


def format_query(query: Query) -> str:
    """Render a :class:`Query` as a SQL-ish string."""
    from_items = ", ".join(t.describe() for t in query.tables)
    conditions = [j.describe() for j in query.joins]
    conditions += [f.describe() for f in query.filters]
    lines = ["SELECT COUNT(*)", f"FROM {from_items}"]
    if conditions:
        lines.append("WHERE " + "\n  AND ".join(conditions))
    return "\n".join(lines) + ";"


def parse_query(sql: str, name: str = "query") -> Query:
    """Parse the SQL-ish dialect produced by :func:`format_query`.

    Args:
        sql: Query text.
        name: Name to give the parsed query.

    Returns:
        The parsed :class:`Query`.

    Raises:
        ValueError: If the text does not match the supported dialect.
    """
    text = sql.strip().rstrip(";")
    lowered = text.lower()
    from_idx = lowered.find("from ")
    if from_idx < 0:
        raise ValueError("query must contain a FROM clause")
    where_idx = lowered.find("where ", from_idx)
    from_clause = text[from_idx + 5 : where_idx if where_idx > 0 else None]
    where_clause = text[where_idx + 6 :] if where_idx > 0 else ""

    tables = []
    for item in from_clause.split(","):
        item = item.strip()
        if not item:
            continue
        parts = re.split(r"\s+(?:AS\s+)?", item, maxsplit=1, flags=re.IGNORECASE)
        if len(parts) == 1:
            tables.append(TableRef(parts[0], parts[0]))
        else:
            tables.append(TableRef(parts[0], parts[1]))

    joins: list[JoinPredicate] = []
    filters: list[FilterPredicate] = []
    if where_clause.strip():
        # Protect the AND inside BETWEEN clauses before splitting conditions.
        protected = re.sub(
            r"(\bBETWEEN\b\s+[\w.'\"-]+\s+)AND\b",
            r"\1__BETWEEN_CONJ__",
            where_clause,
            flags=re.IGNORECASE,
        )
        for condition in re.split(r"\bAND\b", protected, flags=re.IGNORECASE):
            condition = condition.replace("__BETWEEN_CONJ__", "AND")
            condition = condition.strip()
            if not condition:
                continue
            between = _BETWEEN_RE.match(condition)
            if between:
                alias, column, low, high = between.groups()
                filters.append(
                    FilterPredicate(
                        alias,
                        column,
                        ComparisonOp.BETWEEN,
                        (_parse_literal(low), _parse_literal(high)),
                    )
                )
                continue
            in_match = _IN_RE.match(condition)
            if in_match:
                alias, column, values = in_match.groups()
                parsed = tuple(_parse_literal(v) for v in values.split(","))
                filters.append(FilterPredicate(alias, column, ComparisonOp.IN, parsed))
                continue
            join = _JOIN_RE.match(condition)
            if join:
                la, lc, ra, rc = join.groups()
                joins.append(JoinPredicate(la, lc, ra, rc))
                continue
            cmp_match = _CMP_RE.match(condition)
            if cmp_match:
                alias, column, op, value = cmp_match.groups()
                filters.append(
                    FilterPredicate(
                        alias, column, ComparisonOp(op), _parse_literal(value)
                    )
                )
                continue
            raise ValueError(f"unsupported condition: {condition!r}")

    return Query(
        name=name, tables=tuple(tables), joins=tuple(joins), filters=tuple(filters)
    )
