"""Tests for the CI perf-regression gate (``benchmarks/check_regression.py``).

The gate must pass healthy results, demonstrably fail on an injected
regression with a clear message, respect absolute bounds, tolerance bands,
CPU gating and optional metrics — and the committed baseline files under
``benchmarks/baselines/`` must stay structurally valid.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

BENCHMARKS_DIR = Path(__file__).resolve().parent.parent / "benchmarks"
BASELINES_DIR = BENCHMARKS_DIR / "baselines"


@pytest.fixture(scope="module")
def gate():
    spec = importlib.util.spec_from_file_location(
        "check_regression", BENCHMARKS_DIR / "check_regression.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def results_with(extra_info: dict, name: str = "bench_demo") -> dict:
    return {"benchmarks": [{"name": name, "fullname": f"x.py::{name}", "extra_info": extra_info}]}


def baseline_with(checks: list[dict], benchmark: str | None = None) -> dict:
    body = {"description": "test baseline", "checks": checks}
    if benchmark is not None:
        body["benchmark"] = benchmark
    return body


class TestEvaluate:
    def test_healthy_results_pass(self, gate):
        baseline = baseline_with(
            [
                {"metric": "failed_requests", "max": 0},
                {"metric": "qps", "baseline": 100.0, "direction": "higher", "tolerance": 0.3},
                {"metric": "p99_ms", "baseline": 10.0, "direction": "lower", "tolerance": 0.5},
            ]
        )
        results = results_with({"failed_requests": 0, "qps": 95.0, "p99_ms": 12.0})
        assert gate.evaluate(baseline, results) == []

    def test_injected_qps_regression_fails_with_clear_message(self, gate):
        baseline = baseline_with(
            [{"metric": "qps", "baseline": 100.0, "direction": "higher", "tolerance": 0.25}]
        )
        results = results_with({"qps": 60.0})  # -40%, outside the -25% band
        violations = gate.evaluate(baseline, results)
        assert len(violations) == 1
        assert "qps" in violations[0]
        assert "regressed" in violations[0]
        assert "baseline 100" in violations[0]

    def test_injected_latency_regression_fails(self, gate):
        baseline = baseline_with(
            [{"metric": "p99_ms", "baseline": 10.0, "direction": "lower", "tolerance": 0.2}]
        )
        violations = gate.evaluate(baseline, results_with({"p99_ms": 20.0}))
        assert len(violations) == 1
        assert "p99_ms" in violations[0]

    def test_absolute_bounds(self, gate):
        baseline = baseline_with(
            [
                {"metric": "failed_requests", "max": 0},
                {"metric": "hit_rate", "min": 0.9},
            ]
        )
        violations = gate.evaluate(
            baseline, results_with({"failed_requests": 3, "hit_rate": 0.4})
        )
        assert len(violations) == 2
        assert any("exceeds the allowed maximum" in v for v in violations)
        assert any("below the required minimum" in v for v in violations)

    def test_missing_required_metric_is_a_violation(self, gate):
        baseline = baseline_with([{"metric": "qps", "min": 1.0}])
        violations = gate.evaluate(baseline, results_with({"other": 1}))
        assert len(violations) == 1
        assert "missing" in violations[0]

    def test_missing_optional_metric_is_skipped(self, gate):
        baseline = baseline_with([{"metric": "qps", "min": 1.0, "required": False}])
        assert gate.evaluate(baseline, results_with({"other": 1})) == []

    def test_cpu_gated_check_skipped_on_small_runners(self, gate):
        baseline = baseline_with(
            [{"metric": "scaling", "min": 1.6, "when_cpus_at_least": 4}]
        )
        failing = results_with({"scaling": 1.0})
        assert gate.evaluate(baseline, failing, cpus=1) == []
        assert len(gate.evaluate(baseline, failing, cpus=4)) == 1

    def test_cpu_count_read_from_results_extra_info(self, gate):
        baseline = baseline_with(
            [{"metric": "scaling", "min": 1.6, "when_cpus_at_least": 4}]
        )
        # available_cpus in the artifact wins over the gate machine's count.
        skipped = results_with({"scaling": 1.0, "available_cpus": 1})
        assert gate.evaluate(baseline, skipped) == []
        enforced = results_with({"scaling": 1.0, "available_cpus": 8})
        assert len(gate.evaluate(baseline, enforced)) == 1

    def test_benchmark_filter_selects_the_right_entry(self, gate):
        baseline = baseline_with(
            [{"metric": "qps", "min": 50.0}], benchmark="bench_target"
        )
        results = {
            "benchmarks": [
                {"name": "bench_other", "extra_info": {"qps": 1.0}},
                {"name": "bench_target", "extra_info": {"qps": 80.0}},
            ]
        }
        assert gate.evaluate(baseline, results) == []

    def test_filter_ignores_the_module_path_part_of_fullname(self, gate):
        # bench_http_gateway.py also hosts the sweep benchmark; its healthy
        # metrics must not mask a regression in the filtered benchmark.
        baseline = baseline_with(
            [{"metric": "failed_requests", "max": 0}], benchmark="bench_target"
        )
        results = {
            "benchmarks": [
                {
                    "name": "bench_target",
                    "fullname": "bench_target.py::bench_target",
                    "extra_info": {"failed_requests": 3},
                },
                {
                    "name": "bench_other",
                    "fullname": "bench_target.py::bench_other",
                    "extra_info": {"failed_requests": 0},
                },
            ]
        }
        violations = gate.evaluate(baseline, results)
        assert len(violations) == 1
        assert "failed_requests" in violations[0]

    def test_unknown_direction_and_non_numeric_value(self, gate):
        baseline = baseline_with(
            [
                {"metric": "qps", "baseline": 1.0, "direction": "sideways"},
                {"metric": "label", "min": 0},
            ]
        )
        violations = gate.evaluate(
            baseline, results_with({"qps": 1.0, "label": "fast"})
        )
        assert len(violations) == 2
        assert any("unknown direction" in v for v in violations)
        assert any("not numeric" in v for v in violations)

    def test_baseline_without_checks_is_rejected(self, gate):
        assert gate.evaluate({"description": "empty"}, results_with({}))


class TestCli:
    def write(self, tmp_path, name, body) -> str:
        path = tmp_path / name
        path.write_text(json.dumps(body))
        return str(path)

    def test_exit_zero_on_pass_and_one_on_regression(self, gate, tmp_path, capsys):
        baseline = self.write(
            tmp_path, "base.json",
            baseline_with([{"metric": "qps", "baseline": 100.0, "direction": "higher"}]),
        )
        healthy = self.write(tmp_path, "good.json", results_with({"qps": 90.0}))
        regressed = self.write(tmp_path, "bad.json", results_with({"qps": 10.0}))

        assert gate.main(["--baseline", baseline, "--results", healthy]) == 0
        assert "PASS" in capsys.readouterr().out
        assert gate.main(["--baseline", baseline, "--results", regressed]) == 1
        out = capsys.readouterr().out
        assert "FAIL" in out
        assert "qps" in out

    def test_multiple_pairs_and_unreadable_files(self, gate, tmp_path, capsys):
        baseline = self.write(
            tmp_path, "base.json", baseline_with([{"metric": "ok", "min": 0}])
        )
        healthy = self.write(tmp_path, "good.json", results_with({"ok": 1}))
        code = gate.main(
            [
                "--baseline", baseline, "--results", healthy,
                "--baseline", baseline, "--results", str(tmp_path / "missing.json"),
            ]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "PASS" in out
        assert "unreadable" in out

    def test_mismatched_pair_counts_are_an_error(self, gate, tmp_path):
        baseline = self.write(
            tmp_path, "base.json", baseline_with([{"metric": "ok", "min": 0}])
        )
        with pytest.raises(SystemExit):
            gate.main(["--baseline", baseline])


class TestCommittedBaselines:
    def test_baseline_files_exist_and_are_structurally_valid(self, gate):
        paths = sorted(BASELINES_DIR.glob("*.json"))
        assert paths, "no committed baseline files"
        names = {path.stem for path in paths}
        assert {"gateway", "sharded", "scoring", "lifecycle"} <= names
        for path in paths:
            body = json.loads(path.read_text())
            assert body.get("description"), path
            checks = body.get("checks")
            assert checks, path
            for check in checks:
                assert check.get("metric"), (path, check)
                assert any(
                    bound in check for bound in ("max", "min", "baseline")
                ), (path, check)
                if "baseline" in check:
                    assert check.get("direction") in ("higher", "lower"), (path, check)

    def test_gateway_baseline_passes_current_bench_shape(self, gate):
        """The committed gateway baseline accepts a healthy artifact."""
        baseline = json.loads((BASELINES_DIR / "gateway.json").read_text())
        results = results_with(
            {
                "failed_requests": 0,
                "service_cache_hit_rate": 0.93,
                "http_qps": 1000.0,
                "http_warm_p50_ms": 1.1,
                "http_overhead_p50_ms": 1.0,
                "telemetry_overhead_pct": 1.5,
                "profiler_overhead_pct": 0.5,
            },
            name="bench_http_gateway",
        )
        assert gate.evaluate(baseline, results) == []

    def test_sharded_baseline_fails_on_injected_scaling_regression(self, gate):
        baseline = json.loads((BASELINES_DIR / "sharded.json").read_text())
        healthy = {
            "failed_requests": 0,
            "failed_w1": 0, "failed_w2": 0, "failed_w4": 0,
            "shared_cache_hit_rate": 1.0,
            "qps_w1": 900.0,
            "qps_scaling_4w_vs_1w": 3.2,
            "available_cpus": 8,
        }
        assert gate.evaluate(
            baseline, results_with(healthy, name="bench_sharded_gateway_sweep")
        ) == []
        regressed = dict(healthy, qps_scaling_4w_vs_1w=1.1)
        violations = gate.evaluate(
            baseline, results_with(regressed, name="bench_sharded_gateway_sweep")
        )
        assert len(violations) == 1
        assert "qps_scaling_4w_vs_1w" in violations[0]
