"""Live-traffic shadow scoring: watch real requests, roll back on regression.

The PR-3 :class:`~repro.lifecycle.shadow.ShadowEvaluator` gates promotions on
a *static probe workload*.  That catches candidates that regress on known
queries, but a promotion can still hurt exactly the traffic the probe set
does not cover — Bao's central argument (Marcus et al., VLDB 2021) is that a
learned optimizer must bound regressions on what users actually run.

:class:`TrafficShadower` closes that gap for the serving gateway:

1. A configurable fraction of real ``/v1/plan`` traffic is **sampled** into a
   bounded ring buffer (deterministic 1-in-N striding, so tests and replayed
   traffic behave identically).  Sampling is a lock + deque append — the
   foreground request path never waits on shadow work.
2. After a promotion the shadower is **armed** with the candidate (now
   serving) and baseline (previously serving) versions.  A worker thread
   drains the ring buffer *off the request path*, replans each sampled query
   with both versions restored from the registry, and costs both chosen
   plans under the shared yardstick.
3. Per-query comparisons feed a **rolling window** that enforces the same
   two bounds the promotion gate already applied to the probe workload — a
   per-query bound (no sampled request's plan may cost more than
   ``max_regression`` times the baseline's) and a cost-weighted workload
   bound (the window's total candidate cost may not exceed
   ``max_total_regression`` times the baseline total).  Once the window
   holds ``min_samples`` and either bound breaks, the shadower triggers an
   **automatic rollback** (through the attached
   :class:`~repro.lifecycle.manager.ModelLifecycle` when available, else
   directly against the registry + service) and records a
   :class:`~repro.lifecycle.shadow.PromotionDecision` audit entry whose
   probes are the live queries that tripped the bound.

Foreground traffic keeps being answered throughout: the rollback is one
atomic ``swap_network`` on the serving service.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import asdict, dataclass
from typing import TYPE_CHECKING, Callable

from repro.lifecycle.shadow import ProbeResult, PromotionDecision
from repro.planning.adapters import BeamPlanner
from repro.planning.envelope import PlanRequest
from repro.plans.nodes import PlanNode
from repro.search.beam import BeamSearchPlanner
from repro.sql.query import Query
from repro.telemetry.events import emit_event

if TYPE_CHECKING:
    from repro.lifecycle.manager import ModelLifecycle
    from repro.lifecycle.registry import ModelRegistry
    from repro.service.service import PlannerService

#: The shared plan yardstick: ``(query, plan) -> cost``.
PlanCost = Callable[[Query, PlanNode], float]


@dataclass
class ShadowTrafficStats:
    """Counters describing the live shadow-scoring loop.

    Attributes:
        observed: Foreground requests the shadower saw.
        sampled: Requests sampled into the ring buffer (1-in-N striding).
        dropped: Sampled requests evicted because the ring buffer was full.
        replayed: Sampled queries actually replanned against both versions.
        rollbacks: Automatic rollbacks triggered by live-traffic regression.
        errors: Shadow replans or rollbacks that failed (never surfaced to
            the foreground path).
        armed: Whether a candidate is currently being monitored.
        candidate_version: Version under monitoring (None when disarmed).
        baseline_version: Version it is compared against (None when disarmed).
        rolling_regression: Cost-weighted regression over the current window
            (total candidate cost / total baseline cost; 0 when empty).
        worst_regression: Largest single-query regression in the window.
        window_samples: Live samples currently in the rolling window.
        degraded: Whether the watchtower has tightened the bounds (a firing
            SLO alert shrinks the tolerated regression).
        effective_max_regression: The per-query bound currently enforced.
        effective_max_total_regression: The window bound currently enforced.
    """

    observed: int = 0
    sampled: int = 0
    dropped: int = 0
    replayed: int = 0
    rollbacks: int = 0
    errors: int = 0
    armed: bool = False
    candidate_version: int | None = None
    baseline_version: int | None = None
    rolling_regression: float = 0.0
    worst_regression: float = 0.0
    window_samples: int = 0
    degraded: bool = False
    effective_max_regression: float = 0.0
    effective_max_total_regression: float = 0.0

    def to_json_dict(self) -> dict:
        """JSON-safe dict form (non-finite floats use the wire spellings)."""
        from repro.server.wire import jsonable

        return jsonable(asdict(self))


class TrafficShadower:
    """Samples live traffic, shadow-scores the candidate, rolls back on breach.

    Args:
        service: The serving front door rollbacks swap against.
        registry: Source of the candidate/baseline snapshots and home of the
            audit trail.
        plan_cost: Shared yardstick ``(query, plan) -> cost`` (e.g.
            ``CoutCostModel(estimator).cost``); both versions' chosen plans
            are costed with it, so the comparison never trusts either model.
        sample_fraction: Fraction of observed traffic to shadow (deterministic
            1-in-``round(1/fraction)`` striding; 1.0 shadows everything).
        buffer_capacity: Ring-buffer bound; when full, the oldest sampled
            query is dropped (and counted) rather than blocking anything.
        max_regression: Per-query bound: no sampled request's candidate plan
            may cost more than this multiple of the baseline plan (the same
            semantics as the promotion gate's per-probe bound).
        max_total_regression: Cost-weighted workload bound over the rolling
            window: total candidate cost / total baseline cost.
        min_samples: Live samples required before a verdict (a single noisy
            query must not unseat a promotion).
        window: Rolling-window size in samples.
        planner: Beam-search configuration for the shadow replans (defaults
            to paper settings; keep it small — this runs continuously).
        featurizer: Featuriser used to restore snapshot networks (defaults to
            the service's serving network's featuriser at arm time).
        lifecycle: Optional :class:`ModelLifecycle`; when attached, rollbacks
            route through it (so cache warming and its bookkeeping apply).
    """

    def __init__(
        self,
        service: "PlannerService",
        registry: "ModelRegistry",
        plan_cost: PlanCost,
        *,
        sample_fraction: float = 0.25,
        buffer_capacity: int = 64,
        max_regression: float = 2.0,
        max_total_regression: float = 1.25,
        min_samples: int = 4,
        window: int = 32,
        planner: BeamSearchPlanner | None = None,
        featurizer=None,
        lifecycle: "ModelLifecycle | None" = None,
    ):
        if not 0.0 < sample_fraction <= 1.0:
            raise ValueError("sample_fraction must be in (0, 1]")
        if buffer_capacity < 1:
            raise ValueError("buffer_capacity must be >= 1")
        if max_regression <= 0 or max_total_regression <= 0:
            raise ValueError("regression bounds must be positive")
        if min_samples < 1:
            raise ValueError("min_samples must be >= 1")
        if window < min_samples:
            raise ValueError("window must be >= min_samples")
        self.service = service
        self.registry = registry
        self.plan_cost = plan_cost
        self.sample_fraction = sample_fraction
        self.max_regression = max_regression
        self.max_total_regression = max_total_regression
        self._degraded = False
        self.degraded_factor = 0.5
        self.min_samples = min_samples
        self.window = window
        self.planner = planner or BeamSearchPlanner()
        self._featurizer = featurizer
        self.lifecycle = lifecycle

        self._stride = max(1, round(1.0 / sample_fraction))
        self._buffer: deque[Query] = deque(maxlen=buffer_capacity)
        self._window: deque[ProbeResult] = deque(maxlen=window)
        self._lock = threading.Lock()
        self._wake = threading.Event()
        self._closed = False

        self._observed = 0
        self._sampled = 0
        self._dropped = 0
        self._replayed = 0
        self._rollbacks = 0
        self._errors = 0
        self._inflight = 0  # samples popped but not yet appended/skipped

        self._armed = False
        # Bumped on every watch()/disarm(): probes replanned for a retired
        # (candidate, baseline) pair must never land in a newer pair's
        # window, and a rollback verdict must die with its generation.
        self._generation = 0
        self._candidate_version: int | None = None
        self._baseline_version: int | None = None
        self._candidate_planner: BeamPlanner | None = None
        self._baseline_planner: BeamPlanner | None = None

        self._worker = threading.Thread(
            target=self._run, name="traffic-shadower", daemon=True
        )
        self._worker.start()

    # ------------------------------------------------------------------ #
    # Foreground hook
    # ------------------------------------------------------------------ #
    def observe(self, query: Query) -> None:
        """Note one foreground request (cheap; never blocks, never raises).

        Sampling happens whether or not a candidate is armed, so the ring
        buffer already holds recent traffic the moment a promotion lands.
        """
        with self._lock:
            if self._closed:
                return
            self._observed += 1
            if (self._observed - 1) % self._stride != 0:
                return
            self._sampled += 1
            if len(self._buffer) == self._buffer.maxlen:
                self._dropped += 1
            self._buffer.append(query)
            armed = self._armed
        if armed:
            self._wake.set()

    # ------------------------------------------------------------------ #
    # Arming
    # ------------------------------------------------------------------ #
    def watch(
        self, candidate_version: int, baseline_version: int | None
    ) -> None:
        """Arm monitoring of ``candidate_version`` against ``baseline_version``.

        Call right after a promotion: the candidate is the newly serving
        version, the baseline is the version it displaced (the rollback
        target).  A ``None`` baseline (first-ever promotion) disarms — there
        is nothing to compare against or roll back to.
        """
        if baseline_version is None or baseline_version == candidate_version:
            self.disarm()
            return
        featurizer = self._resolve_featurizer()
        candidate = self.registry.restore(candidate_version, featurizer)
        baseline = self.registry.restore(baseline_version, featurizer)
        with self._lock:
            self._generation += 1
            self._candidate_version = candidate_version
            self._baseline_version = baseline_version
            self._candidate_planner = BeamPlanner(candidate, planner=self.planner)
            self._baseline_planner = BeamPlanner(baseline, planner=self.planner)
            self._window.clear()
            self._armed = True
        self._wake.set()

    def disarm(self) -> None:
        """Stop monitoring (keeps sampling so the buffer stays warm)."""
        with self._lock:
            self._generation += 1
            self._armed = False
            self._candidate_version = None
            self._baseline_version = None
            self._candidate_planner = None
            self._baseline_planner = None
            self._window.clear()

    @property
    def armed(self) -> bool:
        """Whether a candidate is currently being monitored."""
        with self._lock:
            return self._armed

    # ------------------------------------------------------------------ #
    # Watchtower protective action
    # ------------------------------------------------------------------ #
    def set_degraded(self, degraded: bool, *, factor: float | None = None) -> None:
        """Tighten (or restore) the regression bounds under degraded health.

        While degraded, both bounds shrink toward 1.0 by ``degraded_factor``
        — excess-over-parity is scaled, so a 2.0x per-query bound becomes
        1.5x at factor 0.5 and a 1.25x window bound becomes 1.125x.  The
        configured bounds are never mutated; recovery restores them exactly.
        """
        if factor is not None:
            if not 0.0 < factor <= 1.0:
                raise ValueError("factor must be in (0, 1]")
            self.degraded_factor = factor
        wake = False
        with self._lock:
            if self._degraded != bool(degraded):
                self._degraded = bool(degraded)
                wake = self._degraded and self._armed
        if wake:
            # Nudge the shadow loop so the sampled backlog is judged under
            # the tighter bounds promptly rather than on the next timeout.
            self._wake.set()

    @property
    def degraded(self) -> bool:
        with self._lock:
            return self._degraded

    def _effective_bounds_locked(self) -> tuple[float, float]:
        if not self._degraded:
            return self.max_regression, self.max_total_regression
        factor = self.degraded_factor
        return (
            1.0 + max(self.max_regression - 1.0, 0.0) * factor,
            1.0 + max(self.max_total_regression - 1.0, 0.0) * factor,
        )

    # ------------------------------------------------------------------ #
    # Shadow loop
    # ------------------------------------------------------------------ #
    def _run(self) -> None:
        while True:
            self._wake.wait(timeout=0.1)
            self._wake.clear()
            if self._closed:
                return
            while True:
                with self._lock:
                    if self._closed or not self._armed or not self._buffer:
                        break
                    query = self._buffer.popleft()
                    candidate_planner = self._candidate_planner
                    baseline_planner = self._baseline_planner
                    generation = self._generation
                    self._inflight += 1
                try:
                    probe = self._shadow_one(query, candidate_planner, baseline_planner)
                except Exception:  # noqa: BLE001 - shadow path must not die
                    with self._lock:
                        self._errors += 1
                        self._inflight -= 1
                    continue
                breach: str | None = None
                with self._lock:
                    self._inflight -= 1
                    if not self._armed or self._generation != generation:
                        # The pair this probe was replanned for is retired
                        # (re-arm or disarm raced the replan): its costs must
                        # not count toward the current pair's verdict.
                        continue
                    self._replayed += 1
                    self._window.append(probe)
                    if len(self._window) >= self.min_samples:
                        breach = self._verdict_locked()
                if breach is not None:
                    self._trigger_rollback(breach, generation)

    def _shadow_one(
        self, query: Query, candidate: BeamPlanner, baseline: BeamPlanner
    ) -> ProbeResult:
        """Replan ``query`` with both versions; cost both under the yardstick."""
        request = PlanRequest(query=query, k=1)
        candidate_cost = float(
            self.plan_cost(query, candidate.plan(request).best_plan)
        )
        baseline_cost = float(self.plan_cost(query, baseline.plan(request).best_plan))
        return ProbeResult(
            query_name=query.name,
            serving_cost=baseline_cost,
            candidate_cost=candidate_cost,
            regression=candidate_cost / max(baseline_cost, 1e-12),
        )

    def _verdict_locked(self) -> str | None:
        """The breach description, or None while both bounds hold.

        The same two bounds the promotion gate enforced on the probe
        workload, applied to what users actually ran: per-query worst case,
        and cost-weighted window total.
        """
        max_regression, max_total_regression = self._effective_bounds_locked()
        worst = max(self._window, key=lambda p: p.regression)
        if worst.regression > max_regression:
            return (
                f"sampled request {worst.query_name!r} regressed "
                f"{worst.regression:.3f}x > {max_regression:.3f}x"
            )
        total = self._window_total_locked()
        if total > max_total_regression:
            return (
                f"window total cost regressed {total:.3f}x > "
                f"{max_total_regression:.3f}x"
            )
        return None

    def _window_total_locked(self) -> float:
        baseline_total = sum(p.serving_cost for p in self._window)
        candidate_total = sum(p.candidate_cost for p in self._window)
        return candidate_total / max(baseline_total, 1e-12)

    def _trigger_rollback(self, breach: str, generation: int) -> None:
        """Roll the promotion back and record the audit entry."""
        with self._lock:
            if not self._armed or self._generation != generation:
                return
            candidate_version = self._candidate_version
            baseline_version = self._baseline_version
            probes = list(self._window)
            total = self._window_total_locked()
            max_regression, max_total_regression = self._effective_bounds_locked()
            # Disarm first: the rollback below swaps the serving version, and
            # further shadow verdicts against a retired pair are meaningless.
            self._armed = False
            self._candidate_planner = None
            self._baseline_planner = None
        decision = PromotionDecision(
            candidate_version=candidate_version,
            serving_version=baseline_version,
            promoted=False,
            reason=(
                f"live-traffic regression bound breached over "
                f"{len(probes)} sampled requests: {breach}; automatic rollback"
            ),
            probes=probes,
            max_regression=max((p.regression for p in probes), default=0.0),
            regression_threshold=max_regression,
            total_regression=total,
            total_threshold=max_total_regression,
        )
        from repro.lifecycle.snapshot import LifecycleError

        try:
            # Compare-and-rollback: the registry only applies the rollback if
            # the condemned candidate is *still* serving (checked under its
            # lock), so a concurrent ops promotion is never unseated by this
            # verdict — the stale verdict aborts with a LifecycleError.
            if self.lifecycle is not None:
                self.lifecycle.rollback(expected_serving=candidate_version)
            else:
                snapshot = self.registry.rollback(
                    expected_serving=candidate_version
                )
                network = snapshot.restore(self._resolve_featurizer())
                self.service.swap_network(network)
            self.registry.record_decision(decision)
            self.service.record_promotion_rejected()
            with self._lock:
                self._rollbacks += 1
            emit_event(
                "rollback",
                source="shadow",
                candidate_version=candidate_version,
                baseline_version=baseline_version,
                breach=breach,
            )
        except LifecycleError:
            # Stale verdict (serving moved on) — nothing to roll back.
            pass
        except Exception:  # noqa: BLE001 - shadow path must not die
            with self._lock:
                self._errors += 1
        finally:
            self.disarm()

    # ------------------------------------------------------------------ #
    # Introspection and lifecycle
    # ------------------------------------------------------------------ #
    def drain(self, timeout: float = 5.0) -> bool:
        """Block until the sampled backlog is shadow-scored (or disarmed).

        Returns True when the buffer emptied (or monitoring ended) within
        ``timeout`` — the synchronisation point tests and the gateway's
        graceful shutdown use.
        """
        deadline = time.monotonic() + timeout
        self._wake.set()
        while time.monotonic() < deadline:
            with self._lock:
                # "Drained" means the backlog is empty AND no sample is
                # mid-replan: a verdict from the last popped query must be
                # visible when this returns.
                if self._closed or not self._armed or (
                    not self._buffer and self._inflight == 0
                ):
                    return True
            self._wake.set()
            time.sleep(0.005)
        return False

    def stats(self) -> ShadowTrafficStats:
        """A snapshot of the shadow-loop counters."""
        with self._lock:
            window = list(self._window)
            effective_max, effective_total = self._effective_bounds_locked()
            return ShadowTrafficStats(
                observed=self._observed,
                sampled=self._sampled,
                dropped=self._dropped,
                replayed=self._replayed,
                rollbacks=self._rollbacks,
                errors=self._errors,
                armed=self._armed,
                candidate_version=self._candidate_version,
                baseline_version=self._baseline_version,
                rolling_regression=self._window_total_locked() if window else 0.0,
                worst_regression=max(
                    (p.regression for p in window), default=0.0
                ),
                window_samples=len(window),
                degraded=self._degraded,
                effective_max_regression=effective_max,
                effective_max_total_regression=effective_total,
            )

    def close(self) -> None:
        """Stop the shadow worker (sampled-but-unscored queries are dropped)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._armed = False
        self._wake.set()
        self._worker.join(timeout=2.0)

    def __enter__(self) -> "TrafficShadower":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _resolve_featurizer(self):
        if self._featurizer is not None:
            return self._featurizer
        network = self.service.serving_network()
        if network is None:
            raise RuntimeError(
                "traffic shadower needs a featurizer: pass one explicitly or "
                "attach it to a service with a serving network"
            )
        return network.featurizer
