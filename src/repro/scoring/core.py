"""Shared scoring machinery: chunked forward passes, stats, pin resolution.

:class:`ScoringCore` is the coalescing arithmetic lifted out of the old
``BatchedScoringBridge``: it chunks featurised examples to the batch-size
cap, runs the forward passes, and keeps the
:class:`~repro.scoring.protocol.ScoringBridgeStats` counters — recording the
size of every chunk *actually run* (not the pre-chunk request-group size).
Every backend composes one, so the counters mean the same thing regardless
of where the forward pass executes.

:class:`NetworkResolver` is the in-process half of version pinning: live
:class:`ValueNetwork` pins score directly, integer pins restore (and cache)
snapshots from a followed :class:`~repro.lifecycle.registry.ModelRegistry`,
and ``None`` falls through to the provider or the registry's serving version.
"""

from __future__ import annotations

import threading
from dataclasses import replace
from typing import TYPE_CHECKING, Callable, Sequence

import numpy as np

from repro.featurization.featurizer import FeaturizedExample
from repro.model.value_network import ValueNetwork
from repro.scoring.protocol import ScoringBackendError, ScoringBridgeStats, VersionPin

if TYPE_CHECKING:
    from repro.lifecycle.registry import ModelRegistry


class ScoringCore:
    """Chunked ``predict_examples`` plus thread-safe coalescing counters.

    With ``adaptive=True`` the fixed forward-pass cap becomes a controller:
    the cap starts small (latency-friendly), doubles while the observed
    queue depth's EWMA sits above ``grow_at`` (amortise fixed per-pass cost
    under load), and halves back toward ``min_batch_size`` when the queue
    drains below ``shrink_at``.  Backends report their queue depth through
    :meth:`observe_load` on each submit and chunk by :attr:`batch_cap`.

    Args:
        max_batch_size: Hard upper bound on examples per forward pass;
            larger inputs are chunked.  The fixed cap when not adaptive.
        adaptive: Enable the load-adaptive batch-size controller.
        min_batch_size: Adaptive floor (default ``min(32, max_batch_size)``).
        load_ewma_alpha: Smoothing factor for the queue-depth EWMA.
        grow_at: EWMA depth at or above which the cap doubles.
        shrink_at: EWMA depth at or below which the cap halves.
    """

    def __init__(
        self,
        max_batch_size: int = 512,
        *,
        adaptive: bool = False,
        min_batch_size: int | None = None,
        load_ewma_alpha: float = 0.4,
        grow_at: float = 2.0,
        shrink_at: float = 0.5,
    ):
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        self.max_batch_size = max_batch_size
        self.adaptive = adaptive
        self.min_batch_size = max(1, min(min_batch_size or min(32, max_batch_size),
                                         max_batch_size))
        self._load_alpha = load_ewma_alpha
        self._grow_at = grow_at
        self._shrink_at = shrink_at
        self._load_ewma = 0.0
        self._cap = self.min_batch_size if adaptive else max_batch_size
        self._lock = threading.Lock()
        self._stats = ScoringBridgeStats()
        if adaptive:
            self._stats.adaptive_batch_cap = self._cap

    @property
    def batch_cap(self) -> int:
        """The current forward-pass cap (== ``max_batch_size`` unless
        adaptive)."""
        with self._lock:
            return self._cap

    def observe_load(self, queue_depth: int) -> int:
        """Fold one queue-depth observation into the adaptive controller.

        Returns the cap to use for the batch being dispatched.  A no-op
        (returning the fixed cap) when the controller is off.
        """
        with self._lock:
            if not self.adaptive:
                return self._cap
            self._load_ewma += self._load_alpha * (queue_depth - self._load_ewma)
            if self._load_ewma >= self._grow_at and self._cap < self.max_batch_size:
                self._cap = min(self._cap * 2, self.max_batch_size)
            elif self._load_ewma <= self._shrink_at and self._cap > self.min_batch_size:
                self._cap = max(self._cap // 2, self.min_batch_size)
            self._stats.adaptive_batch_cap = self._cap
            return self._cap

    def predict_examples(
        self,
        network: ValueNetwork,
        examples: Sequence[FeaturizedExample],
        requests: int = 1,
    ) -> np.ndarray:
        """Run the forward passes for ``examples`` and record the counters.

        Callers serialise access to ``network`` themselves (its layers stash
        per-call activations); the counters here have their own lock.

        Args:
            network: The network to score with.
            examples: Pre-featurised (query, plan) pairs.
            requests: How many submit requests this input coalesces.
        """
        cap = self.batch_cap
        outputs: list[np.ndarray] = []
        chunk_sizes: list[int] = []
        for start in range(0, len(examples), cap):
            chunk = examples[start : start + cap]
            outputs.append(network.predict_examples(list(chunk)))
            chunk_sizes.append(len(chunk))
        self.record(requests, len(examples), chunk_sizes)
        return np.concatenate(outputs) if outputs else np.zeros(0, dtype=np.float64)

    def record(
        self, requests: int, examples: int, chunk_sizes: Sequence[int]
    ) -> None:
        """Fold one served input into the counters (used directly by the
        process backend, whose chunks run in the scorer process)."""
        with self._lock:
            stats = self._stats
            stats.requests += requests
            stats.examples += examples
            stats.forward_batches += len(chunk_sizes)
            stats.coalesced_batches += len(chunk_sizes) if requests > 1 else 0
            if chunk_sizes:
                stats.max_batch_examples = max(
                    stats.max_batch_examples, max(chunk_sizes)
                )

    def count_published(self) -> None:
        """Count one model version published to scorer processes."""
        with self._lock:
            self._stats.versions_published += 1

    def count_crash(self) -> None:
        """Count one scorer process lost mid-service."""
        with self._lock:
            self._stats.worker_crashes += 1

    def count_respawn(self) -> None:
        """Count one crashed scorer process replaced with a fresh one."""
        with self._lock:
            self._stats.workers_respawned += 1

    def count_shm_batch(self) -> None:
        """Count one payload shipped zero-copy through a shared-memory slot."""
        with self._lock:
            self._stats.shm_batches += 1

    def count_shm_fallback(self) -> None:
        """Count one shm-eligible payload that took the queue path instead."""
        with self._lock:
            self._stats.shm_fallbacks += 1

    def count_reclaimed(self, slots: int = 1) -> None:
        """Count ring-slot leases freed after a scorer process died."""
        with self._lock:
            self._stats.leases_reclaimed += slots

    def count_scale(self, up: bool) -> None:
        """Count one autoscaler decision (scale-up or scale-down)."""
        with self._lock:
            if up:
                self._stats.scale_ups += 1
            else:
                self._stats.scale_downs += 1

    def snapshot(self) -> ScoringBridgeStats:
        """A consistent copy of the counters.

        ``dataclasses.replace`` copies every field by construction, so fields
        added to :class:`ScoringBridgeStats` can never silently read as their
        defaults from snapshots (the old hand-copied version could drift).
        """
        with self._lock:
            return replace(self._stats)


class NetworkResolver:
    """Resolve version pins to live networks for in-process scoring.

    Args:
        network_provider: Zero-argument callable returning the current
            network; the fallback for unpinned requests when no registry is
            followed.
        registry: Optional registry to resolve integer pins (and, when
            following, unpinned requests) against.
        featurizer: Featuriser used to restore registry snapshots.  When
            omitted, restored networks fall back to a signature-derived
            stand-in — fine for scoring shipped examples, but featurisation
            of raw plans then needs the submitting side's featuriser.
    """

    def __init__(
        self,
        network_provider: Callable[[], "ValueNetwork | None"] | None = None,
        registry: "ModelRegistry | None" = None,
        featurizer=None,
    ):
        self.network_provider = network_provider
        self.registry = registry
        self.featurizer = featurizer
        self._restored: dict[int, ValueNetwork] = {}
        self._lock = threading.Lock()

    def follow(self, registry: "ModelRegistry") -> None:
        """Resolve pins against ``registry`` from now on."""
        with self._lock:
            self.registry = registry
            self._restored.clear()

    def resolve(self, version: VersionPin) -> ValueNetwork:
        """The network ``version`` pins (raises ``ScoringBackendError``)."""
        if isinstance(version, ValueNetwork):
            return version
        if version is None:
            if self.registry is not None and self.registry.serving_version is not None:
                return self._restore(self.registry.serving_version)
            if self.network_provider is not None:
                network = self.network_provider()
                if network is not None:
                    return network
            raise ScoringBackendError(
                "no model to score with: backend has no network provider and "
                "follows no registry with a serving version"
            )
        if self.registry is None:
            raise ScoringBackendError(
                f"cannot resolve registry version {version!r}: backend is not "
                "following a ModelRegistry (call follow() first)"
            )
        return self._restore(int(version))

    def _restore(self, version: int) -> ValueNetwork:
        from repro.lifecycle.snapshot import LifecycleError

        with self._lock:
            cached = self._restored.get(version)
            if cached is not None:
                return cached
        try:
            snapshot = self.registry.get(version)
            if self.featurizer is not None:
                network = snapshot.restore(self.featurizer)
            else:
                network = ValueNetwork.from_state_dict(snapshot.state)
        except LifecycleError as error:
            raise ScoringBackendError(str(error)) from error
        with self._lock:
            # Keep only current restorations: pins reference the serving
            # chain, so a tiny cache bounded by insertion is enough.
            if len(self._restored) > 8:
                self._restored.clear()
            self._restored[version] = network
        return network
