"""Tests for the SQL layer: predicates, queries, join graphs, the mini parser."""

import numpy as np
import pytest

from repro.sql.expr import ComparisonOp, FilterPredicate, JoinPredicate, evaluate_filter
from repro.sql.parser import format_query, parse_query
from repro.sql.query import Query, QuerySet, TableRef

from tests.conftest import make_five_table_query, make_three_table_query


class TestFilterPredicate:
    @pytest.mark.parametrize(
        "op, value, expected",
        [
            (ComparisonOp.EQ, 3, [False, False, False, True, False]),
            (ComparisonOp.NE, 3, [True, True, True, False, True]),
            (ComparisonOp.LT, 2, [True, True, False, False, False]),
            (ComparisonOp.LE, 2, [True, True, True, False, False]),
            (ComparisonOp.GT, 2, [False, False, False, True, True]),
            (ComparisonOp.GE, 2, [False, False, True, True, True]),
            (ComparisonOp.IN, (0, 4), [True, False, False, False, True]),
            (ComparisonOp.BETWEEN, (1, 3), [False, True, True, True, False]),
        ],
    )
    def test_evaluate_filter(self, op, value, expected):
        column = np.array([0, 1, 2, 3, 4])
        predicate = FilterPredicate("t", "c", op, value)
        assert evaluate_filter(predicate, column).tolist() == expected

    def test_in_value_normalised_to_tuple(self):
        predicate = FilterPredicate("t", "c", ComparisonOp.IN, [1, 2])
        assert predicate.value == (1, 2)

    def test_describe_mentions_alias_and_column(self):
        predicate = FilterPredicate("t", "year", ComparisonOp.GT, 2000)
        assert "t.year" in predicate.describe()
        assert ">" in predicate.describe()


class TestJoinPredicate:
    def test_aliases_and_column_for(self):
        join = JoinPredicate("a", "x", "b", "y")
        assert join.aliases() == frozenset({"a", "b"})
        assert join.column_for("a") == "x"
        assert join.column_for("b") == "y"

    def test_column_for_unknown_alias_raises(self):
        with pytest.raises(KeyError):
            JoinPredicate("a", "x", "b", "y").column_for("c")

    def test_normalized_orders_sides(self):
        join = JoinPredicate("z", "c1", "a", "c2")
        normalized = join.normalized()
        assert normalized.left_alias == "a"
        assert normalized.normalized() == normalized


class TestQuery:
    def test_basic_properties(self, three_table_query):
        assert three_table_query.num_tables == 3
        assert three_table_query.num_joins == 2
        assert set(three_table_query.aliases) == {"t", "mc", "cn"}
        assert three_table_query.alias_to_table["mc"] == "movie_companies"

    def test_duplicate_alias_rejected(self):
        with pytest.raises(ValueError):
            Query("bad", (TableRef("title", "t"), TableRef("name", "t")))

    def test_join_referencing_unknown_alias_rejected(self):
        with pytest.raises(ValueError):
            Query(
                "bad",
                (TableRef("title", "t"),),
                joins=(JoinPredicate("t", "id", "x", "movie_id"),),
            )

    def test_filter_referencing_unknown_alias_rejected(self):
        with pytest.raises(ValueError):
            Query(
                "bad",
                (TableRef("title", "t"),),
                filters=(FilterPredicate("x", "id", ComparisonOp.EQ, 1),),
            )

    def test_join_graph_connected(self, five_table_query):
        graph = five_table_query.join_graph
        assert set(graph.nodes) == set(five_table_query.aliases)
        assert five_table_query.is_connected()

    def test_disconnected_query_detected(self):
        query = Query(
            "disc",
            (TableRef("title", "t"), TableRef("name", "n")),
        )
        assert not query.is_connected()

    def test_joins_between_and_within(self, five_table_query):
        between = five_table_query.joins_between({"t"}, {"mc"})
        assert len(between) == 1
        assert between[0].aliases() == frozenset({"t", "mc"})
        within = five_table_query.joins_within({"t", "mc", "cn"})
        assert len(within) == 2
        assert five_table_query.joins_between({"cn"}, {"it"}) == ()

    def test_connected_subset(self, five_table_query):
        assert five_table_query.connected_subset({"t", "mc", "cn"})
        assert not five_table_query.connected_subset({"cn", "it"})

    def test_filters_for(self, five_table_query):
        assert len(five_table_query.filters_for("t")) == 1
        assert five_table_query.filters_for("mi") == ()

    def test_restricted_to(self, five_table_query):
        restricted = five_table_query.restricted_to({"t", "mc", "cn"})
        assert set(restricted.aliases) == {"t", "mc", "cn"}
        assert restricted.num_joins == 2
        assert all(f.alias in {"t", "mc", "cn"} for f in restricted.filters)
        assert restricted.name != five_table_query.name

    def test_restricted_to_is_deterministic_name(self, five_table_query):
        a = five_table_query.restricted_to({"mc", "t"})
        b = five_table_query.restricted_to({"t", "mc"})
        assert a.name == b.name


class TestQuerySet:
    def test_iteration_len_and_lookup(self):
        queries = [make_three_table_query("a"), make_five_table_query("b")]
        query_set = QuerySet("train", queries)
        assert len(query_set) == 2
        assert [q.name for q in query_set] == ["a", "b"]
        assert query_set.by_name("b").name == "b"
        assert query_set.names() == ["a", "b"]
        assert query_set[0].name == "a"

    def test_by_name_missing_raises(self):
        with pytest.raises(KeyError):
            QuerySet("empty", []).by_name("nope")


class TestParser:
    def test_round_trip_three_table(self, three_table_query):
        sql = format_query(three_table_query)
        parsed = parse_query(sql, name=three_table_query.name)
        assert set(parsed.aliases) == set(three_table_query.aliases)
        assert len(parsed.joins) == len(three_table_query.joins)
        assert len(parsed.filters) == len(three_table_query.filters)

    def test_round_trip_with_between_and_in(self, five_table_query):
        sql = format_query(five_table_query)
        parsed = parse_query(sql, name="five")
        ops = {f.op for f in parsed.filters}
        assert ComparisonOp.BETWEEN in ops
        assert ComparisonOp.IN in ops

    def test_format_contains_clauses(self, three_table_query):
        sql = format_query(three_table_query)
        assert sql.startswith("SELECT COUNT(*)")
        assert "FROM" in sql and "WHERE" in sql and sql.endswith(";")

    def test_parse_single_table_no_where(self):
        parsed = parse_query("SELECT COUNT(*) FROM title AS t;")
        assert parsed.aliases == ("t",)
        assert parsed.joins == () and parsed.filters == ()

    def test_parse_missing_from_raises(self):
        with pytest.raises(ValueError):
            parse_query("SELECT 1;")

    def test_parse_unsupported_condition_raises(self):
        with pytest.raises(ValueError):
            parse_query("SELECT COUNT(*) FROM t WHERE t.a LIKE 'x';")
