"""Integration tests: Balsa, Neo-impl, Bao, diversified experiences on a tiny job_benchmark."""

import math

import pytest

from repro.agent.balsa import BalsaAgent
from repro.agent.config import BalsaConfig
from repro.baselines.bao import BaoAgent
from repro.baselines.neo import NeoAgent, neo_config
from repro.baselines.random_agent import RandomPlanAgent
from repro.diversity.merge import (
    count_unique_plans,
    merge_agent_experiences,
    retrain_from_experience,
)
from repro.model.value_network import ValueNetworkConfig
from repro.planning.envelope import PlanRequest
from repro.plans.validation import validate_plan
from repro.workloads.benchmark import make_job_benchmark


def tiny_config(seed=0, iterations=2, **overrides):
    config = BalsaConfig(
        seed=seed,
        num_iterations=iterations,
        beam_size=3,
        top_k=2,
        enumerate_scan_operators=False,
        sim_max_points_per_query=200,
        sim_max_epochs=3,
        update_epochs=2,
        retrain_epochs=3,
        eval_interval=2,
        num_execution_nodes=2,
        network=ValueNetworkConfig(
            query_hidden=16, query_embedding=8, tree_channels=(16, 8), head_hidden=8, seed=seed
        ),
    )
    if overrides:
        from dataclasses import replace

        config = replace(config, **overrides)
    return config


@pytest.fixture(scope="module")
def job_benchmark():
    return make_job_benchmark(
        fact_rows=300, num_queries=10, num_templates=4, test_size=3,
        seed=0, size_range=(3, 5),
    )


@pytest.fixture(scope="module")
def expert_runtimes(job_benchmark):
    return job_benchmark.expert_runtimes()


@pytest.fixture(scope="module")
def trained_agent(job_benchmark, expert_runtimes):
    agent = BalsaAgent(job_benchmark.environment(), tiny_config(), expert_runtimes=expert_runtimes)
    agent.train()
    return agent


class TestBalsaAgent:
    def test_history_recorded(self, trained_agent):
        history = trained_agent.history
        assert len(history.iterations) == 2
        assert history.sim_dataset_size > 0
        for metrics in history.iterations:
            assert metrics.train_runtime > 0
            assert metrics.unique_plans_seen > 0
            assert metrics.normalized_runtime is not None
            assert metrics.composition is not None
        assert history.iterations[1].elapsed_seconds > history.iterations[0].elapsed_seconds

    def test_experience_collected_per_query(self, trained_agent, job_benchmark):
        assert len(trained_agent.experience) == 2 * len(job_benchmark.train_queries)

    def test_timeout_enabled_after_iteration_zero(self, trained_agent):
        assert trained_agent.history.iterations[0].timeout_budget is None
        assert trained_agent.history.iterations[1].timeout_budget is not None

    def test_plan_query_returns_valid_plan(self, trained_agent, job_benchmark):
        query = job_benchmark.test_queries[0]
        plan = trained_agent.plan_query(query)
        validate_plan(query, plan)

    def test_evaluate_returns_all_queries(self, trained_agent, job_benchmark):
        results = trained_agent.evaluate(job_benchmark.test_queries)
        assert set(results) == set(job_benchmark.test_queries.names())
        assert all(latency > 0 for _, latency in results.values())

    def test_workload_runtime_finite_and_not_disastrous(
        self, trained_agent, job_benchmark, expert_runtimes
    ):
        runtime = trained_agent.workload_runtime(job_benchmark.train_queries)
        expert_total = sum(expert_runtimes[q.name] for q in job_benchmark.train_queries)
        assert math.isfinite(runtime)
        # After sim bootstrapping + two iterations the agent must be far from
        # the 45-79x disaster range of random agents.
        assert runtime < 20 * expert_total

    def test_test_evaluation_recorded_on_eval_iterations(self, trained_agent):
        assert trained_agent.history.iterations[0].test_runtime is not None

    def test_no_simulation_variant_runs(self, job_benchmark, expert_runtimes):
        agent = BalsaAgent(
            job_benchmark.environment(),
            tiny_config(iterations=1, use_simulation=False, simulator="none"),
            expert_runtimes=expert_runtimes,
        )
        agent.train()
        assert agent.history.sim_dataset_size == 0
        assert len(agent.history.iterations) == 1

    def test_expert_simulator_variant_runs(self, job_benchmark, expert_runtimes):
        agent = BalsaAgent(
            job_benchmark.environment(),
            tiny_config(iterations=1, simulator="expert"),
            expert_runtimes=expert_runtimes,
        )
        agent.train()
        assert agent.history.sim_dataset_size > 0


class TestNeoAgent:
    def test_neo_config_switches(self):
        config = neo_config(tiny_config())
        assert not config.use_simulation
        assert not config.use_timeouts
        assert not config.on_policy
        assert config.exploration == "none"

    def test_neo_bootstraps_from_demonstrations(self, job_benchmark, expert_runtimes):
        agent = NeoAgent(
            job_benchmark.environment(),
            job_benchmark.expert("postgres"),
            tiny_config(iterations=1),
            expert_runtimes=expert_runtimes,
        )
        agent.train()
        # One demonstration per training query plus one execution per iteration.
        assert len(agent.experience) == 2 * len(job_benchmark.train_queries)
        assert agent.history.sim_dataset_size > 0
        assert agent.history.iterations[0].timeout_budget is None


class TestBaoAgent:
    def test_bao_improves_or_matches_unsteered_expert(self, job_benchmark):
        agent = BaoAgent(job_benchmark.environment(), job_benchmark.expert("postgres"), seed=0)
        agent.train(num_iterations=2)
        assert len(agent.history.train_runtimes) == 2
        steered = agent.workload_runtime(job_benchmark.train_queries)
        unsteered = job_benchmark.expert_workload_runtime(job_benchmark.train_queries)
        assert steered <= unsteered * 1.5

    def test_bao_arm_choice_in_range(self, job_benchmark):
        agent = BaoAgent(job_benchmark.environment(), job_benchmark.expert("postgres"), seed=0)
        agent.bootstrap()
        arm = agent.choose_arm(job_benchmark.train_queries[0], explore=False)
        assert 0 <= arm < len(agent.hint_sets)

    def test_bao_plans_are_valid(self, job_benchmark):
        agent = BaoAgent(job_benchmark.environment(), job_benchmark.expert("postgres"), seed=0)
        agent.bootstrap()
        query = job_benchmark.test_queries[0]
        result = agent.plan(PlanRequest(query=query))
        plan, arm = result.best_plan, result.extra["arm_index"]
        validate_plan(query, plan)
        hint = agent.hint_sets[arm]
        assert all(hint.allows_join(j.operator) for j in plan.iter_joins())


class TestRandomAgent:
    def test_random_agent_much_slower_than_expert(self, job_benchmark, expert_runtimes):
        agent = RandomPlanAgent(job_benchmark.environment(), seed=0)
        expert_total = sum(expert_runtimes[q.name] for q in job_benchmark.train_queries)
        cap = 50 * expert_total
        runtime = agent.workload_runtime(job_benchmark.train_queries, timeout=cap)
        assert runtime > expert_total

    def test_random_agent_deterministic(self, job_benchmark):
        a = RandomPlanAgent(job_benchmark.environment(), seed=3)
        b = RandomPlanAgent(job_benchmark.environment(), seed=3)
        query = job_benchmark.train_queries[0]
        assert a.plan_query(query).fingerprint() == b.plan_query(query).fingerprint()


class TestDiversifiedExperiences:
    def test_merge_and_retrain(self, job_benchmark, expert_runtimes, trained_agent):
        second = BalsaAgent(
            job_benchmark.environment(),
            tiny_config(seed=1),
            expert_runtimes=expert_runtimes,
            agent_id=1,
        )
        second.train()
        merged = merge_agent_experiences([trained_agent, second])
        assert len(merged) == len(trained_agent.experience) + len(second.experience)
        unique_single = count_unique_plans([trained_agent.experience])
        unique_merged = count_unique_plans([trained_agent.experience, second.experience])
        assert unique_merged >= unique_single

        retrained = retrain_from_experience(
            job_benchmark.environment(), merged, tiny_config(seed=7), expert_runtimes
        )
        query = job_benchmark.test_queries[0]
        plan = retrained.plan_query(query)
        validate_plan(query, plan)

    def test_merge_requires_agents(self):
        with pytest.raises(ValueError):
            merge_agent_experiences([])
