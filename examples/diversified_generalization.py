"""Diversified experiences and out-of-distribution generalisation (paper §6, §8.5).

Trains several independently seeded Balsa agents on the JOB-like workload,
merges their experience buffers, retrains a fresh "Balsa-Nx" agent offline
(no additional query executions) and evaluates everything on the Ext-JOB-like
queries, whose join templates never appear during training.

Run with::

    python examples/diversified_generalization.py
"""

from __future__ import annotations

from repro import (
    BalsaAgent,
    BalsaConfig,
    make_job_benchmark,
    merge_agent_experiences,
    retrain_from_experience,
)
from repro.diversity.merge import count_unique_plans
from repro.evaluation.reporting import format_table


def main() -> None:
    num_agents = 3
    benchmark = make_job_benchmark(
        fact_rows=700, num_queries=28, num_templates=8, test_size=6,
        size_range=(4, 7), seed=2, include_ext_job=True,
    )
    ext_job = benchmark.extra_queries["ext_job"]
    expert_runtimes = benchmark.expert_runtimes(
        list(benchmark.all_queries()) + list(ext_job)
    )
    expert_ext = sum(expert_runtimes[q.name] for q in ext_job)

    # Train N independently seeded agents on the same training workload.
    agents = []
    for seed in range(num_agents):
        config = BalsaConfig.small(seed=seed, num_iterations=10)
        agent = BalsaAgent(
            benchmark.environment(), config, expert_runtimes=expert_runtimes, agent_id=seed
        )
        agent.train()
        agents.append(agent)
        print(f"agent {seed}: unique plans seen = {agent.experience.num_unique_plans()}")

    # Table 1: unique plans grow almost linearly with the number of agents.
    rows = []
    for count in range(1, num_agents + 1):
        unique = count_unique_plans(a.experience for a in agents[:count])
        rows.append([count, unique])
    print(format_table(["agents merged", "unique plans"], rows, title="\nTable 1 analogue"))

    # Retrain a fresh agent on the merged experience (no executions).
    merged = merge_agent_experiences(agents)
    balsa_nx = retrain_from_experience(
        benchmark.environment(), merged, BalsaConfig.small(seed=100), expert_runtimes
    )

    def ext_normalized(agent: BalsaAgent) -> float:
        latencies = agent.evaluate(ext_job)
        return sum(latency for _, latency in latencies.values()) / expert_ext

    print(format_table(
        ["agent", "Ext-JOB normalized runtime (lower is better)"],
        [
            ["balsa (single agent)", ext_normalized(agents[0])],
            [f"balsa-{num_agents}x (merged, retrained)", ext_normalized(balsa_nx)],
        ],
        title="\nFigure 17 analogue: out-of-distribution generalisation",
    ))


if __name__ == "__main__":
    main()
