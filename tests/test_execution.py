"""Tests for the execution engine: join kernels, operators, timeouts, caching."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.execution.cluster import ExecutionCluster
from repro.execution.engine import ExecutionEngine
from repro.execution.latency import LatencyModel
from repro.execution.plan_cache import PlanCache
from repro.execution.result import estimate_match_count, match_keys
from repro.optimizer.quickpick import random_plan
from repro.plans.builders import join, left_deep_plan, scan
from repro.plans.nodes import JoinOperator
from repro.plans.validation import InvalidPlanError


class TestMatchKeys:
    def test_simple_match(self):
        build = np.array([1, 2, 2, 3])
        probe = np.array([2, 4, 1])
        build_idx, probe_idx = match_keys(build, probe)
        pairs = set(zip(build_idx.tolist(), probe_idx.tolist()))
        assert pairs == {(1, 0), (2, 0), (0, 2)}

    def test_empty_inputs(self):
        empty = np.array([], dtype=np.int64)
        build_idx, probe_idx = match_keys(empty, np.array([1, 2]))
        assert build_idx.size == 0 and probe_idx.size == 0

    @settings(max_examples=40, deadline=None)
    @given(
        build=st.lists(st.integers(0, 8), min_size=0, max_size=40),
        probe=st.lists(st.integers(0, 10), min_size=0, max_size=40),
    )
    def test_match_count_property(self, build, probe):
        build = np.array(build, dtype=np.int64)
        probe = np.array(probe, dtype=np.int64)
        build_idx, probe_idx = match_keys(build, probe)
        brute = sum(int((build == p).sum()) for p in probe)
        assert build_idx.size == brute == probe_idx.size
        assert estimate_match_count(build, probe) == brute
        if build_idx.size:
            assert np.all(build[build_idx] == probe[probe_idx])


class TestEngineCorrectness:
    def test_join_order_invariance(self, engine, five_table_query):
        q = five_table_query
        orders = [
            ["t", "mc", "cn", "mi", "it"],
            ["cn", "mc", "t", "mi", "it"],
            ["it", "mi", "t", "mc", "cn"],
        ]
        cardinalities = set()
        for order in orders:
            plan = left_deep_plan(q, order)
            result = engine.execute(q, plan)
            assert not result.timed_out
            cardinalities.add(result.output_rows)
        assert len(cardinalities) == 1

    def test_operator_invariance_of_output(self, engine, three_table_query):
        q = three_table_query
        outputs = set()
        for operator in JoinOperator:
            plan = join(join(scan(q, "t"), scan(q, "mc"), operator), scan(q, "cn"), operator)
            outputs.add(engine.execute(q, plan).output_rows)
        assert len(outputs) == 1

    def test_filters_reduce_cardinality(self, engine, three_table_query):
        q = three_table_query
        unfiltered = q.restricted_to(set(q.aliases))
        unfiltered = type(q)(
            name="nofilters", tables=q.tables, joins=q.joins, filters=()
        )
        plan_f = left_deep_plan(q, ["t", "mc", "cn"])
        plan_u = left_deep_plan(unfiltered, ["t", "mc", "cn"])
        filtered_rows = engine.execute(q, plan_f).output_rows
        unfiltered_rows = engine.execute(unfiltered, plan_u).output_rows
        assert filtered_rows <= unfiltered_rows

    def test_node_cardinalities_recorded(self, engine, three_table_query):
        q = three_table_query
        result = engine.execute(q, left_deep_plan(q, ["t", "mc", "cn"]))
        assert frozenset({"t"}) in result.node_cardinalities
        assert frozenset({"t", "mc", "cn"}) in result.node_cardinalities
        assert result.node_cardinalities[frozenset(q.aliases)] == result.output_rows

    def test_invalid_plan_rejected(self, engine, five_table_query, three_table_query):
        plan = left_deep_plan(three_table_query, ["t", "mc", "cn"])
        with pytest.raises(InvalidPlanError):
            engine.execute(five_table_query, plan)

    def test_true_cardinality_matches_execution(self, engine, three_table_query):
        q = three_table_query
        plan = left_deep_plan(q, ["cn", "mc", "t"])
        executed = engine.execute(q, plan).output_rows
        assert engine.true_cardinality(q) == executed

    def test_true_cardinality_subset(self, engine, three_table_query):
        q = three_table_query
        single = engine.true_cardinality(q, frozenset({"t"}))
        pair = engine.true_cardinality(q, frozenset({"t", "mc"}))
        assert single > 0
        assert pair >= 0


class TestEngineLatency:
    def test_latency_positive_and_work_consistent(self, engine, three_table_query):
        q = three_table_query
        result = engine.execute(q, left_deep_plan(q, ["t", "mc", "cn"]))
        assert result.latency > 0
        assert result.latency == pytest.approx(
            engine.latency_model.to_latency(result.work)
        )

    def test_bad_plans_are_slower(self, engine, five_table_query):
        q = five_table_query
        good = left_deep_plan(q, ["cn", "mc", "t", "mi", "it"], JoinOperator.HASH_JOIN)
        # Pure non-indexed nested loops over the large fact tables are a
        # "disastrous" choice.
        bad = left_deep_plan(q, ["mi", "t", "mc", "cn", "it"], JoinOperator.NESTED_LOOP)
        good_latency = engine.execute(q, good).latency
        bad_latency = engine.execute(q, bad, timeout=3600).latency
        assert bad_latency > 2 * good_latency

    def test_timeout_cuts_execution(self, engine, five_table_query):
        q = five_table_query
        bad = left_deep_plan(q, ["mi", "t", "mc", "cn", "it"], JoinOperator.NESTED_LOOP)
        budget = 1e-4
        result = engine.execute(q, bad, timeout=budget)
        assert result.timed_out
        assert result.latency == budget

    def test_timeout_not_triggered_for_fast_plan(self, engine, three_table_query):
        q = three_table_query
        plan = left_deep_plan(q, ["cn", "mc", "t"])
        result = engine.execute(q, plan, timeout=3600.0)
        assert not result.timed_out

    def test_noise_is_deterministic_per_seed(self, imdb_database, three_table_query):
        q = three_table_query
        plan = left_deep_plan(q, ["t", "mc", "cn"])
        model = LatencyModel(noise_std=0.2)
        a = ExecutionEngine(imdb_database, latency_model=model, noise_seed=1)
        b = ExecutionEngine(imdb_database, latency_model=model, noise_seed=1)
        assert a.execute(q, plan).latency == pytest.approx(b.execute(q, plan).latency)

    def test_execution_counters(self, imdb_database, three_table_query):
        engine = ExecutionEngine(imdb_database)
        q = three_table_query
        engine.execute(q, left_deep_plan(q, ["t", "mc", "cn"]))
        assert engine.num_executions == 1
        assert engine.total_simulated_seconds > 0


class TestLatencyModel:
    def test_round_trip(self):
        model = LatencyModel()
        assert model.to_work(model.to_latency(1234.0)) == pytest.approx(1234.0)

    def test_noise_disabled_by_default(self):
        model = LatencyModel()
        assert model.apply_noise(1.0, 42) == 1.0

    def test_noise_applied_when_enabled(self):
        model = LatencyModel(noise_std=0.5)
        assert model.apply_noise(1.0, 42) != 1.0


class TestPlanCache:
    def _result(self, timed_out=False, latency=1.0):
        from repro.execution.engine import ExecutionResult

        return ExecutionResult(
            query_name="q",
            plan_fingerprint="p",
            latency=latency,
            timed_out=timed_out,
            output_rows=10,
            work=100.0,
        )

    def test_hit_after_store(self):
        cache = PlanCache()
        cache.store("q", "p", self._result(), timeout=None)
        assert cache.lookup("q", "p", timeout=None) is not None
        assert cache.hits == 1

    def test_miss_on_unknown(self):
        cache = PlanCache()
        assert cache.lookup("q", "p", None) is None
        assert cache.misses == 1

    def test_timed_out_entry_not_reused_for_larger_budget(self):
        cache = PlanCache()
        cache.store("q", "p", self._result(timed_out=True, latency=2.0), timeout=2.0)
        assert cache.lookup("q", "p", timeout=10.0) is None
        assert cache.lookup("q", "p", timeout=1.0) is not None

    def test_completed_result_not_overwritten_by_timeout(self):
        cache = PlanCache()
        cache.store("q", "p", self._result(timed_out=False), timeout=None)
        cache.store("q", "p", self._result(timed_out=True), timeout=1.0)
        assert not cache.lookup("q", "p", None).timed_out

    def test_clear(self):
        cache = PlanCache()
        cache.store("q", "p", self._result(), None)
        cache.clear()
        assert len(cache) == 0


class TestExecutionCluster:
    def test_single_node_serialises_executions(self):
        cluster = ExecutionCluster(num_nodes=1)
        timing = cluster.iteration_elapsed([0.0, 0.0, 0.0], [1.0, 1.0, 1.0])
        assert timing.elapsed == pytest.approx(3.0)

    def test_many_nodes_parallelise(self):
        serial = ExecutionCluster(num_nodes=1).iteration_elapsed([0.0] * 4, [1.0] * 4)
        parallel = ExecutionCluster(num_nodes=4).iteration_elapsed([0.0] * 4, [1.0] * 4)
        assert parallel.elapsed < serial.elapsed

    def test_planning_pipelined_with_execution(self):
        cluster = ExecutionCluster(num_nodes=2)
        timing = cluster.iteration_elapsed([0.5, 0.5], [2.0, 2.0])
        # Plan 1 done at 0.5, runs until 2.5; plan 2 done at 1.0, runs until 3.0.
        assert timing.elapsed == pytest.approx(3.0)
        assert timing.planning_time == pytest.approx(1.0)

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            ExecutionCluster(1).iteration_elapsed([0.1], [1.0, 2.0])

    def test_invalid_node_count(self):
        with pytest.raises(ValueError):
            ExecutionCluster(0)


class TestRandomPlansOnEngine:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_random_plans_execute_and_match_cardinality(
        self, engine, five_table_query, seed
    ):
        q = five_table_query
        reference = engine.execute(q, left_deep_plan(q, ["cn", "mc", "t", "mi", "it"]))
        plan = random_plan(q, seed)
        result = engine.execute(q, plan, timeout=3600.0)
        if not result.timed_out:
            assert result.output_rows == reference.output_rows
