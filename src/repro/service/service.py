"""The planner service: concurrent, cache-aware planning for any planner.

``PlannerService`` is the front door for planning traffic.  It serves the
uniform :class:`~repro.planning.envelope.PlanRequest` /
:class:`~repro.planning.envelope.PlanResult` envelopes and can sit in front
of *any* :class:`~repro.planning.protocol.Planner` — the value-network beam
search (the historical default), a classical expert from the registry, or a
custom backend.  Each admitted request passes through three layers:

1. the cross-query :class:`~repro.service.cache.ServicePlanCache` — a
   repeated query under an unchanged planner version returns its memoised
   top-k plans without searching;
2. single-flight deduplication — identical queries already being planned by
   another worker wait for that search instead of duplicating it;
3. the worker pool — independent queries plan concurrently, their
   value-network scoring routed through a pluggable
   :class:`~repro.scoring.protocol.ScoringBackend`: in-process (GIL-bound
   baseline), threaded (beam frontiers coalesce into larger forward passes),
   or a process pool (scorer processes loading published model snapshots —
   true parallelism).  Backends that fail repeatedly are abandoned for an
   in-process fallback after ``max_backend_failures`` typed errors.

Admission control guards the front door: requests whose planning budget has
already expired, and requests beyond the ``max_pending`` capacity, are
rejected with a typed :class:`~repro.planning.envelope.AdmissionError`.
Admitted deadlines are enforced — the remaining budget is handed to the
planner, and budget-aware planners (beam search) cut off mid-search.

Every request is timed (queue wait, planning, end-to-end) and the service
aggregates the stream — including per-search ``states_expanded`` /
``plans_scored`` — into a :class:`~repro.service.metrics.ServiceMetrics`
report.
"""

from __future__ import annotations

import contextvars
import threading
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, Future, ThreadPoolExecutor, wait
from dataclasses import dataclass, fields as dataclass_fields, replace
from typing import Callable, Hashable, Iterable, Union

from repro.model.value_network import StateDictMismatchError, ValueNetwork
from repro.planning.adapters import BeamPlanner
from repro.planning.envelope import AdmissionError, PlanRequest, PlanResult
from repro.planning.protocol import Planner, planner_version
from repro.plans.nodes import PlanNode
from repro.scoring import (
    InProcessBackend,
    ScoringBackend,
    ScoringBackendError,
    make_scoring_backend,
)
from repro.search.beam import BeamSearchPlanner
from repro.service.cache import CacheKey, ServicePlanCache
from repro.service.metrics import RequestStats, ServiceMetrics
from repro.sql.query import Query
from repro.telemetry.trace import span as trace_span

#: What the request-facing methods accept: a bare query (wrapped into a
#: default envelope) or a full request.
RequestLike = Union[Query, PlanRequest]


@dataclass
class ServiceResponse(PlanResult):
    """What the service returns for one planning request.

    A :class:`~repro.planning.envelope.PlanResult` subtype: cache hits,
    single-flight joins and fresh searches all return the identical shape,
    extended with the planned query and per-request service stats.

    The inherited envelope fields (``planning_seconds``, ``states_expanded``,
    ``plans_scored``) describe the search that *produced the plans* — for a
    cache hit or coalesced join, that is the original memoised/leader search.
    Per-request charges live in ``stats``: ``stats.planning_seconds`` is 0 for
    hits and joins, so summing ``stats`` across responses never double-counts
    shared work.
    """

    query: Query | None = None
    stats: RequestStats | None = None

    @property
    def result(self) -> PlanResult:
        """Backwards-compatible view of the planner output (now ``self``)."""
        return self

    @property
    def cache_hit(self) -> bool:
        """Whether the plan cache answered this request."""
        return self.stats.cache_hit

    def to_json_dict(self) -> dict:
        """JSON-safe dict form: the result plus per-request service stats."""
        from repro.server.wire import service_response_to_json_dict

        return service_response_to_json_dict(self)


def _knobs_key(request: PlanRequest) -> tuple:
    """Canonical hashable form of the request's knobs for cache/flight keys.

    Knob-sensitive requests (e.g. Bao's ``explore``) must not be served
    another knob combination's memoised result.
    """
    if not request.knobs:
        return ()
    return tuple(sorted((str(name), repr(value)) for name, value in request.knobs.items()))


class _BudgetDrained(Exception):
    """Internal: an admitted request's budget ran out before the backend ran."""


class _NetworkHolder:
    """Atomic holder for the serving value network.

    The service resolves the serving network through this holder so a hot
    swap is one reference assignment: requests admitted before the swap keep
    the network they resolved (pinned per request), requests admitted after
    resolve the replacement.  Until the first swap the holder defers to the
    caller-supplied provider (e.g. an agent's ``lambda: self.value_network``).
    """

    __slots__ = ("provider", "override")

    def __init__(self, provider: Callable[[], ValueNetwork | None]):
        self.provider = provider
        self.override: ValueNetwork | None = None

    def get(self) -> ValueNetwork | None:
        override = self.override
        return override if override is not None else self.provider()


class _Flight:
    """Completion signal for an in-flight search other requests can join."""

    __slots__ = ("done", "result", "error")

    def __init__(self):
        self.done = threading.Event()
        self.result: PlanResult | None = None
        self.error: BaseException | None = None


class PlannerService:
    """A traffic-serving planning layer over one planner backend.

    Args:
        network: Value network guiding beam search (the historical backend).
            Mutually exclusive with ``network_provider`` and with a protocol
            ``planner``.
        network_provider: Zero-argument callable returning the current
            network; use this when the caller may swap the network object
            (e.g. an agent retraining from scratch).
        planner: Either a :class:`BeamSearchPlanner` configuring the beam
            backend (requires a network), or any
            :class:`~repro.planning.protocol.Planner` — e.g. a registry entry
            such as ``repro.planning.get("postgres")`` — served through the
            same cache/dedup/metrics path.
        max_workers: Worker-pool size for :meth:`submit` / :meth:`plan_many`.
        cache_capacity: Plan-cache capacity in entries (0 disables caching).
        coalesce_scoring: Route scoring through the shared threaded batching
            backend so concurrent beam searches share forward passes.  Only
            consulted when ``scoring_backend`` is unset, with the beam
            backend and ``max_workers > 1``.
        scoring_backend: How beam-search scoring executes: ``"inproc"``
            (forward passes on the planning thread), ``"threaded"`` (one
            coalescing scoring thread), ``"process"`` (a pool of
            ``max_workers`` scorer processes loading published snapshots —
            breaks the GIL bound), ``"process+shm"`` (the same pool with
            zero-copy shared-memory payload rings, adaptive batch sizing,
            and an autoscaler running 1..``max_workers`` processes), or a
            ready :class:`~repro.scoring.protocol.ScoringBackend` instance
            (closed with the service).  ``None`` keeps the historical
            mapping from ``coalesce_scoring``.
        max_backend_failures: Consecutive
            :class:`~repro.scoring.protocol.ScoringBackendError` failures
            tolerated before the service abandons the configured backend and
            falls back to in-process scoring (``None`` disables the
            fallback).  The failing requests still surface their typed error.
        max_batch_size: Forward-pass size cap for the scoring backend.
        coalesce_wait_seconds: Straggler window of the threaded backend.
        max_pending: Admission-control capacity: maximum requests admitted
            but not yet completed.  Further requests are rejected with
            :class:`AdmissionError` (``None`` disables the cap).
        default_k: Plans requested when a bare :class:`Query` is submitted
            (defaults to the beam planner's ``top_k``, or 1 for protocol
            backends).
    """

    def __init__(
        self,
        network: ValueNetwork | None = None,
        *,
        network_provider: Callable[[], ValueNetwork | None] | None = None,
        planner: BeamSearchPlanner | Planner | None = None,
        max_workers: int = 4,
        cache_capacity: int = 4096,
        coalesce_scoring: bool = True,
        scoring_backend: str | ScoringBackend | None = None,
        max_backend_failures: int | None = 3,
        max_batch_size: int = 512,
        coalesce_wait_seconds: float = 0.001,
        max_pending: int | None = None,
        default_k: int | None = None,
    ):
        if max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        if max_pending is not None and max_pending < 0:
            raise ValueError("max_pending must be >= 0 (or None to disable)")

        beam_mode = network is not None or network_provider is not None
        self._scoring: ScoringBackend | None = None
        self._owned_backends: list[ScoringBackend] = []
        self._max_batch_size = max_batch_size
        self.max_backend_failures = max_backend_failures
        self._backend_failures = 0
        self._fallen_back = False
        # Counters of a backend abandoned by the fallback, folded into
        # metrics() so its history survives the switch.
        self._retired_scoring = None
        # The value network's layers stash per-call activations on themselves,
        # so bare ``network.predict`` is not thread-safe.  Protocol-mode beam
        # adapters without a score_fn serialise through this lock.
        self._predict_lock = threading.Lock()
        # Guards the serving-network holder: a request's key computation and
        # a concurrent hot swap never interleave mid-resolution.
        self._swap_lock = threading.Lock()
        self._beam_mode = beam_mode
        self._holder: _NetworkHolder | None = None
        if beam_mode:
            if (network is None) == (network_provider is None):
                raise ValueError("provide exactly one of network / network_provider")
            if planner is not None and not isinstance(planner, BeamSearchPlanner):
                raise ValueError(
                    "with a network the planner must be a BeamSearchPlanner; "
                    "to serve a protocol planner, pass it alone"
                )
            self._holder = _NetworkHolder(network_provider or (lambda: network))
            self.network_provider = self._holder.get
            self.planner: BeamSearchPlanner | Planner = planner or BeamSearchPlanner()
            if scoring_backend is None:
                # Historical mapping: coalesce across workers when asked,
                # score on the planning thread otherwise.
                scoring_backend = (
                    "threaded" if (coalesce_scoring and max_workers > 1) else "inproc"
                )
            if isinstance(scoring_backend, str):
                self._scoring = make_scoring_backend(
                    scoring_backend,
                    self.network_provider,
                    num_workers=max_workers,
                    max_batch_size=max_batch_size,
                    coalesce_wait_seconds=coalesce_wait_seconds,
                )
                self._owned_backends.append(self._scoring)
            else:
                self._scoring = scoring_backend
                self._owned_backends.append(self._scoring)
            self.backend: Planner = BeamPlanner(
                network_provider=self.network_provider,
                planner=self.planner,
                score_fn=self._make_backend_score(None),
            )
            self._default_k = default_k if default_k is not None else self.planner.top_k
        else:
            if planner is None:
                raise ValueError(
                    "provide a network/network_provider (beam backend) or a planner "
                    "implementing the Planner protocol"
                )
            if scoring_backend is not None:
                raise ValueError(
                    "scoring_backend requires the beam backend; protocol "
                    "planners score inside their own plan()"
                )
            if isinstance(planner, BeamSearchPlanner):
                raise ValueError("a BeamSearchPlanner backend needs a network")
            if not callable(getattr(planner, "plan", None)):
                raise TypeError(f"planner {planner!r} does not implement the Planner protocol")
            self.network_provider = lambda: None
            self.planner = planner
            self.backend = planner
            if (
                isinstance(planner, BeamPlanner)
                and planner.score_fn is None
                and max_workers > 1
            ):
                # Bare network.predict is not thread-safe; rebind the adapter
                # with a lock-guarded predict so searches stay concurrent.
                self.backend = BeamPlanner(
                    network_provider=planner.network_provider,
                    planner=planner.planner,
                    score_fn=self._make_locked_score(planner.network_provider),
                )
            self._default_k = default_k if default_k is not None else 1

        self.max_workers = max_workers
        self.max_pending = max_pending
        self.cache = ServicePlanCache(cache_capacity)
        self._executor: ThreadPoolExecutor | None = None
        self._executor_lock = threading.Lock()
        self._flights: dict[CacheKey, _Flight] = {}
        self._flight_lock = threading.Lock()
        self._metrics_lock = threading.Lock()
        # Planners that do not declare themselves thread-safe are planned one
        # at a time; caching, dedup and queueing still run concurrently.
        self._backend_lock = threading.Lock()
        self._serialize_backend = max_workers > 1 and not bool(
            getattr(self.backend, "thread_safe", False)
        )
        self._closed = False
        self._pending = 0
        self._reset_aggregates()

    # ------------------------------------------------------------------ #
    # Request API
    # ------------------------------------------------------------------ #
    def plan(self, request: RequestLike) -> ServiceResponse:
        """Plan one request synchronously on the calling thread."""
        envelope = self._as_request(request)
        self._admit(envelope)
        return self._handle(envelope, time.perf_counter())

    def submit(self, request: RequestLike) -> Future[ServiceResponse]:
        """Enqueue one request onto the worker pool.

        Admission control runs synchronously: requests with an expired
        deadline, or beyond ``max_pending``, raise :class:`AdmissionError`
        here rather than through the future.  With ``max_workers == 1`` the
        request is served on the calling thread instead (same semantics,
        already-completed future) so single-worker services never spawn
        threads that would outlive untidy callers.
        """
        return self._submit(self._as_request(request), count_rejection=True)

    def _submit(
        self, envelope: PlanRequest, count_rejection: bool
    ) -> Future[ServiceResponse]:
        self._admit(envelope, count_rejection=count_rejection)
        if self.max_workers == 1:
            future: Future[ServiceResponse] = Future()
            try:
                future.set_result(self._handle(envelope, time.perf_counter()))
            except BaseException as error:
                future.set_exception(error)
            return future
        try:
            # Pool threads do not inherit the submitting thread's contextvars;
            # copying the context carries the active trace span across.
            context = contextvars.copy_context()
            return self._pool().submit(
                context.run, self._handle, envelope, time.perf_counter()
            )
        except BaseException:
            # The task was never scheduled (e.g. a concurrent close()):
            # release the admission slot _admit just took.
            with self._metrics_lock:
                self._pending -= 1
            raise

    def plan_many(self, requests: Iterable[RequestLike]) -> list[ServiceResponse]:
        """Plan several requests concurrently, preserving input order.

        Cooperates with admission control: when ``max_pending`` is reached by
        this batch's own outstanding requests, submission applies backpressure
        (waits for one to finish) instead of failing the batch.  Rejections
        for other reasons — an already-expired deadline, capacity consumed by
        other callers — still raise :class:`AdmissionError`.
        """
        futures: list[Future[ServiceResponse]] = []
        for request in requests:
            envelope = self._as_request(request)
            retried_drained = False
            while True:
                try:
                    # Over-capacity refusals are only counted in the metrics
                    # when they surface to the caller, not per retry.
                    futures.append(self._submit(envelope, count_rejection=False))
                    break
                except AdmissionError as error:
                    if error.reason != "over_capacity":
                        self._count_rejection()
                        raise
                    outstanding = [future for future in futures if not future.done()]
                    if not outstanding and retried_drained:
                        # The batch holds no capacity and a clean retry was
                        # already refused: other callers (or max_pending=0)
                        # own the slots, so the refusal stands as documented.
                        self._count_rejection()
                        raise
                    retried_drained = not outstanding
                    if outstanding:
                        wait(outstanding, return_when=FIRST_COMPLETED)
        return [future.result() for future in futures]

    # ------------------------------------------------------------------ #
    # Model lifecycle: hot swap and cache warming
    # ------------------------------------------------------------------ #
    def swap_network(self, network: ValueNetwork) -> Hashable:
        """Atomically replace the serving value network (zero-downtime).

        In-flight requests finish on the network they resolved at admission
        (each request pins its network and version together); requests
        admitted after this call plan with ``network``.  Cache keys embed the
        network's version key, so entries roll over naturally — follow up
        with :meth:`warm_cache` to put the known workload back on the warm
        path.

        Args:
            network: The replacement network.  Must be featurised identically
                to the current serving network.

        Returns:
            The new serving version key.

        Raises:
            RuntimeError: The service fronts a protocol planner (no network).
            StateDictMismatchError: ``network`` featurises a different input
                space than the current serving network.
        """
        self._check_open()
        if self._holder is None:
            raise RuntimeError(
                "swap_network requires the beam backend; protocol planners "
                "have no serving network to swap"
            )
        current = self.network_provider()
        if current is not None and current.featurizer.signature() != (
            network.featurizer.signature()
        ):
            raise StateDictMismatchError(
                "cannot hot-swap a network featurised for a different input "
                f"space: serving {current.featurizer.signature()!r}, "
                f"candidate {network.featurizer.signature()!r}"
            )
        with self._swap_lock:
            self._holder.override = network
        with self._metrics_lock:
            self._swaps += 1
        return network.version_key()

    def serving_network(self) -> ValueNetwork | None:
        """The network new requests currently resolve (None for protocol mode)."""
        if self._holder is None:
            return None
        with self._swap_lock:
            return self.network_provider()

    def warm_cache(self, requests: Iterable[RequestLike]) -> int:
        """Replan ``requests`` so subsequent traffic hits the plan cache.

        Run immediately after :meth:`swap_network` with the known workload:
        every request that is not already memoised under the new serving
        version plans now (through the normal concurrent path), so
        steady-state traffic stays on the warm path across the swap.

        Returns:
            The number of fresh entries actually memoised (already-warm
            requests are counted as hits, not re-planned; a search whose
            result could not be stored — budget-truncated, or the serving
            version moved again mid-warm — is not counted as warmed).
        """
        envelopes = [self._as_request(request) for request in requests]
        responses = self.plan_many(envelopes)
        warmed = 0
        for envelope, response in zip(envelopes, responses):
            stats = response.stats
            if stats is None or stats.cache_hit or stats.coalesced:
                continue
            key: CacheKey = (
                envelope.query.fingerprint(),
                stats.model_version,
                envelope.k,
                _knobs_key(envelope),
            )
            warmed += int(self.cache.contains(key))
        with self._metrics_lock:
            self._warmed_entries += warmed
        return warmed

    def record_promotion_rejected(self) -> None:
        """Count a candidate model the shadow gate refused to promote."""
        with self._metrics_lock:
            self._promotions_rejected += 1

    # ------------------------------------------------------------------ #
    # Metrics
    # ------------------------------------------------------------------ #
    def scoring_profiles(self) -> list[dict]:
        """Sampling profiles from the scoring backend's processes, if any.

        Backends without continuous profiling (inproc, threaded) simply
        contribute nothing; the gateway merges whatever comes back into
        ``GET /v1/profile``.
        """
        profiles = getattr(self._scoring, "profiles", None)
        if not callable(profiles):
            return []
        try:
            return list(profiles())
        except Exception:  # noqa: BLE001 - observability must not fail serving
            return []

    def metrics(self) -> ServiceMetrics:
        """Aggregate report over every request handled so far."""
        with self._metrics_lock:
            wall = 0.0
            if self._window_start is not None and self._window_end is not None:
                wall = max(self._window_end - self._window_start, 0.0)
            report = ServiceMetrics(
                requests=self._requests,
                cache_hits=self._cache_hits,
                cache_misses=self._cache_misses,
                coalesced_requests=self._coalesced,
                rejected_requests=self._rejected,
                deadline_exceeded_requests=self._deadline_exceeded,
                swaps=self._swaps,
                promotions_rejected=self._promotions_rejected,
                warmed_entries=self._warmed_entries,
                scoring_backend_failures=self._scoring_backend_failures,
                scoring_fallbacks=self._scoring_fallbacks,
                total_states_expanded=self._states_expanded,
                total_plans_scored=self._plans_scored,
                total_queue_wait_seconds=self._total_queue_wait,
                max_queue_wait_seconds=self._max_queue_wait,
                total_planning_seconds=self._total_planning,
                total_service_seconds=self._total_service,
                wall_seconds=wall,
            )
        report.cache = self.cache.stats()
        if self._scoring is not None:
            report.scoring = self._scoring.stats()
            retired = self._retired_scoring
            if retired is not None:
                # Fold in the pre-fallback history (totals add, the max-batch
                # watermark maxes, point-in-time gauges stay the live
                # backend's), so the merged report stays consistent with the
                # request log across the backend switch.
                gauges = {
                    "workers_current", "queue_depth", "ring_occupancy",
                    "adaptive_batch_cap", "worker_queue_depths",
                    "worker_inflight",
                }
                for field in dataclass_fields(type(report.scoring)):
                    if field.name in gauges:
                        continue
                    merge = max if field.name == "max_batch_examples" else (
                        lambda a, b: a + b
                    )
                    setattr(
                        report.scoring,
                        field.name,
                        merge(
                            getattr(report.scoring, field.name),
                            getattr(retired, field.name),
                        ),
                    )
        return report

    def request_log(self) -> list[RequestStats]:
        """Per-request stats in completion order (capped at the most recent)."""
        with self._metrics_lock:
            return list(self._log)

    def drain_request_log(self, position: int) -> tuple[list[RequestStats], int]:
        """Entries appended after absolute ``position``, plus the new position.

        Consistent under the metrics lock (``_requests`` and the log advance
        together), so incremental consumers — the telemetry histograms — see
        each entry exactly once.  Entries older than the log's retention
        window are silently skipped.  A position ahead of the counter (the
        counter was reset) yields nothing and re-anchors the cursor.
        """
        with self._metrics_lock:
            total = self._requests
            new = total - position
            if new <= 0:
                return [], total
            log = list(self._log)
            return log[-new:] if new < len(log) else log, total

    def reset_metrics(self) -> None:
        """Zero the aggregate counters and the throughput window."""
        with self._metrics_lock:
            self._reset_aggregates()

    def _reset_aggregates(self) -> None:
        self._requests = 0
        self._cache_hits = 0
        self._cache_misses = 0
        self._coalesced = 0
        self._rejected = 0
        self._deadline_exceeded = 0
        self._swaps = 0
        self._promotions_rejected = 0
        self._warmed_entries = 0
        self._scoring_backend_failures = 0
        self._scoring_fallbacks = 0
        self._states_expanded = 0
        self._plans_scored = 0
        self._total_queue_wait = 0.0
        self._max_queue_wait = 0.0
        self._total_planning = 0.0
        self._total_service = 0.0
        self._window_start: float | None = None
        self._window_end: float | None = None
        self._log: deque[RequestStats] = deque(maxlen=100_000)

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Drain the worker pool and stop the scoring backends."""
        if self._closed:
            return
        self._closed = True
        if self._executor is not None:
            self._executor.shutdown(wait=True)
        for backend in self._owned_backends:
            backend.close()

    def __enter__(self) -> "PlannerService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Admission control
    # ------------------------------------------------------------------ #
    def _as_request(self, request: RequestLike) -> PlanRequest:
        if isinstance(request, PlanRequest):
            return request
        if isinstance(request, Query):
            return PlanRequest(query=request, k=self._default_k)
        raise TypeError(
            f"expected a Query or PlanRequest, got {type(request).__name__}"
        )

    def _admit(self, request: PlanRequest, count_rejection: bool = True) -> None:
        """Admit ``request`` or raise :class:`AdmissionError`.

        ``count_rejection=False`` lets :meth:`plan_many` retry under
        backpressure without publishing refusals that are never surfaced.
        """
        with trace_span("admission", query=request.query.name):
            self._check_open()
            if request.expired:
                if count_rejection:
                    self._count_rejection()
                raise AdmissionError(
                    f"request for {request.query.name!r} arrived with an "
                    f"already-expired deadline ({request.deadline_seconds}s)",
                    reason="deadline_expired",
                )
            with self._metrics_lock:
                if (
                    self.max_pending is not None
                    and self._pending >= self.max_pending
                ):
                    if count_rejection:
                        self._rejected += 1
                    raise AdmissionError(
                        f"service over capacity: {self._pending} pending "
                        f"requests >= max_pending={self.max_pending}",
                        reason="over_capacity",
                    )
                self._pending += 1

    def _count_rejection(self) -> None:
        with self._metrics_lock:
            self._rejected += 1

    @property
    def pending_requests(self) -> int:
        """Requests admitted but not yet completed."""
        with self._metrics_lock:
            return self._pending

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError("planner service is closed")

    def _pool(self) -> ThreadPoolExecutor:
        with self._executor_lock:
            if self._executor is None:
                self._executor = ThreadPoolExecutor(
                    max_workers=self.max_workers, thread_name_prefix="planner-worker"
                )
            return self._executor

    def _network(self) -> ValueNetwork:
        network = self.network_provider()
        if network is None:
            raise RuntimeError("planner service has no value network yet")
        return network

    def _handle(self, request: PlanRequest, submitted_at: float) -> ServiceResponse:
        try:
            return self._serve(request, submitted_at)
        finally:
            with self._metrics_lock:
                self._pending -= 1

    def _serve(self, request: PlanRequest, submitted_at: float) -> ServiceResponse:
        started = time.perf_counter()
        queue_wait = max(started - submitted_at, 0.0)
        # Resolve the serving backend ONCE per request: the cache-key version
        # and the network the request plans with come from the same snapshot,
        # so a hot swap (or an in-place retrain bumping the version) that
        # interleaves with this request can never produce an entry keyed to
        # one version but scored by another.
        pinned = self._resolve_network()
        version = (
            pinned.version_key() if pinned is not None else planner_version(self.backend)
        )
        key: CacheKey = (
            request.query.fingerprint(),
            version,
            request.k,
            _knobs_key(request),
        )
        deadline: float | None = None
        if request.deadline_seconds is not None:
            deadline = submitted_at + request.deadline_seconds

        while True:
            # The cache is consulted even when the budget drained in the
            # queue: a memoised hit costs nothing, so it still beats an empty
            # truncated answer.
            with trace_span("cache.lookup") as lookup_span:
                cached = self.cache.lookup(key)
                if lookup_span is not None:
                    lookup_span.annotate(hit=cached is not None)
            if cached is not None:
                return self._finish(
                    request, cached, key, submitted_at, started,
                    cache_hit=True, coalesced=False, planning_seconds=0.0,
                    queue_wait=queue_wait,
                )
            if deadline is not None and time.perf_counter() >= deadline:
                # Admitted, but the budget drained before planning could
                # start: answer with an empty budget-truncated result (the
                # same shape a mid-search cutoff produces) rather than
                # failing the future.
                return self._finish(
                    request, self._truncated_result(), key, submitted_at, started,
                    cache_hit=False, coalesced=False, planning_seconds=0.0,
                    queue_wait=queue_wait, expired=True,
                )

            flight, leader = self._join_flight(key)
            if leader:
                break
            remaining = None if deadline is None else deadline - time.perf_counter()
            if not flight.done.wait(timeout=remaining):
                # This request's own budget ran out while riding the leader's
                # search; answer with an empty budget-truncated result rather
                # than blocking past the enforced deadline.
                return self._finish(
                    request, self._truncated_result(), key, submitted_at, started,
                    cache_hit=False, coalesced=False, planning_seconds=0.0,
                    queue_wait=queue_wait, expired=True,
                )
            if flight.error is not None:
                raise flight.error
            if flight.result.deadline_exceeded or not flight.result.cacheable:
                # The leader's result must not be shared: it was either cut
                # short by *its* budget, or it is a stochastic draw the
                # planner marked non-replayable.  Retry — the cache was
                # deliberately not populated, so this request plans afresh.
                continue
            return self._finish(
                request, flight.result, key, submitted_at, started,
                cache_hit=False, coalesced=True, planning_seconds=0.0,
                queue_wait=queue_wait,
            )

        ran_backend = True
        try:
            try:
                with trace_span("search"):
                    result = self._backend_plan(request, deadline, pinned)
            except _BudgetDrained:
                result, ran_backend = self._truncated_result(), False
            except AdmissionError as error:
                # A nested serving backend (e.g. an agent's own service) may
                # re-run admission on the drained remaining budget; admitted
                # requests still get a truncated response, never a rejection.
                if error.reason != "deadline_expired":
                    raise
                result, ran_backend = self._truncated_result(), False
            # Budget-truncated results are valid responses but poor cache
            # entries (an unconstrained request must not inherit them), and
            # stochastic planners mark their draws non-cacheable.  The version
            # recheck closes the stale-cache window: if the serving version
            # moved while this search ran (hot swap, or an in-place weight
            # mutation + bump_version), the entry's provenance is ambiguous
            # and it must not be memoised — a later request whose key matches
            # ours could otherwise be served plans scored by other weights.
            if (
                result.cacheable
                and not result.deadline_exceeded
                and self._version_current(version)
            ):
                self.cache.store(key, result)
            flight.result = result
        except BaseException as error:
            flight.error = error
            raise
        finally:
            # Retire the flight *before* waking followers: a woken follower
            # that retries (non-shareable result) must start a fresh flight,
            # not rejoin this completed one in a busy loop.
            with self._flight_lock:
                self._flights.pop(key, None)
            flight.done.set()
        return self._finish(
            request, result, key, submitted_at, started,
            cache_hit=False, coalesced=False,
            planning_seconds=result.planning_seconds, queue_wait=queue_wait,
            expired=not ran_backend,
        )

    def _backend_plan(
        self,
        request: PlanRequest,
        deadline: float | None,
        pinned: ValueNetwork | None = None,
    ) -> PlanResult:
        """Run the backend with the *remaining* planning budget.

        ``pinned`` is the network the request resolved at key-computation
        time; beam-mode requests plan against it (not the live provider), so
        in-flight searches finish on their admitted version across a swap.
        """
        if deadline is not None:
            remaining = deadline - time.perf_counter()
            if remaining <= 0:
                raise _BudgetDrained()
            request = replace(request, deadline_seconds=remaining)
        backend = self.backend if pinned is None else self._pinned_backend(pinned)
        if self._serialize_backend:
            with self._backend_lock:
                return backend.plan(request)
        return backend.plan(request)

    def _resolve_network(self) -> ValueNetwork | None:
        """The serving network for one request (None in protocol mode).

        Resolution happens under the swap lock (via :meth:`serving_network`)
        so a request never observes a half-applied swap; beam-mode requests
        without a network yet fail the same way the adapter would.
        """
        if not self._beam_mode:
            return None
        network = self.serving_network()
        if network is None:
            raise RuntimeError("planner service has no value network yet")
        return network

    def _version_current(self, version: object) -> bool:
        """Whether the serving backend still reports ``version``."""
        try:
            if self._beam_mode:
                current = self.serving_network()
                return current is not None and current.version_key() == version
            return planner_version(self.backend) == version
        except RuntimeError:
            return False

    def _pinned_backend(self, network: ValueNetwork) -> Planner:
        """A beam backend bound to ``network`` for the span of one request."""
        return BeamPlanner(
            network=network,
            planner=self.planner,
            score_fn=self._make_backend_score(network),
        )

    def _make_backend_score(self, pin: ValueNetwork | None):
        """A ``score_fn`` routing through the scoring backend.

        ``pin`` is the network a request resolved at admission (None defers
        to the live provider at call time); the backend receives it as the
        version pin, so a hot swap mid-search never changes what an in-flight
        search scores against, and the process backend ships the matching
        published snapshot to its scorers.
        """

        def score(query: Query, plans: list[PlanNode]):
            network = pin if pin is not None else self._network()
            return self._score(query, plans, network)

        return score

    def _score(self, query: Query, plans: list[PlanNode], network: ValueNetwork):
        """One backend submit, with failure accounting and fallback."""
        backend = self._scoring
        try:
            with trace_span("scoring", plans=len(plans)):
                predictions = backend.submit(query, plans, version=network)
        except ScoringBackendError:
            self._note_backend_failure()
            raise
        with self._metrics_lock:
            self._backend_failures = 0
        return predictions

    def _note_backend_failure(self) -> None:
        """Count a backend failure; install the in-process fallback at the cap.

        The failing request still surfaces its typed error (its batch is
        lost); requests arriving after the cap score in-process, so a dead
        scorer pool degrades throughput instead of availability.
        """
        with self._metrics_lock:
            self._backend_failures += 1
            self._scoring_backend_failures += 1
            fall_back = (
                not self._fallen_back
                and self.max_backend_failures is not None
                and self._backend_failures >= self.max_backend_failures
            )
            if fall_back:
                self._fallen_back = True
                self._scoring_fallbacks += 1
        if fall_back:
            abandoned = self._scoring
            fallback = InProcessBackend(
                self.network_provider, max_batch_size=self._max_batch_size
            )
            self._owned_backends.append(fallback)
            self._scoring = fallback
            # Preserve the abandoned backend's counters in metrics(), then
            # release its resources (scorer processes, spool) off the request
            # path — close() can block on process joins.
            try:
                self._retired_scoring = abandoned.stats()
            except BaseException:
                pass
            threading.Thread(
                target=abandoned.close, name="scoring-backend-reaper", daemon=True
            ).start()

    def _truncated_result(self) -> PlanResult:
        """An empty budget-truncated result (deadline drained before planning)."""
        return PlanResult(
            plans=[], predicted_latencies=[],
            planner_name=getattr(self.backend, "name", ""),
            deadline_exceeded=True, cacheable=False,
        )

    def _make_locked_score(self, provider: Callable[[], ValueNetwork | None]):
        """A lock-guarded predict bound to ``provider``.

        Used whenever concurrent beam searches would otherwise call bare
        ``network.predict`` (which is not thread-safe) without the bridge.
        """

        def score(query: Query, plans: list[PlanNode]):
            with self._predict_lock:
                network = provider()
                if network is None:
                    raise RuntimeError("planner service has no value network yet")
                return network.predict(query, plans)

        return score

    def _join_flight(self, key: CacheKey) -> tuple[_Flight, bool]:
        """Join (or lead) the in-flight search for ``key``."""
        with self._flight_lock:
            flight = self._flights.get(key)
            if flight is not None:
                return flight, False
            flight = _Flight()
            self._flights[key] = flight
            return flight, True

    def _finish(
        self,
        request: PlanRequest,
        result: PlanResult,
        key: CacheKey,
        submitted_at: float,
        started: float,
        cache_hit: bool,
        coalesced: bool,
        planning_seconds: float,
        queue_wait: float,
        expired: bool = False,
    ) -> ServiceResponse:
        completed = time.perf_counter()
        # Search work is charged to the request that ran it; hits, coalesced
        # joins and budget-drained requests (``expired`` — no planner ran)
        # report zero so aggregates never double-count.
        ran_planner = not cache_hit and not coalesced and not expired
        stats = RequestStats(
            query_name=request.query.name,
            cache_hit=cache_hit,
            coalesced=coalesced,
            queue_wait_seconds=queue_wait,
            planning_seconds=planning_seconds,
            service_seconds=completed - submitted_at,
            model_version=key[1],
            planner_name=result.planner_name,
            states_expanded=result.states_expanded if ran_planner else 0,
            plans_scored=result.plans_scored if ran_planner else 0,
            deadline_exceeded=result.deadline_exceeded and not cache_hit,
            priority=request.priority,
        )
        with self._metrics_lock:
            self._requests += 1
            self._cache_hits += int(cache_hit)
            self._cache_misses += int(ran_planner)
            self._coalesced += int(coalesced)
            self._deadline_exceeded += int(stats.deadline_exceeded)
            self._states_expanded += stats.states_expanded
            self._plans_scored += stats.plans_scored
            self._total_queue_wait += queue_wait
            self._max_queue_wait = max(self._max_queue_wait, queue_wait)
            self._total_planning += planning_seconds
            self._total_service += stats.service_seconds
            if self._window_start is None:
                self._window_start = submitted_at
            else:
                self._window_start = min(self._window_start, submitted_at)
            self._window_end = (
                completed if self._window_end is None else max(self._window_end, completed)
            )
            self._log.append(stats)
        # Copy exactly the PlanResult fields (a nested-service backend may
        # return a full ServiceResponse; its query/stats must not leak), so
        # future envelope fields propagate without touching this site.
        payload = {f.name: getattr(result, f.name) for f in dataclass_fields(PlanResult)}
        return ServiceResponse(**payload, query=request.query, stats=stats)
