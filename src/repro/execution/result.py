"""Intermediate relational results and vectorised equi-join matching.

An :class:`IntermediateResult` represents the rows of a partial join: for each
participating alias it stores an aligned array of base-table row positions.
Joining two intermediate results matches rows on the query's equi-join
predicates using sort/searchsorted matching (hash-join semantics), which is
what lets the engine know *true* output cardinalities regardless of which
physical operator the plan requested.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sql.expr import JoinPredicate
from repro.storage.database import Database


@dataclass
class IntermediateResult:
    """Rows of a partial join.

    Attributes:
        rows: Mapping from alias to an array of base-table row positions.  All
            arrays have the same length (the result cardinality).
    """

    rows: dict[str, np.ndarray]

    @property
    def num_rows(self) -> int:
        """Number of result tuples."""
        if not self.rows:
            return 0
        return len(next(iter(self.rows.values())))

    @property
    def aliases(self) -> frozenset[str]:
        """Aliases participating in this result."""
        return frozenset(self.rows)

    def column_values(
        self, database: Database, alias_to_table: dict[str, str], alias: str, column: str
    ) -> np.ndarray:
        """Materialise the values of ``alias.column`` for every result tuple."""
        table = database.table(alias_to_table[alias])
        return table.column(column)[self.rows[alias]]

    def take(self, positions: np.ndarray) -> "IntermediateResult":
        """Select a subset of result tuples by position."""
        return IntermediateResult({a: r[positions] for a, r in self.rows.items()})


def match_keys(
    build_keys: np.ndarray, probe_keys: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Return all (build_position, probe_position) pairs with equal keys.

    This is the core equi-join kernel: it sorts the build side once and scans
    the probe side with ``searchsorted``, expanding duplicate runs.

    Args:
        build_keys: Key values of the build side.
        probe_keys: Key values of the probe side.

    Returns:
        ``(build_positions, probe_positions)`` arrays of equal length, one
        entry per matching pair.
    """
    if len(build_keys) == 0 or len(probe_keys) == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    order = np.argsort(build_keys, kind="stable")
    sorted_build = build_keys[order]
    left_edges = np.searchsorted(sorted_build, probe_keys, side="left")
    right_edges = np.searchsorted(sorted_build, probe_keys, side="right")
    counts = right_edges - left_edges
    total = int(counts.sum())
    if total == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    probe_positions = np.repeat(np.arange(len(probe_keys), dtype=np.int64), counts)
    hit_mask = counts > 0
    starts = left_edges[hit_mask]
    hit_counts = counts[hit_mask]
    offsets = np.arange(total) - np.repeat(
        np.concatenate(([0], np.cumsum(hit_counts)[:-1])), hit_counts
    )
    build_sorted_positions = np.repeat(starts, hit_counts) + offsets
    build_positions = order[build_sorted_positions]
    return build_positions.astype(np.int64), probe_positions


def estimate_match_count(build_keys: np.ndarray, probe_keys: np.ndarray) -> int:
    """Exact output size of an equi-join on the two key arrays, without materialising.

    Computed as the sum over shared key values of the product of per-side
    multiplicities.  Used to guard against materialising astronomically large
    intermediate results of disastrous plans.
    """
    if len(build_keys) == 0 or len(probe_keys) == 0:
        return 0
    build_values, build_counts = np.unique(build_keys, return_counts=True)
    probe_values, probe_counts = np.unique(probe_keys, return_counts=True)
    shared, build_idx, probe_idx = np.intersect1d(
        build_values, probe_values, assume_unique=True, return_indices=True
    )
    if len(shared) == 0:
        return 0
    return int(np.sum(build_counts[build_idx].astype(np.int64) * probe_counts[probe_idx]))


def join_results(
    database: Database,
    alias_to_table: dict[str, str],
    left: IntermediateResult,
    right: IntermediateResult,
    predicates: list[JoinPredicate] | tuple[JoinPredicate, ...],
) -> IntermediateResult:
    """Join two intermediate results on all given equi-join predicates.

    The first predicate drives the key matching; remaining predicates are
    applied as post-filters on the matched pairs (matching how a real engine
    evaluates residual join conditions).

    Args:
        database: The database providing column values.
        alias_to_table: Alias-to-table mapping of the query.
        left: Left input.
        right: Right input.
        predicates: Join predicates connecting the two sides (non-empty).

    Returns:
        The joined :class:`IntermediateResult`.
    """
    if not predicates:
        raise ValueError("join_results requires at least one join predicate")

    def side_keys(result: IntermediateResult, predicate: JoinPredicate) -> tuple[str, np.ndarray]:
        if predicate.left_alias in result.aliases:
            alias, column = predicate.left_alias, predicate.left_column
        else:
            alias, column = predicate.right_alias, predicate.right_column
        return alias, result.column_values(database, alias_to_table, alias, column)

    first, *rest = list(predicates)
    _, left_keys = side_keys(left, first)
    _, right_keys = side_keys(right, first)
    left_positions, right_positions = match_keys(left_keys, right_keys)

    for predicate in rest:
        if len(left_positions) == 0:
            break
        _, left_vals = side_keys(left, predicate)
        _, right_vals = side_keys(right, predicate)
        keep = left_vals[left_positions] == right_vals[right_positions]
        left_positions = left_positions[keep]
        right_positions = right_positions[keep]

    rows: dict[str, np.ndarray] = {}
    for alias, row_ids in left.rows.items():
        rows[alias] = row_ids[left_positions]
    for alias, row_ids in right.rows.items():
        rows[alias] = row_ids[right_positions]
    return IntermediateResult(rows)
