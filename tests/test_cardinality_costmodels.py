"""Tests for cardinality estimators and cost models."""

import numpy as np
import pytest

from repro.cardinality.noise import NoisyEstimator
from repro.cardinality.true_cards import TrueCardinalityEstimator
from repro.costmodel.cmm import CmmCostModel
from repro.costmodel.cout import CoutCostModel
from repro.costmodel.expert import ExpertCostModel
from repro.plans.builders import join, left_deep_plan, scan
from repro.plans.nodes import JoinOperator, ScanOperator


class TestHistogramEstimator:
    def test_base_rows(self, estimator, three_table_query):
        assert estimator.base_rows(three_table_query, "t") == pytest.approx(
            estimator.database.num_rows("title")
        )

    def test_single_table_estimate_below_base(self, estimator, three_table_query):
        filtered = estimator.estimate(three_table_query, frozenset({"t"}))
        assert 0 < filtered <= estimator.base_rows(three_table_query, "t")

    def test_selectivity_in_unit_interval(self, estimator, five_table_query):
        for alias in five_table_query.aliases:
            assert 0.0 <= estimator.selectivity(five_table_query, alias) <= 1.0

    def test_unfiltered_alias_has_selectivity_one(self, estimator, five_table_query):
        assert estimator.selectivity(five_table_query, "mc") == pytest.approx(1.0)

    def test_join_estimate_positive(self, estimator, five_table_query):
        estimate = estimator.estimate(five_table_query, frozenset(five_table_query.aliases))
        assert estimate > 0

    def test_more_joins_change_estimate(self, estimator, five_table_query):
        two = estimator.estimate(five_table_query, frozenset({"t", "mc"}))
        three = estimator.estimate(five_table_query, frozenset({"t", "mc", "cn"}))
        assert two != three

    def test_empty_alias_set_rejected(self, estimator, three_table_query):
        with pytest.raises(ValueError):
            estimator.estimate(three_table_query, frozenset())

    def test_estimates_are_cached_and_stable(self, estimator, three_table_query):
        a = estimator.estimate(three_table_query, frozenset({"t", "mc"}))
        b = estimator.estimate(three_table_query, frozenset({"t", "mc"}))
        assert a == b

    def test_estimation_error_exists_but_bounded_range(self, engine, estimator, five_table_query):
        """The histogram estimator is allowed to be wrong (that is the point),
        but it should stay within a few orders of magnitude on this data."""
        q = five_table_query
        true = max(1.0, float(engine.true_cardinality(q, frozenset({"t", "mc"}))))
        est = max(1.0, estimator.estimate(q, frozenset({"t", "mc"})))
        q_error = max(true / est, est / true)
        assert q_error < 1e4


class TestTrueCardinalityEstimator:
    def test_matches_engine(self, engine, three_table_query):
        true_est = TrueCardinalityEstimator(engine)
        value = true_est.estimate(three_table_query, frozenset({"t", "mc"}))
        assert value == engine.true_cardinality(three_table_query, frozenset({"t", "mc"}))

    def test_caching(self, engine, three_table_query):
        true_est = TrueCardinalityEstimator(engine)
        before = engine.num_executions
        true_est.estimate(three_table_query, frozenset({"t"}))
        true_est.estimate(three_table_query, frozenset({"t"}))
        assert true_est.cache_size() == 1
        assert engine.num_executions == before + 1


class TestNoisyEstimator:
    def test_noise_changes_estimates_deterministically(self, estimator, three_table_query):
        noisy = NoisyEstimator(estimator, median_factor=5.0, seed=1)
        clean = estimator.estimate(three_table_query, frozenset({"t", "mc"}))
        corrupted_a = noisy.estimate(three_table_query, frozenset({"t", "mc"}))
        corrupted_b = noisy.estimate(three_table_query, frozenset({"t", "mc"}))
        assert corrupted_a == corrupted_b
        assert corrupted_a != clean

    def test_base_rows_passthrough(self, estimator, three_table_query):
        noisy = NoisyEstimator(estimator, 5.0, 0)
        assert noisy.base_rows(three_table_query, "t") == estimator.base_rows(
            three_table_query, "t"
        )

    def test_invalid_factor(self, estimator):
        with pytest.raises(ValueError):
            NoisyEstimator(estimator, median_factor=0.0)

    def test_median_factor_roughly_respected(self, estimator, five_table_query):
        noisy = NoisyEstimator(estimator, median_factor=5.0, seed=3)
        ratios = []
        for aliases in [{"t"}, {"mc"}, {"cn"}, {"t", "mc"}, {"t", "mi"}, {"mi", "it"}]:
            clean = estimator.estimate(five_table_query, frozenset(aliases))
            corrupted = noisy.estimate(five_table_query, frozenset(aliases))
            ratios.append(clean / corrupted)
        median_ratio = float(np.median(ratios))
        assert 1.0 < median_ratio < 50.0


class TestCoutCostModel:
    def test_cost_is_sum_of_estimates(self, estimator, three_table_query):
        q = three_table_query
        model = CoutCostModel(estimator)
        plan = left_deep_plan(q, ["t", "mc", "cn"])
        expected = (
            estimator.estimate(q, frozenset({"t"}))
            + estimator.estimate(q, frozenset({"mc"}))
            + estimator.estimate(q, frozenset({"cn"}))
            + estimator.estimate(q, frozenset({"t", "mc"}))
            + estimator.estimate(q, frozenset({"t", "mc", "cn"}))
        )
        assert model.cost(q, plan) == pytest.approx(expected)

    def test_ignores_physical_operators(self, estimator, three_table_query):
        q = three_table_query
        model = CoutCostModel(estimator)
        hash_plan = left_deep_plan(q, ["t", "mc", "cn"], JoinOperator.HASH_JOIN)
        loop_plan = left_deep_plan(q, ["t", "mc", "cn"], JoinOperator.NESTED_LOOP)
        assert model.cost(q, hash_plan) == pytest.approx(model.cost(q, loop_plan))

    def test_combine_matches_full_cost(self, estimator, three_table_query):
        q = three_table_query
        model = CoutCostModel(estimator)
        left = join(scan(q, "t"), scan(q, "mc"))
        full = join(left, scan(q, "cn"))
        via_combine = model.combine(
            q, full, model.cost(q, left), model.cost(q, scan(q, "cn"))
        )
        assert via_combine == pytest.approx(model.cost(q, full))


class TestPhysicalCostModels:
    @pytest.mark.parametrize("model_cls", [CmmCostModel, ExpertCostModel])
    def test_cost_positive(self, model_cls, imdb_database, estimator, five_table_query):
        if model_cls is ExpertCostModel:
            model = ExpertCostModel(estimator, imdb_database)
        else:
            model = CmmCostModel(estimator)
        plan = left_deep_plan(five_table_query, ["cn", "mc", "t", "mi", "it"])
        assert model.cost(five_table_query, plan) > 0

    def test_expert_model_distinguishes_operators(
        self, imdb_database, estimator, five_table_query
    ):
        q = five_table_query
        model = ExpertCostModel(estimator, imdb_database)
        hash_plan = left_deep_plan(q, ["t", "mc", "cn", "mi", "it"], JoinOperator.HASH_JOIN)
        loop_plan = left_deep_plan(q, ["t", "mc", "cn", "mi", "it"], JoinOperator.NESTED_LOOP)
        assert model.cost(q, hash_plan) != model.cost(q, loop_plan)

    def test_expert_model_penalises_unindexed_nested_loop(
        self, imdb_database, estimator, five_table_query
    ):
        """A nested loop over two joined (non-indexable) inputs must cost more
        than a hash join over the same inputs: its cost scales with the
        product of the input sizes instead of their sum."""
        q = five_table_query
        model = ExpertCostModel(estimator, imdb_database)
        left = join(scan(q, "t"), scan(q, "mc"))
        right = join(scan(q, "mi"), scan(q, "it"))
        nested = join(left, right, JoinOperator.NESTED_LOOP)
        hashed = join(left, right, JoinOperator.HASH_JOIN)
        assert model.node_cost(q, nested) > model.node_cost(q, hashed)

    def test_expert_scan_cost_prefers_seq_scan_without_index(self, imdb_database, estimator, three_table_query):
        q = three_table_query
        model = ExpertCostModel(estimator, imdb_database)
        seq = scan(q, "cn", ScanOperator.SEQ_SCAN)
        idx = scan(q, "cn", ScanOperator.INDEX_SCAN)
        assert model.node_cost(q, idx) >= model.node_cost(q, seq)

    def test_cmm_indexed_nested_loop_cheaper_than_merge(self, estimator, five_table_query):
        """Cmm models an index-nested-loop over a base-table inner side as
        ``left * (1 + tau)``, which beats a merge join's ``left + right`` when
        the inner table is large."""
        q = five_table_query
        model = CmmCostModel(estimator)
        nested = join(scan(q, "t"), scan(q, "mc"), JoinOperator.NESTED_LOOP)
        merged = join(scan(q, "t"), scan(q, "mc"), JoinOperator.MERGE_JOIN)
        assert model.node_cost(q, nested) < model.node_cost(q, merged)
