"""Tests for agent components: experience, exploration, timeouts, config."""

import pytest

from repro.agent.config import BalsaConfig
from repro.agent.experience import ExecutionRecord, ExperienceBuffer
from repro.agent.exploration import (
    CountBasedExploration,
    EpsilonGreedyExploration,
    NoExploration,
    make_exploration,
)
from repro.agent.timeout_policy import TimeoutPolicy
from repro.plans.builders import join, left_deep_plan, scan
from repro.plans.nodes import JoinOperator
from repro.search.beam import PlannerResult


@pytest.fixture
def buffer(three_table_query):
    return ExperienceBuffer(lambda name: three_table_query)


def _record(query, order, latency, operator=JoinOperator.HASH_JOIN, **kwargs):
    return ExecutionRecord(
        query_name=query.name,
        plan=left_deep_plan(query, order, operator),
        latency=latency,
        **kwargs,
    )


class TestExperienceBuffer:
    def test_visit_counts_and_unique_plans(self, buffer, three_table_query):
        q = three_table_query
        buffer.add(_record(q, ["t", "mc", "cn"], 1.0))
        buffer.add(_record(q, ["t", "mc", "cn"], 2.0))
        buffer.add(_record(q, ["cn", "mc", "t"], 3.0))
        plan = left_deep_plan(q, ["t", "mc", "cn"])
        assert buffer.visit_count(q.name, plan) == 2
        assert buffer.has_executed(q.name, plan)
        assert buffer.num_unique_plans() == 2
        assert len(buffer) == 3

    def test_best_latency_ignores_timeouts(self, buffer, three_table_query):
        q = three_table_query
        buffer.add(_record(q, ["t", "mc", "cn"], 4096.0, timed_out=True))
        assert buffer.best_latency(q.name) is None
        buffer.add(_record(q, ["cn", "mc", "t"], 2.5))
        assert buffer.best_latency(q.name) == 2.5

    def test_label_correction_uses_best_containing_execution(self, buffer, three_table_query):
        q = three_table_query
        # Two executions share the subplan Join(t, mc) scanned the same way.
        shared_prefix = join(scan(q, "t"), scan(q, "mc"))
        slow = join(shared_prefix, scan(q, "cn"), JoinOperator.NESTED_LOOP)
        fast = join(shared_prefix, scan(q, "cn"), JoinOperator.HASH_JOIN)
        buffer.add(ExecutionRecord(q.name, slow, latency=10.0))
        buffer.add(ExecutionRecord(q.name, fast, latency=1.0))
        assert buffer.corrected_label(q.name, shared_prefix) == 1.0
        assert buffer.corrected_label(q.name, slow) == 10.0
        assert buffer.corrected_label(q.name, fast) == 1.0

    def test_training_points_on_policy_filter(self, buffer, three_table_query):
        q = three_table_query
        buffer.add(_record(q, ["t", "mc", "cn"], 5.0, iteration=0))
        buffer.add(_record(q, ["cn", "mc", "t"], 3.0, iteration=1))
        all_points = buffer.training_points()
        latest = buffer.training_points(iteration=1)
        assert len(all_points) == 10  # two plans x five subplans
        assert len(latest) == 5

    def test_training_points_label_correction_spans_buffer(self, buffer, three_table_query):
        q = three_table_query
        buffer.add(_record(q, ["t", "mc", "cn"], 5.0, iteration=0))
        buffer.add(_record(q, ["t", "mc", "cn"], 1.0, iteration=1))
        points = buffer.training_points(iteration=0)
        # Even iteration-0 records get the improved label from iteration 1.
        assert all(p.label == 1.0 for p in points)

    def test_merged_with(self, three_table_query):
        q = three_table_query
        a = ExperienceBuffer(lambda name: q)
        b = ExperienceBuffer(lambda name: q)
        a.add(_record(q, ["t", "mc", "cn"], 1.0, agent_id=0))
        b.add(_record(q, ["cn", "mc", "t"], 2.0, agent_id=1))
        merged = a.merged_with([b])
        assert len(merged) == 2
        assert merged.num_unique_plans() == 2

    def test_agent_filter(self, buffer, three_table_query):
        q = three_table_query
        buffer.add(_record(q, ["t", "mc", "cn"], 1.0, agent_id=0))
        buffer.add(_record(q, ["cn", "mc", "t"], 2.0, agent_id=1))
        assert len(buffer.training_points(agent_id=1)) == 5


class TestExploration:
    def _planner_result(self, query):
        plans = [
            left_deep_plan(query, ["t", "mc", "cn"]),
            left_deep_plan(query, ["cn", "mc", "t"]),
            left_deep_plan(query, ["mc", "t", "cn"]),
        ]
        return PlannerResult(
            plans=plans,
            predicted_latencies=[1.0, 2.0, 3.0],
            planning_seconds=0.01,
        )

    def test_count_based_picks_best_unseen(self, buffer, three_table_query):
        q = three_table_query
        result = self._planner_result(q)
        strategy = CountBasedExploration()
        buffer.add(ExecutionRecord(q.name, result.plans[0], 1.0))
        chosen = strategy.choose(q, result, buffer)
        assert chosen.fingerprint() == result.plans[1].fingerprint()

    def test_count_based_falls_back_to_best(self, buffer, three_table_query):
        q = three_table_query
        result = self._planner_result(q)
        strategy = CountBasedExploration()
        for plan in result.plans:
            buffer.add(ExecutionRecord(q.name, plan, 1.0))
        assert strategy.choose(q, result, buffer) is result.best_plan

    def test_no_exploration_always_best(self, buffer, three_table_query):
        result = self._planner_result(three_table_query)
        assert NoExploration().choose(three_table_query, result, buffer) is result.best_plan

    def test_epsilon_greedy_sometimes_random(self, buffer, three_table_query):
        result = self._planner_result(three_table_query)
        strategy = EpsilonGreedyExploration(epsilon=1.0, seed=0)
        chosen = strategy.choose(three_table_query, result, buffer)
        # With epsilon = 1 the plan is always a random one (valid for the query).
        assert chosen.leaf_aliases == frozenset(three_table_query.aliases)

    def test_epsilon_zero_is_greedy(self, buffer, three_table_query):
        result = self._planner_result(three_table_query)
        strategy = EpsilonGreedyExploration(epsilon=0.0, seed=0)
        assert strategy.choose(three_table_query, result, buffer) is result.best_plan

    def test_factory(self):
        assert isinstance(make_exploration("count"), CountBasedExploration)
        assert isinstance(make_exploration("epsilon"), EpsilonGreedyExploration)
        assert isinstance(make_exploration("none"), NoExploration)
        with pytest.raises(ValueError):
            make_exploration("bogus")

    def test_epsilon_validation(self):
        with pytest.raises(ValueError):
            EpsilonGreedyExploration(epsilon=1.5)


class TestTimeoutPolicy:
    def test_no_timeout_before_first_iteration(self):
        policy = TimeoutPolicy(slack=2.0)
        assert policy.current_timeout() is None

    def test_timeout_after_observation(self):
        policy = TimeoutPolicy(slack=2.0)
        policy.observe_iteration(3.0)
        assert policy.current_timeout() == 6.0

    def test_timeout_tightens_monotonically(self):
        policy = TimeoutPolicy(slack=2.0)
        policy.observe_iteration(3.0)
        policy.observe_iteration(5.0)
        assert policy.current_timeout() == 6.0
        policy.observe_iteration(1.0)
        assert policy.current_timeout() == 2.0

    def test_disabled_policy_never_times_out(self):
        policy = TimeoutPolicy(enabled=False)
        policy.observe_iteration(3.0)
        assert policy.current_timeout() is None

    def test_label_for(self):
        policy = TimeoutPolicy(timeout_label=4096.0)
        assert policy.label_for(2.0, timed_out=False) == 2.0
        assert policy.label_for(2.0, timed_out=True) == 4096.0

    def test_zero_runtime_ignored(self):
        policy = TimeoutPolicy()
        policy.observe_iteration(0.0)
        assert policy.current_timeout() is None


class TestBalsaConfig:
    def test_defaults_match_paper(self):
        config = BalsaConfig()
        assert config.beam_size == 20
        assert config.top_k == 10
        assert config.timeout_slack == 2.0
        assert config.timeout_label == 4096.0
        assert config.on_policy and config.use_timeouts and config.use_simulation

    def test_small_preset_is_lighter(self):
        small = BalsaConfig.small()
        assert small.beam_size < BalsaConfig().beam_size
        assert small.num_iterations < BalsaConfig().num_iterations

    def test_with_seed_propagates_to_network(self):
        config = BalsaConfig.small(seed=0)
        reseeded = config.with_seed(7)
        assert reseeded.seed == 7
        assert reseeded.network.seed == 7

    def test_paper_preset(self):
        assert BalsaConfig.paper().num_iterations == 500
