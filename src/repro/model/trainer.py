"""Supervised training of the value network.

Used in two places:

- simulation bootstrapping (§3): many epochs over the large ``D_sim`` dataset,
  with a 10% validation split and early stopping;
- real-execution updates (§4.1): a handful of epochs per iteration, either on
  the latest iteration's data only (on-policy) or on the full experience
  (Neo-style retraining).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.featurization.featurizer import FeaturizedExample
from repro.model.value_network import ValueNetwork
from repro.nn.early_stopping import EarlyStopping
from repro.nn.losses import mse_loss
from repro.nn.optim import Adam
from repro.utils.rng import new_rng


@dataclass
class TrainingHistory:
    """Loss history of one training run.

    Attributes:
        train_losses: Per-epoch mean training loss (normalised label space).
        validation_losses: Per-epoch validation loss (empty if no split).
        epochs_run: Number of epochs actually executed.
        stopped_early: Whether early stopping triggered.
    """

    train_losses: list[float] = field(default_factory=list)
    validation_losses: list[float] = field(default_factory=list)
    epochs_run: int = 0
    stopped_early: bool = False


class ValueNetworkTrainer:
    """Minibatch Adam trainer with optional validation split and early stopping.

    Args:
        network: The value network to train.
        learning_rate: Adam step size.
        batch_size: Minibatch size.
        max_epochs: Upper bound on epochs.
        validation_fraction: Fraction of examples held out for early stopping
            (0 disables the split; the paper uses 10%).
        patience: Early-stopping patience in epochs.
        gradient_clip: Global gradient-norm clip.
        seed: Seed for shuffling and splitting.
    """

    def __init__(
        self,
        network: ValueNetwork,
        learning_rate: float = 1e-3,
        batch_size: int = 128,
        max_epochs: int = 30,
        validation_fraction: float = 0.1,
        patience: int = 3,
        gradient_clip: float = 10.0,
        seed: int = 0,
    ):
        self.network = network
        self.learning_rate = learning_rate
        self.batch_size = batch_size
        self.max_epochs = max_epochs
        self.validation_fraction = validation_fraction
        self.patience = patience
        self.gradient_clip = gradient_clip
        self.seed = seed

    # ------------------------------------------------------------------ #
    # Training
    # ------------------------------------------------------------------ #
    def fit(
        self,
        examples: Sequence[FeaturizedExample],
        labels: Sequence[float],
        refit_label_transform: bool = True,
        max_epochs: int | None = None,
    ) -> TrainingHistory:
        """Train the network on (example, label) pairs.

        Args:
            examples: Featurised (query, plan) pairs.
            labels: Raw-unit targets (costs or latencies).
            refit_label_transform: Refit the log/standardise transform on these
                labels before training (disable for incremental on-policy
                updates so the target space stays stable across iterations).
            max_epochs: Optional override of the configured epoch budget.

        Returns:
            The :class:`TrainingHistory`.
        """
        if len(examples) != len(labels):
            raise ValueError("examples and labels must have equal length")
        if not examples:
            return TrainingHistory()
        labels_array = np.asarray(labels, dtype=np.float64)
        if refit_label_transform:
            self.network.fit_label_transform(labels_array)
        targets = self.network.transform_labels(labels_array)

        rng = new_rng(self.seed)
        order = rng.permutation(len(examples))
        num_validation = (
            int(len(examples) * self.validation_fraction)
            if len(examples) >= 20 and self.validation_fraction > 0
            else 0
        )
        validation_idx = order[:num_validation]
        train_idx = order[num_validation:]

        optimizer = Adam(self.network.parameters(), learning_rate=self.learning_rate)
        stopper = EarlyStopping(patience=self.patience)
        history = TrainingHistory()
        best_state = None
        epoch_budget = max_epochs if max_epochs is not None else self.max_epochs

        for epoch in range(epoch_budget):
            rng.shuffle(train_idx)
            epoch_losses = []
            for start in range(0, len(train_idx), self.batch_size):
                batch_idx = train_idx[start : start + self.batch_size]
                batch_examples = [examples[i] for i in batch_idx]
                batch_targets = targets[batch_idx]
                queries, tree_batch = self.network.featurizer.batch(batch_examples)
                optimizer.zero_grad()
                outputs = self.network.forward(queries, tree_batch, training=True)
                loss, grad = mse_loss(outputs, batch_targets)
                self.network.backward(grad)
                optimizer.clip_gradients(self.gradient_clip)
                optimizer.step()
                epoch_losses.append(loss)
            history.train_losses.append(float(np.mean(epoch_losses)) if epoch_losses else 0.0)
            history.epochs_run = epoch + 1

            if num_validation:
                validation_loss = self._evaluate(
                    [examples[i] for i in validation_idx], targets[validation_idx]
                )
                history.validation_losses.append(validation_loss)
                if validation_loss <= stopper.best_loss:
                    best_state = self.network.get_state()
                if stopper.update(validation_loss, epoch):
                    history.stopped_early = True
                    break

        if best_state is not None:
            self.network.set_state(best_state)
        else:
            # set_state already bumps; bump here so plan caches keyed on the
            # network's version_key() never serve pre-training predictions.
            self.network.bump_version()
        return history

    # ------------------------------------------------------------------ #
    # Evaluation
    # ------------------------------------------------------------------ #
    def _evaluate(
        self, examples: Sequence[FeaturizedExample], targets: np.ndarray
    ) -> float:
        total = 0.0
        count = 0
        for start in range(0, len(examples), self.batch_size):
            batch = list(examples[start : start + self.batch_size])
            queries, tree_batch = self.network.featurizer.batch(batch)
            outputs = self.network.forward(queries, tree_batch, training=False)
            loss, _ = mse_loss(outputs, targets[start : start + self.batch_size])
            total += loss * len(batch)
            count += len(batch)
        return total / max(count, 1)
