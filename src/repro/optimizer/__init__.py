"""Classical (non-learned) optimizers.

These serve three roles in the reproduction:

- the **expert baselines** the paper compares against
  (:func:`make_postgres_optimizer` — bushy search space, like PostgreSQL;
  :func:`make_commdb_optimizer` — left-deep-only space, like the anonymised
  commercial system);
- the **data-collection procedure** for simulation learning
  (:class:`DynamicProgrammingOptimizer` can emit every plan it enumerates,
  paper §3.2);
- the **random-plan generators** used by the §3 motivation experiment and the
  ε-greedy exploration ablation (:class:`QuickPickOptimizer`,
  :func:`random_plan`).
"""

from repro.optimizer.dp import DpResult, DynamicProgrammingOptimizer, EnumeratedPlan
from repro.optimizer.greedy import GreedyOptimizer
from repro.optimizer.quickpick import QuickPickOptimizer, random_plan
from repro.optimizer.expert import (
    ExpertOptimizer,
    ExpertPlannerStats,
    make_commdb_optimizer,
    make_postgres_optimizer,
)

__all__ = [
    "DpResult",
    "DynamicProgrammingOptimizer",
    "EnumeratedPlan",
    "GreedyOptimizer",
    "QuickPickOptimizer",
    "random_plan",
    "ExpertOptimizer",
    "ExpertPlannerStats",
    "make_commdb_optimizer",
    "make_postgres_optimizer",
]
