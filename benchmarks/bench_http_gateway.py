"""HTTP gateway load benchmark: p50/p99 latency and QPS vs the in-process path.

Not a paper figure — this measures the serving gateway added on top of the
in-process stack.  The bench boots a :class:`~repro.server.app.PlanningServer`
on an ephemeral loopback port, drives it with a multi-threaded load-generating
client (every request a real HTTP exchange, queries referenced by name), and
compares against the identical workload planned through the in-process
``PlannerService`` directly:

- **cold pass** — each distinct (query, k) planned once (cache misses);
- **warm pass** — the load clients hammer the same workload concurrently, so
  requests ride the plan cache exactly as steady-state traffic would;
- the in-process warm pass over the same request stream isolates the HTTP
  overhead (connection setup + JSON codec + threading) per request.

Headline figures land in ``benchmark.extra_info`` so ``--benchmark-json``
artifacts expose them to CI: ``http_warm_p50_ms``, ``http_warm_p99_ms``,
``http_qps``, ``inproc_warm_p50_ms``, ``http_overhead_p50_ms``, and
``failed_requests`` (must be 0).
"""

from __future__ import annotations

import json
import os
import threading
import time
import urllib.request

from benchmarks.conftest import run_once
from repro.model.value_network import ValueNetwork, ValueNetworkConfig
from repro.planning.envelope import PlanRequest
from repro.search.beam import BeamSearchPlanner
from repro.server import PlanningServer
from repro.service.service import PlannerService
from repro.workloads.benchmark import make_job_benchmark

#: CI smoke mode (REPRO_BENCH_QUICK=1) shrinks the workload further.
QUICK = os.environ.get("REPRO_BENCH_QUICK", "") == "1"

NUM_CLIENTS = 2 if QUICK else 4
REQUESTS_PER_CLIENT = 20 if QUICK else 100


def _percentile(values: list[float], fraction: float) -> float:
    ordered = sorted(values)
    if not ordered:
        return 0.0
    index = min(int(fraction * len(ordered)), len(ordered) - 1)
    return ordered[index]


def _post_plan(base_url: str, payload: dict, timeout: float = 60.0) -> dict:
    request = urllib.request.Request(
        f"{base_url}/v1/plan",
        data=json.dumps(payload).encode("utf-8"),
        method="POST",
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=timeout) as response:
        if response.status != 200:
            raise RuntimeError(f"HTTP {response.status}")
        return json.loads(response.read().decode("utf-8"))


def _run_gateway_load() -> dict:
    bundle = make_job_benchmark(
        fact_rows=300, num_queries=8, num_templates=4, test_size=2,
        seed=0, size_range=(3, 4),
    )
    queries = list(bundle.train_queries)
    network = ValueNetwork(
        bundle.featurizer,
        ValueNetworkConfig(
            query_hidden=16, query_embedding=8, tree_channels=(16, 8),
            head_hidden=8, seed=0,
        ),
    )
    planner = BeamSearchPlanner(beam_size=3, top_k=2, enumerate_scan_operators=False)
    service = PlannerService(network, planner=planner, max_workers=4)
    gateway = PlanningServer(service, queries=queries).start()
    failures = [0]
    try:
        base_url = gateway.base_url

        # Cold pass: every distinct query planned once over HTTP.
        cold_latencies: list[float] = []
        for query in queries:
            started = time.perf_counter()
            body = _post_plan(base_url, {"query": query.name, "k": 2})
            cold_latencies.append(time.perf_counter() - started)
            assert body["plans"], f"no plans for {query.name}"

        # Warm pass: concurrent clients over the (now cached) workload.
        latencies_per_client: list[list[float]] = [[] for _ in range(NUM_CLIENTS)]

        def client(slot: int) -> None:
            for index in range(REQUESTS_PER_CLIENT):
                query = queries[(slot + index) % len(queries)]
                started = time.perf_counter()
                try:
                    body = _post_plan(base_url, {"query": query.name, "k": 2})
                    if not body["plans"]:
                        failures[0] += 1
                except Exception:  # noqa: BLE001 - counted, not hidden
                    failures[0] += 1
                latencies_per_client[slot].append(time.perf_counter() - started)

        threads = [
            threading.Thread(target=client, args=(slot,)) for slot in range(NUM_CLIENTS)
        ]
        warm_started = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        warm_seconds = time.perf_counter() - warm_started
        warm_latencies = [value for chunk in latencies_per_client for value in chunk]

        # In-process warm pass over the identical request stream.
        inproc_latencies: list[float] = []
        for index in range(NUM_CLIENTS * REQUESTS_PER_CLIENT):
            query = queries[index % len(queries)]
            started = time.perf_counter()
            response = service.plan(PlanRequest(query=query, k=2))
            inproc_latencies.append(time.perf_counter() - started)
            assert response.plans

        metrics = service.metrics()
    finally:
        gateway.close()
        service.close()

    http_p50 = _percentile(warm_latencies, 0.50)
    inproc_p50 = _percentile(inproc_latencies, 0.50)
    return {
        "queries": len(queries),
        "clients": NUM_CLIENTS,
        "http_requests": len(warm_latencies) + len(cold_latencies),
        "failed_requests": failures[0],
        "http_cold_p50_ms": _percentile(cold_latencies, 0.50) * 1e3,
        "http_warm_p50_ms": http_p50 * 1e3,
        "http_warm_p99_ms": _percentile(warm_latencies, 0.99) * 1e3,
        "http_qps": len(warm_latencies) / max(warm_seconds, 1e-9),
        "inproc_warm_p50_ms": inproc_p50 * 1e3,
        "inproc_warm_p99_ms": _percentile(inproc_latencies, 0.99) * 1e3,
        "http_overhead_p50_ms": (http_p50 - inproc_p50) * 1e3,
        "service_cache_hit_rate": metrics.hit_rate,
    }


def bench_http_gateway(benchmark):
    result = run_once(benchmark, _run_gateway_load)
    print()
    print(
        f"gateway load: {result['http_requests']} HTTP requests from "
        f"{result['clients']} clients, {result['failed_requests']} failed"
    )
    print(
        f"warm latency: http p50 {result['http_warm_p50_ms']:.2f}ms / "
        f"p99 {result['http_warm_p99_ms']:.2f}ms at "
        f"{result['http_qps']:.0f} q/s; in-process p50 "
        f"{result['inproc_warm_p50_ms']:.2f}ms "
        f"(HTTP overhead {result['http_overhead_p50_ms']:.2f}ms/request)"
    )
    assert result["failed_requests"] == 0
    for key, value in result.items():
        benchmark.extra_info[key] = round(float(value), 4)
