"""Per-request statistics and the aggregated service report."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.scoring.protocol import ScoringBridgeStats
from repro.service.cache import CacheStats


@dataclass
class RequestStats:
    """Timing and cache status of one planning request.

    Attributes:
        query_name: Name of the planned query.
        cache_hit: Whether the plan cache answered the request.
        coalesced: Whether the request piggybacked on an identical in-flight
            request instead of planning on its own (single-flight dedup).
        queue_wait_seconds: Time between submission and a worker picking the
            request up.
        planning_seconds: Time spent inside the planner (0 for cache hits).
        service_seconds: Total time inside the service (queue wait included).
        model_version: Version key of the planner/model that served the
            request.
        planner_name: Registry identity of the serving planner.
        states_expanded: Search states expanded for this request (0 for cache
            hits and coalesced joins — the work is charged to the leader).
        plans_scored: Candidate plans scored for this request (same charging
            rule).
        deadline_exceeded: Whether the planner cut its search short because
            the request's planning budget ran out.
        priority: The request's scheduling priority.
    """

    query_name: str
    cache_hit: bool
    coalesced: bool
    queue_wait_seconds: float
    planning_seconds: float
    service_seconds: float
    model_version: object = None
    planner_name: str = ""
    states_expanded: int = 0
    plans_scored: int = 0
    deadline_exceeded: bool = False
    priority: int = 0


@dataclass
class ServiceMetrics:
    """Aggregated report over every request a service has handled.

    Attributes:
        requests: Total requests served.
        cache_hits: Requests answered by the plan cache.
        cache_misses: Requests that ran a planner.
        coalesced_requests: Requests deduplicated onto an in-flight search.
        rejected_requests: Requests refused admission (expired deadline or
            over capacity) with :class:`~repro.planning.envelope.AdmissionError`.
        deadline_exceeded_requests: Served requests whose search was cut short
            by its planning budget.
        swaps: Hot swaps of the serving model (lifecycle promotions and
            rollbacks).
        promotions_rejected: Candidate models the shadow-evaluation gate
            refused to promote.
        warmed_entries: Plan-cache entries populated by cache warming (fresh
            searches run by :meth:`PlannerService.warm_cache`, typically right
            after a hot swap).
        scoring_backend_failures: Scoring-backend submits that failed with a
            typed :class:`~repro.scoring.protocol.ScoringBackendError`.
        scoring_fallbacks: Times the service abandoned its configured scoring
            backend for the in-process fallback (at most 1 per service life).
        total_states_expanded: Summed search-state expansions (fresh searches
            only).
        total_plans_scored: Summed candidate plans scored (fresh searches
            only).
        total_queue_wait_seconds: Summed queue wait across requests.
        max_queue_wait_seconds: Worst observed queue wait.
        total_planning_seconds: Summed planner time (misses only).
        total_service_seconds: Summed end-to-end service time.
        wall_seconds: Wall-clock time between the first submission and the
            last completion since the service started (or was reset).
        cache: Plan-cache counters.
        scoring: Scoring-bridge counters (zeros when coalescing is off).
    """

    requests: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    coalesced_requests: int = 0
    rejected_requests: int = 0
    deadline_exceeded_requests: int = 0
    swaps: int = 0
    promotions_rejected: int = 0
    warmed_entries: int = 0
    scoring_backend_failures: int = 0
    scoring_fallbacks: int = 0
    total_states_expanded: int = 0
    total_plans_scored: int = 0
    total_queue_wait_seconds: float = 0.0
    max_queue_wait_seconds: float = 0.0
    total_planning_seconds: float = 0.0
    total_service_seconds: float = 0.0
    wall_seconds: float = 0.0
    cache: CacheStats = field(default_factory=CacheStats)
    scoring: ScoringBridgeStats = field(default_factory=ScoringBridgeStats)

    @property
    def hit_rate(self) -> float:
        """Fraction of requests answered from the cache."""
        return self.cache_hits / self.requests if self.requests else 0.0

    @property
    def mean_queue_wait_seconds(self) -> float:
        """Average queue wait per request."""
        return self.total_queue_wait_seconds / self.requests if self.requests else 0.0

    @property
    def mean_planning_seconds(self) -> float:
        """Average planner time per cache miss."""
        return self.total_planning_seconds / self.cache_misses if self.cache_misses else 0.0

    @property
    def queries_per_second(self) -> float:
        """Throughput over the observed wall-clock window."""
        return self.requests / self.wall_seconds if self.wall_seconds > 0 else 0.0

    def as_dict(self) -> dict:
        """Flatten the report for JSON output (benchmarks, CI artifacts)."""
        return {
            "requests": self.requests,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "coalesced_requests": self.coalesced_requests,
            "rejected_requests": self.rejected_requests,
            "deadline_exceeded_requests": self.deadline_exceeded_requests,
            "swaps": self.swaps,
            "promotions_rejected": self.promotions_rejected,
            "warmed_entries": self.warmed_entries,
            "scoring_backend_failures": self.scoring_backend_failures,
            "scoring_fallbacks": self.scoring_fallbacks,
            "total_states_expanded": self.total_states_expanded,
            "total_plans_scored": self.total_plans_scored,
            "hit_rate": self.hit_rate,
            "mean_queue_wait_seconds": self.mean_queue_wait_seconds,
            "max_queue_wait_seconds": self.max_queue_wait_seconds,
            "mean_planning_seconds": self.mean_planning_seconds,
            "total_planning_seconds": self.total_planning_seconds,
            "total_service_seconds": self.total_service_seconds,
            "wall_seconds": self.wall_seconds,
            "queries_per_second": self.queries_per_second,
            "cache_size": self.cache.size,
            "cache_evictions": self.cache.evictions,
            "scoring_requests": self.scoring.requests,
            "scoring_examples": self.scoring.examples,
            "scoring_forward_batches": self.scoring.forward_batches,
            "scoring_mean_batch": self.scoring.mean_batch_examples,
            "scoring_max_batch": self.scoring.max_batch_examples,
        }

    def to_json_dict(self) -> dict:
        """Faithful JSON form (nested cache/scoring counters preserved).

        Unlike :meth:`as_dict` — which flattens a headline subset for
        benchmark artifacts — this round-trips through
        :meth:`from_json_dict`, so gateway clients can reconstruct the full
        report programmatically.
        """
        from repro.server.wire import service_metrics_to_json_dict

        return service_metrics_to_json_dict(self)

    @classmethod
    def from_json_dict(cls, payload: object) -> "ServiceMetrics":
        """Decode :meth:`to_json_dict` output; ``WireFormatError`` on bad input."""
        from repro.server.wire import service_metrics_from_json_dict

        return service_metrics_from_json_dict(payload)

    def format_report(self) -> str:
        """A short human-readable summary."""
        lines = [
            f"requests={self.requests} hits={self.cache_hits} "
            f"misses={self.cache_misses} coalesced={self.coalesced_requests} "
            f"rejected={self.rejected_requests} hit_rate={self.hit_rate:.2%}",
            f"queue_wait mean={self.mean_queue_wait_seconds * 1e3:.2f}ms "
            f"max={self.max_queue_wait_seconds * 1e3:.2f}ms",
            f"planning mean={self.mean_planning_seconds * 1e3:.2f}ms "
            f"total={self.total_planning_seconds:.3f}s "
            f"states_expanded={self.total_states_expanded} "
            f"plans_scored={self.total_plans_scored}",
            f"throughput={self.queries_per_second:.1f} q/s "
            f"over {self.wall_seconds:.3f}s",
        ]
        if self.deadline_exceeded_requests:
            lines.append(f"deadline_exceeded={self.deadline_exceeded_requests}")
        if self.swaps or self.promotions_rejected or self.warmed_entries:
            lines.append(
                f"lifecycle swaps={self.swaps} "
                f"promotions_rejected={self.promotions_rejected} "
                f"warmed_entries={self.warmed_entries}"
            )
        if self.scoring.forward_batches:
            lines.append(
                f"scoring batches={self.scoring.forward_batches} "
                f"mean_batch={self.scoring.mean_batch_examples:.1f} "
                f"max_batch={self.scoring.max_batch_examples}"
            )
        if self.scoring_backend_failures or self.scoring_fallbacks:
            lines.append(
                f"scoring backend_failures={self.scoring_backend_failures} "
                f"fallbacks={self.scoring_fallbacks}"
            )
        return "\n".join(lines)
