"""Tests for the watchtower: profiling, SLO burn rates, alerts, actions.

Covers the unit layer (sampling profiler + folded-stack merge/flamegraph,
burn-rate math with an injected clock, the pending → firing → resolved alert
state machine, gauge-aggregation merge edge cases, the token-bucket log
filter, the autoscaler's arrival-slope signal), the gateway integration
(``/v1/traces/<trace_id>``, ``/v1/profile``, ``/v1/alerts``, watchtower
series on ``/metrics``), and the acceptance drill end to end: an injected
latency regression drives an SLO alert from pending to firing on the event
bus, pauses online-trainer promotions and tightens the traffic shadower,
then resolves after recovery — with zero failed foreground requests.
"""

from __future__ import annotations

import json
import logging
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.costmodel.cout import CoutCostModel
from repro.experience import OnlineTrainerLoop
from repro.lifecycle import ModelLifecycle, ModelRegistry, ShadowEvaluator
from repro.model.value_network import ValueNetwork, ValueNetworkConfig
from repro.scoring.autoscale import AutoscalerConfig, PoolAutoscaler
from repro.search.beam import BeamSearchPlanner
from repro.server import PlanningServer, TrafficShadower
from repro.service.service import PlannerService
from repro.telemetry import (
    AlertManager,
    MetricsRegistry,
    RateLimitFilter,
    SamplingProfiler,
    SeriesIndex,
    SloEvaluator,
    SloObjective,
    default_slo_objectives,
    emit_event,
    flamegraph_from_profile,
    get_event_bus,
    logs_suppressed_total,
    merge_profiles,
    merge_snapshots,
    new_trace_id,
)
from repro.telemetry import profiling
from repro.telemetry.profiling import (
    get_profiler,
    hz_from_env,
    start_profiler,
    stop_profiler,
    write_profile_atomic,
)
from repro.workloads.benchmark import make_job_benchmark


def small_planner() -> BeamSearchPlanner:
    return BeamSearchPlanner(beam_size=2, top_k=2, enumerate_scan_operators=False)


@pytest.fixture(scope="module")
def bench():
    return make_job_benchmark(
        fact_rows=200, num_queries=6, num_templates=3, test_size=2,
        seed=3, size_range=(3, 4),
    )


@pytest.fixture(scope="module")
def network(bench) -> ValueNetwork:
    return ValueNetwork(
        bench.featurizer,
        ValueNetworkConfig(
            query_hidden=16, query_embedding=8, tree_channels=(16, 8),
            head_hidden=8, seed=3,
        ),
    )


def http(method: str, url: str, payload=None, headers=None, timeout: float = 30.0):
    data = None
    send_headers = dict(headers or {})
    if payload is not None:
        data = json.dumps(payload).encode("utf-8")
        send_headers["Content-Type"] = "application/json"
    request = urllib.request.Request(
        url, data=data, method=method, headers=send_headers
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return (
                response.status,
                json.loads(response.read().decode("utf-8")),
                dict(response.headers),
            )
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read().decode("utf-8")), dict(error.headers)


def _record(level: int, message: str = "m") -> logging.LogRecord:
    return logging.LogRecord("t", level, __file__, 1, message, None, None)


# ---------------------------------------------------------------------- #
# Sampling profiler
# ---------------------------------------------------------------------- #
def _watchtower_spin_loop(stop: threading.Event) -> None:
    """Distinctively named so its frames are findable in folded stacks."""
    while not stop.is_set():
        sum(range(256))


class TestSamplingProfiler:
    def test_sampler_sees_a_busy_thread(self):
        stop = threading.Event()
        worker = threading.Thread(target=_watchtower_spin_loop, args=(stop,))
        worker.start()
        profiler = SamplingProfiler(hz=250.0, process="unit")
        profiler.start()
        try:
            time.sleep(0.15)
        finally:
            profiler.stop()
            stop.set()
            worker.join()
        snapshot = profiler.snapshot()
        assert snapshot["process"] == "unit"
        assert snapshot["samples"] > 0
        assert snapshot["duration_seconds"] > 0.0
        assert any(
            "_watchtower_spin_loop" in stack for stack in snapshot["stacks"]
        ), snapshot["stacks"]
        # Folded keys are root-first file:function frames.
        assert all(":" in key for key in snapshot["stacks"])

    def test_merge_sums_stacks_and_skips_garbage(self):
        one = {
            "process": "a", "samples": 2, "threads_sampled": 2,
            "duration_seconds": 1.0, "stacks": {"f:x;f:y": 2},
        }
        two = {
            "process": "b", "samples": 3, "threads_sampled": 4,
            "duration_seconds": 0.5, "stacks": {"f:x;f:y": 1, "f:z": 3},
        }
        merged = merge_profiles([one, None, 42, {"stacks": "not-a-dict"}, two])
        assert merged["stacks"] == {"f:x;f:y": 3, "f:z": 3}
        assert merged["samples"] == 5
        assert merged["threads_sampled"] == 6
        assert merged["duration_seconds"] == pytest.approx(1.5)
        assert merged["processes"] == ["a", "b"]

    def test_flamegraph_tree_shape_and_ordering(self):
        profile = {"stacks": {"a:f;b:g": 3, "a:f;c:h": 1, "d:i": 2}}
        tree = flamegraph_from_profile(profile)
        assert tree["name"] == "all" and tree["value"] == 6
        # Children sort by descending value.
        names = [child["name"] for child in tree["children"]]
        assert names == ["a:f", "d:i"]
        root_af = tree["children"][0]
        assert root_af["value"] == 4
        assert [c["value"] for c in root_af["children"]] == [3, 1]
        assert "children" not in tree["children"][1]

    def test_distinct_stack_bound_folds_into_overflow(self, monkeypatch):
        monkeypatch.setattr(profiling, "MAX_DISTINCT_STACKS", 0)
        stop = threading.Event()
        worker = threading.Thread(target=_watchtower_spin_loop, args=(stop,))
        worker.start()
        profiler = SamplingProfiler(hz=50.0)
        try:
            assert profiler.sample_once() >= 1
        finally:
            stop.set()
            worker.join()
        assert set(profiler.snapshot()["stacks"]) == {"<overflow>"}

    def test_global_profiler_is_refcounted(self):
        first = start_profiler(process="ref-test")
        second = start_profiler()
        try:
            assert first is not None and second is first
            assert get_profiler() is first and first.running
            stop_profiler()  # one release: still running for the other holder
            assert get_profiler() is first and first.running
        finally:
            stop_profiler()
        assert get_profiler() is None
        assert not first.running

    def test_env_kill_switch_disables_acquisition(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROFILE", "0")
        assert start_profiler() is None
        assert get_profiler() is None

    def test_hz_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROFILE_HZ", "31.5")
        assert hz_from_env() == 31.5
        monkeypatch.setenv("REPRO_PROFILE_HZ", "not-a-number")
        assert hz_from_env(12.0) == 12.0
        monkeypatch.setenv("REPRO_PROFILE_HZ", "-5")
        assert hz_from_env(12.0) == 12.0

    def test_atomic_profile_write_round_trips(self, tmp_path):
        path = str(tmp_path / "profile.json")
        write_profile_atomic({"stacks": {"a:b": 1}, "samples": 1}, path)
        with open(path, encoding="utf-8") as handle:
            assert json.load(handle)["stacks"] == {"a:b": 1}


# ---------------------------------------------------------------------- #
# SLO burn-rate evaluation
# ---------------------------------------------------------------------- #
def _counter_snapshot(bad: float, total: float) -> dict:
    return {
        "metrics": [
            {"name": "t_bad_total", "kind": "counter", "labels": {}, "value": bad},
            {"name": "t_events_total", "kind": "counter", "labels": {}, "value": total},
        ]
    }


def _ratio_objective(objective: float = 0.9, threshold: float = 2.0) -> SloObjective:
    return SloObjective(
        name="unit_ratio",
        objective=objective,
        extract=lambda index: (
            index.value("t_bad_total"), index.value("t_events_total")
        ),
        burn_threshold=threshold,
    )


class TestSloEvaluator:
    def test_burn_rate_math_over_both_windows(self):
        evaluator = SloEvaluator(
            [_ratio_objective(objective=0.9, threshold=2.0)],
            fast_window_seconds=5.0,
            slow_window_seconds=20.0,
        )
        evaluator.observe(_counter_snapshot(0, 0), now=0.0)
        evaluator.observe(_counter_snapshot(0, 100), now=1.0)
        # 50 bad of 100 new events: ratio 0.5 against a 0.1 budget -> burn 5.
        (status,) = evaluator.observe(_counter_snapshot(50, 200), now=2.0)
        assert status.fast_burn_rate == pytest.approx(50 / 200 / 0.1)
        assert status.slow_burn_rate == pytest.approx(50 / 200 / 0.1)
        assert status.breaching

    def test_fast_window_recovers_before_slow(self):
        evaluator = SloEvaluator(
            [_ratio_objective(objective=0.9, threshold=2.0)],
            fast_window_seconds=2.0,
            slow_window_seconds=30.0,
        )
        evaluator.observe(_counter_snapshot(0, 0), now=0.0)
        evaluator.observe(_counter_snapshot(40, 100), now=1.0)  # bad burst
        # Then a clean stretch: fast window sees only good events, slow
        # window still remembers the burst -> no longer breaching (AND).
        (status,) = evaluator.observe(_counter_snapshot(40, 500), now=5.0)
        assert status.fast_burn_rate == 0.0
        assert status.slow_burn_rate > 0.0
        assert not status.breaching

    def test_counter_reset_restarts_history(self):
        evaluator = SloEvaluator(
            [_ratio_objective()], fast_window_seconds=5.0, slow_window_seconds=5.0
        )
        evaluator.observe(_counter_snapshot(50, 100), now=0.0)
        # A restarted process reports smaller cumulative counters; deltas
        # against the old history would be negative, so it resets instead.
        (status,) = evaluator.observe(_counter_snapshot(0, 10), now=1.0)
        assert status.fast_burn_rate == 0.0 and not status.breaching

    def test_extractor_errors_count_as_no_evidence(self):
        def boom(index):
            raise KeyError("missing subsystem")

        objective = SloObjective(name="boom", objective=0.9, extract=boom)
        evaluator = SloEvaluator(
            [objective], fast_window_seconds=1.0, slow_window_seconds=1.0
        )
        (status,) = evaluator.observe(_counter_snapshot(1, 1), now=0.0)
        assert status.event_total == 0.0 and not status.breaching

    def test_histogram_split_rounds_toward_bad(self):
        registry = MetricsRegistry()
        hist = registry.histogram("t_lat_seconds", "t", buckets=(0.01, 0.1, 1.0))
        for value in (0.005, 0.05, 0.5, 5.0):
            hist.observe(value)
        index = SeriesIndex(registry.snapshot())
        # Threshold on a bound: buckets at or under 0.1 are good.
        assert index.histogram_split("t_lat_seconds", 0.1) == (2.0, 4.0)
        # Threshold between bounds rounds toward flagging more bad: the
        # (0.01, 0.1] bucket cannot be proven under 0.05, so it counts bad.
        assert index.histogram_split("t_lat_seconds", 0.05) == (3.0, 4.0)

    def test_default_objectives_cover_the_five_slos(self):
        names = {o.name for o in default_slo_objectives()}
        assert names == {
            "served_latency_p99",
            "http_error_rate",
            "plan_cache_hit_rate",
            "scorer_crash_rate",
            "sink_drop_rate",
        }

    def test_window_and_duplicate_validation(self):
        with pytest.raises(ValueError):
            SloEvaluator([], fast_window_seconds=10.0, slow_window_seconds=5.0)
        with pytest.raises(ValueError):
            SloEvaluator([_ratio_objective(), _ratio_objective()])
        with pytest.raises(ValueError):
            SloObjective(name="x", objective=1.5, extract=lambda i: (0, 0))


# ---------------------------------------------------------------------- #
# Alert state machine
# ---------------------------------------------------------------------- #
class TestAlertManager:
    def make_manager(self, **kwargs):
        events: list[dict] = []

        def emit(kind, **fields):
            events.append({"kind": kind, **fields})

        evaluator = SloEvaluator(
            [_ratio_objective(objective=0.9, threshold=2.0)],
            fast_window_seconds=100.0,
            slow_window_seconds=100.0,
        )
        defaults = dict(
            pending_for_seconds=2.0, renotify_interval_seconds=10.0, emit=emit
        )
        defaults.update(kwargs)
        return AlertManager(evaluator, **defaults), events

    def test_pending_to_firing_to_resolved(self):
        manager, events = self.make_manager()
        manager.evaluate(_counter_snapshot(0, 0), now=0.0)
        manager.evaluate(_counter_snapshot(90, 100), now=1.0)  # breach begins
        assert manager.pending() == ["unit_ratio"] and not events

        manager.evaluate(_counter_snapshot(180, 200), now=2.0)  # still pending
        assert manager.pending() == ["unit_ratio"] and not events

        manager.evaluate(_counter_snapshot(270, 300), now=3.5)  # past pending_for
        assert manager.firing() == ["unit_ratio"]
        assert len(events) == 1 and events[0]["state"] == "firing"
        assert events[0]["kind"] == "alert" and events[0]["notify_count"] == 1

        # Firing again inside the renotify interval: deduped, no new event.
        manager.evaluate(_counter_snapshot(360, 400), now=4.0)
        assert len(events) == 1

        # Past the renotify interval: one repeat notification.
        manager.evaluate(_counter_snapshot(450, 500), now=14.0)
        assert len(events) == 2 and events[1]["notify_count"] == 2

        # Recovery: only good events from here; both burn windows are wide,
        # so feed enough good traffic to dilute the bad fraction under
        # threshold * budget (0.2).
        manager.evaluate(_counter_snapshot(450, 5000), now=15.0)
        assert manager.firing() == [] and manager.pending() == []
        assert events[-1]["state"] == "resolved"
        payload = manager.to_json_dict()
        assert [a["name"] for a in payload["recently_resolved"]] == ["unit_ratio"]
        alert = payload["recently_resolved"][0]
        assert alert["fired_at"] > alert["since"]  # it passed through pending
        assert payload["evaluations"] == 7

    def test_pending_blip_is_absorbed_silently(self):
        manager, events = self.make_manager()
        manager.evaluate(_counter_snapshot(0, 0), now=0.0)
        manager.evaluate(_counter_snapshot(90, 100), now=1.0)
        assert manager.pending() == ["unit_ratio"]
        manager.evaluate(_counter_snapshot(90, 5000), now=2.0)  # recovered in time
        assert manager.pending() == [] and manager.firing() == []
        assert not events  # never fired, never notified
        assert manager.to_json_dict()["recently_resolved"] == []

    def test_listener_runs_on_state_changes_only(self):
        manager, _ = self.make_manager(pending_for_seconds=0.0)
        calls: list[list[str]] = []
        manager.add_listener(lambda m: calls.append(m.firing()))
        manager.evaluate(_counter_snapshot(0, 0), now=0.0)
        assert calls == []  # nothing breaching, no transition
        manager.evaluate(_counter_snapshot(90, 100), now=1.0)
        assert calls[-1] == ["unit_ratio"]  # pending_for=0 -> fires immediately
        steady = len(calls)
        manager.evaluate(_counter_snapshot(180, 200), now=2.0)  # still firing
        assert len(calls) == steady
        manager.evaluate(_counter_snapshot(180, 9000), now=3.0)  # resolve
        assert len(calls) == steady + 1 and calls[-1] == []

    def test_broken_listener_does_not_stop_evaluation(self):
        manager, events = self.make_manager(pending_for_seconds=0.0)

        def broken(_manager):
            raise RuntimeError("action failed")

        manager.add_listener(broken)
        manager.evaluate(_counter_snapshot(0, 0), now=0.0)
        manager.evaluate(_counter_snapshot(90, 100), now=1.0)
        assert manager.firing() == ["unit_ratio"]
        assert events and events[0]["state"] == "firing"

    def test_start_requires_snapshot_fn(self):
        manager, _ = self.make_manager()
        with pytest.raises(ValueError):
            manager.start()

    def test_json_payload_lists_objectives_and_windows(self):
        manager, _ = self.make_manager()
        payload = manager.to_json_dict()
        assert payload["objectives"][0]["name"] == "unit_ratio"
        assert payload["windows"]["pending_for_seconds"] == 2.0
        assert payload["windows"]["renotify_interval_seconds"] == 10.0
        assert payload["firing"] == [] and payload["active"] == []


# ---------------------------------------------------------------------- #
# Snapshot merging: gauge-aggregation edge cases (satellite)
# ---------------------------------------------------------------------- #
def _gauge_entry(name: str, value: float, aggregation: str | None = None) -> dict:
    entry = {"name": name, "kind": "gauge", "help": "t", "labels": {}, "value": value}
    if aggregation is not None:
        entry["aggregation"] = aggregation
    return entry


class TestMergeSnapshotGaugeModes:
    def test_mean_min_last_modes(self):
        snapshots = [
            {"metrics": [
                _gauge_entry("t_mean", 2.0, "mean"),
                _gauge_entry("t_min", 2.0, "min"),
                _gauge_entry("t_last", 2.0, "last"),
            ]},
            {"metrics": [
                _gauge_entry("t_mean", 4.0, "mean"),
                _gauge_entry("t_min", 4.0, "min"),
                _gauge_entry("t_last", 4.0, "last"),
            ]},
            {"metrics": [
                _gauge_entry("t_mean", 9.0, "mean"),
                _gauge_entry("t_min", 1.0, "min"),
                _gauge_entry("t_last", 7.0, "last"),
            ]},
        ]
        values = {
            m["name"]: m["value"] for m in merge_snapshots(snapshots)["metrics"]
        }
        assert values["t_mean"] == pytest.approx(5.0)
        assert values["t_min"] == 1.0
        assert values["t_last"] == 7.0

    def test_missing_aggregation_key_defaults_to_sum(self):
        # Snapshots from an older worker may omit the key entirely.
        snapshots = [
            {"metrics": [_gauge_entry("t_plain", 2.0)]},
            {"metrics": [_gauge_entry("t_plain", 3.0)]},
        ]
        (merged,) = merge_snapshots(snapshots)["metrics"]
        assert merged["value"] == 5.0

    def test_mixed_mode_conflict_keeps_the_first_seen_mode(self):
        snapshots = [
            {"metrics": [_gauge_entry("t_mixed", 2.0, "max")]},
            {"metrics": [_gauge_entry("t_mixed", 9.0, "min")]},
            {"metrics": [_gauge_entry("t_mixed", 5.0, "sum")]},
        ]
        (merged,) = merge_snapshots(snapshots)["metrics"]
        assert merged["value"] == 9.0  # max() governed the whole merge
        assert merged["aggregation"] == "max"

    def test_mixed_kind_conflict_drops_the_stray(self):
        snapshots = [
            {"metrics": [{"name": "t_kind", "kind": "counter", "labels": {},
                          "help": "t", "value": 3.0}]},
            {"metrics": [_gauge_entry("t_kind", 9.0, "sum")]},
        ]
        (merged,) = merge_snapshots(snapshots)["metrics"]
        assert merged["kind"] == "counter" and merged["value"] == 3.0


# ---------------------------------------------------------------------- #
# Rate-limited structured logging (satellite)
# ---------------------------------------------------------------------- #
class TestRateLimitFilter:
    def test_burst_then_suppression(self):
        clock_now = [0.0]
        filt = RateLimitFilter(
            rate_per_second=10.0, burst=3, clock=lambda: clock_now[0]
        )
        before = logs_suppressed_total()
        passed = [filt.filter(_record(logging.INFO)) for _ in range(5)]
        assert passed == [True, True, True, False, False]
        assert filt.suppressed == 2
        assert logs_suppressed_total() == before + 2

    def test_tokens_refill_with_time(self):
        clock_now = [0.0]
        filt = RateLimitFilter(
            rate_per_second=10.0, burst=1, clock=lambda: clock_now[0]
        )
        assert filt.filter(_record(logging.INFO))
        assert not filt.filter(_record(logging.INFO))
        clock_now[0] = 0.2  # 0.2s at 10/s refills two tokens (capped at burst 1)
        assert filt.filter(_record(logging.INFO))
        assert not filt.filter(_record(logging.INFO))

    def test_warnings_and_errors_always_pass(self):
        clock_now = [0.0]
        filt = RateLimitFilter(
            rate_per_second=1.0, burst=1, clock=lambda: clock_now[0]
        )
        assert filt.filter(_record(logging.INFO))
        assert not filt.filter(_record(logging.INFO))  # bucket exhausted
        assert filt.filter(_record(logging.WARNING))
        assert filt.filter(_record(logging.ERROR))


# ---------------------------------------------------------------------- #
# Autoscaler arrival-rate slope signal (satellite)
# ---------------------------------------------------------------------- #
class _FakePool:
    def __init__(self):
        self.depth = 0.0
        self.submitted = 0
        self.workers = 1
        self.ups = 0

    def queue_depth(self):
        return self.depth

    def submitted_count(self):
        return self.submitted

    def active_workers(self):
        return self.workers

    def scale_up(self):
        self.workers += 1
        self.ups += 1
        return True

    def scale_down(self):
        self.workers -= 1
        return True


class TestAutoscalerSlope:
    def make(self, **overrides):
        config = dict(
            min_workers=1, max_workers=4, high_watermark=1.0, low_watermark=0.1,
            ewma_alpha=1.0, up_hold_samples=4, down_hold_samples=50,
            cooldown_seconds=0.0, slope_up_threshold=5.0, slope_up_hold_samples=1,
        )
        config.update(overrides)
        pool = _FakePool()
        return pool, PoolAutoscaler(pool, AutoscalerConfig(**config))

    def test_accelerating_arrivals_collapse_the_up_hold(self):
        pool, scaler = self.make()
        pool.depth = 4.0
        pool.submitted = 0
        assert scaler.sample_once(now=0.0) is None  # first sample: no rate yet
        # Arrivals jump from 0 to 100/s: slope EWMA spikes far past the
        # threshold, so one deep sample is enough instead of four.
        pool.submitted = 100
        assert scaler.sample_once(now=1.0) == "up"
        assert pool.ups == 1
        assert scaler.arrival_slope_ewma >= 5.0

    def test_steady_arrivals_wait_out_the_full_hold(self):
        pool, scaler = self.make()
        pool.depth = 4.0
        pool.submitted = 0
        scaler.sample_once(now=0.0)
        results = []
        for tick in range(1, 6):
            pool.submitted += 3  # constant 3/s: slope settles to ~0
            results.append(scaler.sample_once(now=float(tick)))
        # The slope never crosses the 5.0 threshold (the one-off 0 -> 3
        # rate step is below it), so scale-up waits for the full 4-sample
        # hold — the warmup sample at t=0 already counted as the first.
        assert results == [None, None, "up", None, None]
        assert scaler.arrival_slope_ewma < 5.0

    def test_slope_never_relaxes_watermark_or_bounds(self):
        pool, scaler = self.make(max_workers=1)
        pool.depth = 4.0
        pool.submitted = 0
        scaler.sample_once(now=0.0)
        pool.submitted = 100
        # Slope fires but the pool is already at max_workers.
        assert scaler.sample_once(now=1.0) is None
        assert pool.ups == 0

        pool2, scaler2 = self.make()
        pool2.depth = 0.5  # inside the dead band: no up streak at all
        pool2.submitted = 0
        scaler2.sample_once(now=0.0)
        pool2.submitted = 100
        assert scaler2.sample_once(now=1.0) is None

    def test_config_validates_slope_knobs(self):
        with pytest.raises(ValueError):
            AutoscalerConfig(slope_up_threshold=0.0)
        with pytest.raises(ValueError):
            AutoscalerConfig(slope_up_hold_samples=0)


# ---------------------------------------------------------------------- #
# Gateway integration: the watchtower's HTTP surface
# ---------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def watch_gateway(bench, network):
    """A gateway with the stock watchtower (default alerts + profiler)."""
    service = PlannerService(
        network, planner=small_planner(), max_workers=2, cache_capacity=64,
        scoring_backend="process",
    )
    gateway = PlanningServer(
        service, queries=bench.all_queries(), featurizer=bench.featurizer
    )
    gateway.worker_id = 3
    gateway.start()
    yield gateway
    gateway.close()
    service.close()


class TestWatchtowerGatewaySurface:
    def test_single_trace_lookup(self, watch_gateway, bench):
        query = list(bench.train_queries)[0]
        trace_id = new_trace_id()
        status, body, _ = http(
            "POST", f"{watch_gateway.base_url}/v1/plan",
            {"query": query.name, "k": 2},
            headers={"X-Repro-Trace": trace_id},
        )
        assert status == 200, body
        status, body, _ = http(
            "GET", f"{watch_gateway.base_url}/v1/traces/{trace_id}"
        )
        assert status == 200
        assert body["trace"]["trace_id"] == trace_id
        assert body["trace"]["root"]["name"] == "/v1/plan"
        assert body["worker_id"] == 3

        status, body, _ = http(
            "GET", f"{watch_gateway.base_url}/v1/traces/{new_trace_id()}"
        )
        assert status == 404 and body["kind"] == "unknown_trace"

    def test_profile_endpoint_serves_merged_flamegraph(self, watch_gateway, bench):
        query = list(bench.train_queries)[0]
        # Give the sampler traffic and time to accrue samples.
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            http(
                "POST", f"{watch_gateway.base_url}/v1/plan",
                {"query": query.name, "k": 2},
            )
            status, body, _ = http(
                "GET", f"{watch_gateway.base_url}/v1/profile"
            )
            assert status == 200
            if body["profile"]["samples"] > 0 and body["profile"]["stacks"]:
                break
            time.sleep(0.05)
        assert body["profile"]["samples"] > 0
        assert any(
            p.startswith("gateway") for p in body["profile"]["processes"]
        ), body["profile"]["processes"]
        flame = body["flamegraph"]
        assert flame["name"] == "all" and flame["value"] > 0 and flame["children"]

    def test_alerts_endpoint_and_healthy_scores(self, watch_gateway):
        status, body, _ = http("GET", f"{watch_gateway.base_url}/v1/alerts")
        assert status == 200
        assert body["firing"] == [] and body["pending"] == []
        assert len(body["objectives"]) == 5
        assert body["health_score"] == 1.0
        assert body["windows"]["fast_seconds"] > 0

        status, health, _ = http("GET", f"{watch_gateway.base_url}/healthz")
        assert status == 200 and health["status"] == "ok"
        assert health["health_score"] == 1.0
        assert health["alerts_firing"] == [] and health["alerts_pending"] == []

    def test_metrics_expose_watchtower_series(self, watch_gateway):
        with urllib.request.urlopen(
            f"{watch_gateway.base_url}/metrics", timeout=30
        ) as response:
            text = response.read().decode("utf-8")
        assert "repro_alerts_firing 0" in text
        assert "repro_health_score 1" in text
        assert "repro_logs_suppressed_total" in text
        assert "repro_profiler_samples_total" in text
        assert "repro_profiler_hz" in text

    def test_disabled_watchtower_serves_503_and_full_health(
        self, bench, network
    ):
        service = PlannerService(network, planner=small_planner(), max_workers=1)
        gateway = PlanningServer(
            service, queries=bench.all_queries(), alerts=False, profile=False
        )
        gateway.start()
        try:
            status, body, _ = http("GET", f"{gateway.base_url}/v1/alerts")
            assert status == 503 and body["kind"] == "unavailable"
            status, health, _ = http("GET", f"{gateway.base_url}/healthz")
            assert status == 200 and health["status"] == "ok"
            assert health["health_score"] == 1.0
        finally:
            gateway.close()
            service.close()


# ---------------------------------------------------------------------- #
# The acceptance drill: regression -> firing -> actions -> recovery
# ---------------------------------------------------------------------- #
class TestAlertDrillEndToEnd:
    def test_latency_regression_fires_pauses_and_resolves(self, bench, network):
        queries = list(bench.train_queries)
        plan_cost = CoutCostModel(bench.estimator).cost
        service = PlannerService(
            network, planner=small_planner(), max_workers=2, cache_capacity=64
        )
        registry = ModelRegistry()
        gate = ShadowEvaluator(
            queries[:2], plan_cost, planner=small_planner(),
            max_regression=25.0, max_total_regression=5.0,
        )
        lifecycle = ModelLifecycle(
            service, registry, gate, featurizer=bench.featurizer
        )
        lifecycle.baseline(network)
        loop = OnlineTrainerLoop(lifecycle, plan_cost, min_new_tuples=100_000)
        shadower = TrafficShadower(
            service, registry, plan_cost,
            sample_fraction=0.5, min_samples=1_000, window=1_000,
            planner=small_planner(), featurizer=bench.featurizer,
            max_regression=3.0, max_total_regression=2.0,
        )
        # Tight windows so the drill runs in seconds: only the latency SLO
        # can realistically trip (no 5xx, no crashes, no sink drops).
        evaluator = SloEvaluator(
            default_slo_objectives(
                latency_threshold_seconds=0.05, burn_threshold=3.0
            ),
            fast_window_seconds=0.6,
            slow_window_seconds=1.5,
        )
        manager = AlertManager(
            evaluator,
            pending_for_seconds=0.2,
            renotify_interval_seconds=60.0,
            interval_seconds=0.05,
        )
        gateway = PlanningServer(
            service, registry=registry, shadower=shadower, experience=loop,
            queries=bench.all_queries(), featurizer=bench.featurizer,
            alerts=manager, profile=False,
        )
        bus = get_event_bus()
        _, cursor = bus.since(bus.cursor)
        statuses: list[int] = []

        def drive(deadline: float, stop_when) -> None:
            while time.monotonic() < deadline:
                for query in queries[:3]:
                    status, body, _ = http(
                        "POST", f"{gateway.base_url}/v1/plan",
                        {"query": query.name, "k": 2},
                    )
                    assert status == 200, body
                    statuses.append(status)
                if stop_when():
                    return
                time.sleep(0.02)

        gateway.start()
        try:
            # Phase 1 — healthy traffic: warm the cache, no alerts.
            drive(time.monotonic() + 2.0, lambda: len(statuses) >= 9)
            assert manager.firing() == []
            assert not loop.promotions_paused and not shadower.degraded

            # Phase 2 — inject a latency regression: every service call now
            # takes ~80ms against the 50ms SLO threshold (still succeeding).
            original_handle = service._handle

            def slow_handle(envelope, submitted_at):
                time.sleep(0.08)
                return original_handle(envelope, submitted_at)

            service._handle = slow_handle
            drive(
                time.monotonic() + 20.0,
                lambda: "served_latency_p99" in manager.firing(),
            )
            assert manager.firing() == ["served_latency_p99"], (
                manager.to_json_dict()
            )
            # Protective actions engaged: promotions paused, shadower tight.
            assert loop.promotions_paused
            assert loop.pause_reason == "served_latency_p99"
            assert shadower.degraded
            stats = shadower.stats()
            assert stats.effective_max_regression < 3.0
            _, health, _ = http("GET", f"{gateway.base_url}/healthz")
            assert health["status"] == "degraded"
            assert health["alerts_firing"] == ["served_latency_p99"]
            # The alert passed through pending before firing.
            _, alerts_body, _ = http("GET", f"{gateway.base_url}/v1/alerts")
            (active,) = alerts_body["active"]
            assert active["state"] == "firing"
            assert active["fired_at"] > active["since"]

            # Phase 3 — recovery: restore the fast path; fresh good traffic
            # drains both burn windows and the alert resolves.
            service._handle = original_handle
            drive(
                time.monotonic() + 20.0,
                lambda: manager.firing() == [] and not loop.promotions_paused,
            )
            assert manager.firing() == [] and manager.pending() == []
            assert not loop.promotions_paused and loop.pause_reason is None
            assert not shadower.degraded
            _, health, _ = http("GET", f"{gateway.base_url}/healthz")
            assert health["status"] == "ok" and health["health_score"] == 1.0
            resolved = manager.to_json_dict()["recently_resolved"]
            assert any(a["name"] == "served_latency_p99" for a in resolved)

            # The whole lifecycle rode the event bus: firing then resolved.
            events, _ = bus.since(cursor)
            alert_events = [
                e.to_json_dict() for e in events
                if e.to_json_dict().get("kind") == "alert"
            ]
            states = [
                e["state"] for e in alert_events
                if e.get("name") == "served_latency_p99"
            ]
            assert "firing" in states and "resolved" in states
            assert states.index("firing") < states.index("resolved")

            # Zero failed foreground requests across the whole drill.
            assert statuses and all(code == 200 for code in statuses)
        finally:
            gateway.close()
            shadower.close()
            loop.close()
            service.close()

    def test_alert_events_stream_as_sse_alert_frames(self, watch_gateway):
        url = (
            f"{watch_gateway.base_url}/v1/metrics/stream"
            "?interval=0.05&max_events=200"
        )
        lines: list[str] = []

        def consume() -> None:
            with urllib.request.urlopen(url, timeout=30) as response:
                deadline = time.monotonic() + 15
                while time.monotonic() < deadline:
                    line = response.readline()
                    if not line:
                        break
                    decoded = line.decode("utf-8")
                    lines.append(decoded)
                    if '"slo_drill_probe"' in decoded:
                        break

        reader = threading.Thread(target=consume)
        reader.start()
        time.sleep(0.3)  # the stream is up; now publish an alert event
        emit_event(
            "alert", name="slo_drill_probe", state="firing", fast_burn_rate=9.0
        )
        reader.join(timeout=20)
        assert not reader.is_alive(), "SSE reader did not finish"
        text = "".join(lines)
        blocks = [b for b in text.split("\n\n") if b.strip()]
        alert_blocks = [b for b in blocks if b.startswith("event: alert")]
        assert alert_blocks, text[-800:]
        payload = json.loads(alert_blocks[0].split("data: ", 1)[1])
        assert payload["kind"] == "alert"
        assert payload["name"] == "slo_drill_probe"
        assert payload["state"] == "firing"
