"""Scrape-time publication: fold every subsystem's counters into a registry.

The hot path never touches the registry.  :class:`GatewayTelemetry.collect`
runs when ``/metrics`` is scraped (or when a sharded worker pushes its
snapshot to the supervisor): it reads the existing dataclass snapshots —
``ServiceMetrics`` per planner, gateway HTTP counters, shadow stats, shared
cache client stats, ops-channel stats, ``ExperienceMetrics`` — and publishes
them as counters/gauges.  Request latency histograms are the one incremental
piece: each collect drains the service's request log from the last consumed
position (:meth:`PlannerService.drain_request_log`, exact under the metrics
lock) into fixed-bucket histograms, so scrapes are O(new requests), not
O(history).

This module deliberately duck-types the gateway and its stat blocks — the
telemetry package stays a leaf with no upward imports.
"""

from __future__ import annotations

import threading

from repro.telemetry.logging import logs_suppressed_total
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.profiling import get_profiler
from repro.telemetry.trace import get_tracer


def _publish_numbers(
    registry: MetricsRegistry,
    prefix: str,
    data: dict,
    *,
    help_text: str = "",
    labels: "dict[str, str] | None" = None,
    aggregation: str = "sum",
) -> None:
    """Publish every numeric/bool leaf of a (possibly nested) dict as gauges."""
    for name, value in data.items():
        if isinstance(value, dict):
            _publish_numbers(
                registry, f"{prefix}_{name}", value,
                help_text=help_text, labels=labels, aggregation=aggregation,
            )
            continue
        if isinstance(value, bool):
            value = int(value)
        if not isinstance(value, (int, float)) or value != value:  # skip NaN
            continue
        registry.gauge(
            f"{prefix}_{name}", help_text, labels, aggregation=aggregation
        ).set(value)


class GatewayTelemetry:
    """One gateway's registry plus the incremental request-log cursors."""

    def __init__(self, registry: MetricsRegistry | None = None):
        self.registry = registry or MetricsRegistry()
        self._log_positions: dict[str, int] = {}
        # Scrapes can now be concurrent (Prometheus, the sharded push
        # client, and the watchtower's alert thread all collect): the
        # request-log cursors must advance exactly once per drained entry.
        self._collect_lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # Entry points
    # ------------------------------------------------------------------ #
    def collect(self, gateway) -> MetricsRegistry:
        """Publish every stat block the gateway can reach; returns the registry."""
        with self._collect_lock:
            return self._collect_locked(gateway)

    def _collect_locked(self, gateway) -> MetricsRegistry:
        for name, service in gateway.planner_services().items():
            self._publish_service(name, service)
        self._publish_http(gateway)
        shadower = getattr(gateway, "shadower", None)
        if shadower is not None:
            self._publish_shadow(shadower.stats())
        shared_stats = getattr(gateway.service.cache, "shared_stats", None)
        if callable(shared_stats):
            stats = shared_stats()
            if stats:
                _publish_numbers(
                    self.registry, "repro_shared_cache_client", stats,
                    help_text="Shared plan-cache tier, worker-side client.",
                )
        ops_channel = getattr(gateway, "ops_channel", None)
        if ops_channel is not None and hasattr(ops_channel, "stats"):
            _publish_numbers(
                self.registry, "repro_ops_channel", ops_channel.stats(),
                help_text="Sharded ops-coherence channel (worker side).",
            )
        experience = getattr(gateway, "experience", None)
        if experience is not None:
            self._publish_experience(experience.metrics())
        tracer = get_tracer()
        self.registry.counter(
            "repro_traces_recorded_total", "Completed request traces."
        ).set_total(tracer._recorded)
        self._publish_watchtower(gateway)
        return self.registry

    def _publish_watchtower(self, gateway) -> None:
        """Alert/health/profiler/log-suppression series (the PR-10 layer)."""
        reg = self.registry
        alerts = getattr(gateway, "alerts", None)
        if alerts is not None:
            reg.gauge(
                "repro_alerts_firing", "SLO alerts currently firing."
            ).set(len(alerts.firing()))
            reg.gauge(
                "repro_alerts_pending", "SLO alerts currently pending."
            ).set(len(alerts.pending()))
        health_score = getattr(gateway, "health_score", None)
        if callable(health_score):
            # aggregation="min": the fleet merge reports the sickest worker.
            reg.gauge(
                "repro_health_score",
                "Composite gateway health in [0, 1] (1 = no active alerts).",
                aggregation="min",
            ).set(health_score())
        reg.counter(
            "repro_logs_suppressed_total",
            "Log lines dropped by the rate-limit filter.",
        ).set_total(logs_suppressed_total())
        profiler = get_profiler()
        if profiler is not None:
            profile = profiler.snapshot()
            reg.counter(
                "repro_profiler_samples_total",
                "Sampling-profiler passes taken in this process.",
            ).set_total(profile["samples"])
            reg.gauge(
                "repro_profiler_hz", "Configured profiler sampling rate."
            ).set(profile["hz"])

    def snapshot(self, gateway) -> dict:
        return self.collect(gateway).snapshot()

    def render(self, gateway) -> str:
        return self.collect(gateway).render()

    # ------------------------------------------------------------------ #
    # Blocks
    # ------------------------------------------------------------------ #
    def _publish_service(self, name: str, service) -> None:
        reg = self.registry
        labels = {"planner": name}
        metrics = service.metrics()

        def counter(metric: str, help_text: str, value: float) -> None:
            reg.counter(metric, help_text, labels).set_total(value)

        counter("repro_service_requests_total", "Requests served.", metrics.requests)
        counter(
            "repro_service_cache_hits_total", "Plan-cache hits.", metrics.cache_hits
        )
        counter(
            "repro_service_cache_misses_total",
            "Requests that ran a planner.", metrics.cache_misses,
        )
        counter(
            "repro_service_coalesced_total",
            "Requests deduplicated onto an in-flight search.",
            metrics.coalesced_requests,
        )
        counter(
            "repro_service_rejected_total",
            "Requests refused admission.", metrics.rejected_requests,
        )
        counter(
            "repro_service_deadline_exceeded_total",
            "Served requests whose search was budget-cut.",
            metrics.deadline_exceeded_requests,
        )
        counter("repro_service_swaps_total", "Model hot swaps.", metrics.swaps)
        counter(
            "repro_service_promotions_rejected_total",
            "Candidates the shadow gate refused.", metrics.promotions_rejected,
        )
        counter(
            "repro_service_warmed_entries_total",
            "Cache entries repopulated by warming.", metrics.warmed_entries,
        )
        counter(
            "repro_service_states_expanded_total",
            "Search states expanded.", metrics.total_states_expanded,
        )
        counter(
            "repro_service_plans_scored_total",
            "Candidate plans scored.", metrics.total_plans_scored,
        )
        counter(
            "repro_service_queue_wait_seconds_total",
            "Summed queue wait.", metrics.total_queue_wait_seconds,
        )
        counter(
            "repro_service_planning_seconds_total",
            "Summed planner time.", metrics.total_planning_seconds,
        )
        counter(
            "repro_service_service_seconds_total",
            "Summed end-to-end service time.", metrics.total_service_seconds,
        )
        reg.gauge(
            "repro_service_pending_requests",
            "Requests admitted but not completed.", labels,
        ).set(service.pending_requests)
        reg.gauge(
            "repro_service_cache_size", "Local plan-cache entries.", labels
        ).set(metrics.cache.size)
        counter(
            "repro_service_cache_evictions_total",
            "Local plan-cache evictions.", metrics.cache.evictions,
        )
        reg.gauge(
            "repro_service_cache_hit_rate",
            "Fraction of requests answered from cache.", labels,
            aggregation="mean",
        ).set(metrics.hit_rate)

        scoring = metrics.scoring
        counter(
            "repro_scoring_requests_total",
            "Scoring requests from beam searches.", scoring.requests,
        )
        counter(
            "repro_scoring_examples_total",
            "(query, plan) pairs scored.", scoring.examples,
        )
        counter(
            "repro_scoring_forward_batches_total",
            "Value-network forward passes run.", scoring.forward_batches,
        )
        counter(
            "repro_scoring_coalesced_batches_total",
            "Forward passes merging >1 request.", scoring.coalesced_batches,
        )
        counter(
            "repro_scoring_versions_published_total",
            "Model versions published to scorers.", scoring.versions_published,
        )
        counter(
            "repro_scoring_worker_crashes_total",
            "Scorer processes dead mid-service.", scoring.worker_crashes,
        )
        counter(
            "repro_scoring_workers_respawned_total",
            "Crashed scorers replaced.", scoring.workers_respawned,
        )
        counter(
            "repro_scoring_backend_failures_total",
            "Scoring submits failing with a typed error.",
            metrics.scoring_backend_failures,
        )
        counter(
            "repro_scoring_fallbacks_total",
            "Services abandoning their backend for in-process scoring.",
            metrics.scoring_fallbacks,
        )
        reg.gauge(
            "repro_scoring_max_batch_examples",
            "Largest forward-pass batch.", labels, aggregation="max",
        ).set(scoring.max_batch_examples)
        counter(
            "repro_scoring_shm_batches_total",
            "Payloads shipped zero-copy via shared memory.", scoring.shm_batches,
        )
        counter(
            "repro_scoring_shm_fallbacks_total",
            "Shm-eligible payloads that took the queue path.",
            scoring.shm_fallbacks,
        )
        counter(
            "repro_scoring_leases_reclaimed_total",
            "Ring-slot leases reclaimed from dead scorers.",
            scoring.leases_reclaimed,
        )
        counter(
            "repro_scoring_scale_ups_total",
            "Autoscaler scale-up events.", scoring.scale_ups,
        )
        counter(
            "repro_scoring_scale_downs_total",
            "Autoscaler scale-down events.", scoring.scale_downs,
        )
        reg.gauge(
            "repro_scoring_workers",
            "Routable scorer processes.", labels,
        ).set(scoring.workers_current)
        reg.gauge(
            "repro_scoring_queue_depth",
            "Scoring requests in flight.", labels,
        ).set(scoring.queue_depth)
        reg.gauge(
            "repro_scoring_ring_occupancy",
            "Mean fraction of request-ring slots leased.", labels,
            aggregation="mean",
        ).set(scoring.ring_occupancy)
        reg.gauge(
            "repro_scoring_adaptive_batch_cap",
            "Current adaptive forward-pass batch cap.", labels,
        ).set(scoring.adaptive_batch_cap)
        for worker, depth in enumerate(scoring.worker_queue_depths):
            reg.gauge(
                "repro_scoring_worker_queue_depth",
                "In-flight requests per scorer.",
                {**labels, "worker": str(worker)},
            ).set(depth)
        for worker, busy in enumerate(scoring.worker_inflight):
            reg.gauge(
                "repro_scoring_worker_inflight",
                "Batches being scored per scorer.",
                {**labels, "worker": str(worker)},
            ).set(busy)

        self._drain_latency_histograms(name, service, labels)

    def _drain_latency_histograms(self, name: str, service, labels: dict) -> None:
        drain = getattr(service, "drain_request_log", None)
        if not callable(drain):
            return
        entries, position = drain(self._log_positions.get(name, 0))
        self._log_positions[name] = position
        if not entries:
            return
        reg = self.registry
        service_hist = reg.histogram(
            "repro_request_service_seconds",
            "End-to-end time inside the service per request.", labels,
        )
        planning_hist = reg.histogram(
            "repro_request_planning_seconds",
            "Planner time per cache-missing request.", labels,
        )
        wait_hist = reg.histogram(
            "repro_request_queue_wait_seconds",
            "Queue wait per request.", labels,
        )
        for stats in entries:
            service_hist.observe(stats.service_seconds)
            wait_hist.observe(stats.queue_wait_seconds)
            if not stats.cache_hit and not stats.coalesced:
                planning_hist.observe(stats.planning_seconds)

    def _publish_http(self, gateway) -> None:
        requests_by_endpoint, responses_by_status = gateway.http_counters()
        for path, count in requests_by_endpoint.items():
            self.registry.counter(
                "repro_http_requests_total",
                "Handled HTTP exchanges by endpoint.", {"path": path},
            ).set_total(count)
        for status, count in responses_by_status.items():
            self.registry.counter(
                "repro_http_responses_total",
                "HTTP responses by status code.", {"status": str(status)},
            ).set_total(count)

    def _publish_shadow(self, stats) -> None:
        reg = self.registry

        def counter(metric: str, help_text: str, value: float) -> None:
            reg.counter(metric, help_text).set_total(value)

        counter("repro_shadow_observed_total", "Requests the shadower saw.",
                stats.observed)
        counter("repro_shadow_sampled_total", "Requests sampled into the ring.",
                stats.sampled)
        counter("repro_shadow_dropped_total", "Samples evicted (ring full).",
                stats.dropped)
        counter("repro_shadow_replayed_total", "Queries replanned both ways.",
                stats.replayed)
        counter("repro_shadow_rollbacks_total",
                "Automatic live-traffic rollbacks.", stats.rollbacks)
        counter("repro_shadow_errors_total", "Shadow replans that failed.",
                stats.errors)
        reg.gauge(
            "repro_shadow_armed", "Whether a candidate is being monitored.",
            aggregation="max",
        ).set(int(stats.armed))
        reg.gauge(
            "repro_shadow_rolling_regression",
            "Cost-weighted candidate/baseline regression over the window.",
            aggregation="mean",
        ).set(stats.rolling_regression)
        reg.gauge(
            "repro_shadow_worst_regression",
            "Largest single-query regression in the window.",
            aggregation="max",
        ).set(stats.worst_regression)
        reg.gauge(
            "repro_shadow_window_samples", "Live samples in the rolling window."
        ).set(stats.window_samples)

    def _publish_experience(self, metrics) -> None:
        reg = self.registry

        def counter(metric: str, help_text: str, value: float) -> None:
            reg.counter(metric, help_text).set_total(value)

        reg.gauge(
            "repro_experience_running",
            "Whether the trainer loop is alive.", aggregation="max",
        ).set(int(metrics.running))
        counter("repro_experience_rounds_total", "Fine-tune rounds completed.",
                metrics.rounds)
        counter("repro_experience_promotions_total",
                "Rounds whose candidate was promoted.", metrics.promotions)
        counter("repro_experience_rejections_total",
                "Rounds the gate refused.", metrics.rejections)
        counter("repro_experience_failures_total", "Rounds that errored.",
                metrics.failures)
        counter("repro_experience_rollbacks_total",
                "Loop promotions rolled back by live traffic.", metrics.rollbacks)
        counter("repro_experience_trained_examples_total",
                "Training points consumed.", metrics.trained_examples)
        reg.gauge(
            "repro_experience_last_round_seconds",
            "Duration of the most recent round.", aggregation="max",
        ).set(metrics.last_round_seconds)
        reg.gauge(
            "repro_experience_promotions_paused",
            "Whether the watchtower has gated autonomous promotions.",
            aggregation="max",
        ).set(int(getattr(metrics, "promotions_paused", False)))
        if metrics.cost_trend:
            reg.gauge(
                "repro_experience_cost_trend_latest",
                "Latest windowed mean executed cost.", aggregation="mean",
            ).set(metrics.cost_trend[-1])
        _publish_numbers(
            reg, "repro_experience_sink", metrics.sink.to_json_dict(),
            help_text="Request-path experience sink.",
        )
        _publish_numbers(
            reg, "repro_experience_buffer", metrics.buffer.to_json_dict(),
            help_text="Replay buffer.",
        )
