"""Tests for the sharded gateway and its cross-process plan-cache tier.

Covers the cache-server protocol (framing, LRU, tag invalidation), client
degradation when the tier dies, the tiered L1/L2 cache, cross-worker cache
hits, version-keyed invalidation on promote/rollback, and the pre-forked
:class:`~repro.server.sharding.ShardedGateway` (both socket strategies,
supervisor respawn of a killed worker).
"""

from __future__ import annotations

import json
import os
import signal
import socket
import time
import urllib.error
import urllib.request
from dataclasses import replace

import pytest

from repro.lifecycle import ModelRegistry
from repro.model.value_network import ValueNetwork, ValueNetworkConfig
from repro.optimizer.quickpick import random_plan
from repro.planning.envelope import PlanRequest, PlanResult
from repro.search.beam import BeamSearchPlanner
from repro.server import PlanningServer
from repro.server.sharding import (
    MAX_FRAME_BYTES,
    OpsBroadcastServer,
    OpsChannelClient,
    PlanCacheServer,
    ShardedGateway,
    SharedCacheClient,
    WorkerSpec,
)
from repro.service.cache import ServicePlanCache, TieredPlanCache, encode_cache_key
from repro.service.service import PlannerService
from repro.utils.rng import derive_seed, new_rng
from repro.workloads.benchmark import make_job_benchmark

HAS_REUSE_PORT = hasattr(socket, "SO_REUSEPORT")


def small_planner() -> BeamSearchPlanner:
    return BeamSearchPlanner(beam_size=2, top_k=2, enumerate_scan_operators=False)


@pytest.fixture(scope="module")
def bench():
    return make_job_benchmark(
        fact_rows=200, num_queries=6, num_templates=3, test_size=2,
        seed=1, size_range=(3, 4),
    )


@pytest.fixture(scope="module")
def network(bench) -> ValueNetwork:
    """Untrained but servable: ranking quality is irrelevant to sharding."""
    return ValueNetwork(
        bench.featurizer,
        ValueNetworkConfig(
            query_hidden=16, query_embedding=8, tree_channels=(16, 8),
            head_hidden=8, seed=1,
        ),
    )


@pytest.fixture()
def cache_server(tmp_path):
    server = PlanCacheServer(str(tmp_path / "cache.sock"), capacity=64).start()
    yield server
    server.close()


def make_result(bench, query, seed: int = 0) -> PlanResult:
    plans = [random_plan(query, new_rng(derive_seed(seed, query.name, i))) for i in range(2)]
    return PlanResult(
        plans=plans,
        predicted_latencies=[1.0, 2.0],
        planning_seconds=0.01,
        planner_name="beam",
    )


def http(method: str, url: str, payload=None, timeout: float = 30.0):
    """One JSON HTTP exchange on a fresh connection; (status, body, headers)."""
    data = None
    headers = {}
    if payload is not None:
        data = json.dumps(payload).encode("utf-8")
        headers["Content-Type"] = "application/json"
    request = urllib.request.Request(url, data=data, method=method, headers=headers)
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return (
                response.status,
                json.loads(response.read().decode("utf-8")),
                dict(response.headers),
            )
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read().decode("utf-8")), dict(error.headers)


# ---------------------------------------------------------------------- #
# Cache server protocol
# ---------------------------------------------------------------------- #
class TestCacheProtocol:
    def test_put_get_exists_round_trip(self, cache_server):
        client = SharedCacheClient(cache_server.address)
        assert client.ping()
        assert client.get(b"k1") is None
        assert not client.exists(b"k1")
        assert client.put(b"k1", b"v1-tag", b"payload-bytes")
        assert client.get(b"k1") == b"payload-bytes"
        assert client.exists(b"k1")
        stats = cache_server.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["inserts"] == 1
        assert stats["size"] == 1
        client.close()

    def test_two_clients_share_entries(self, cache_server):
        writer = SharedCacheClient(cache_server.address)
        reader = SharedCacheClient(cache_server.address)
        assert writer.put(b"shared", b"tag", b"value")
        assert reader.get(b"shared") == b"value"
        writer.close()
        reader.close()

    def test_lru_eviction_tracks_tag_index(self, tmp_path):
        with PlanCacheServer(str(tmp_path / "lru.sock"), capacity=2) as server:
            client = SharedCacheClient(server.address)
            client.put(b"a", b"t1", b"1")
            client.put(b"b", b"t1", b"2")
            client.get(b"a")  # refresh recency: b is now LRU
            client.put(b"c", b"t2", b"3")
            assert client.exists(b"a")
            assert not client.exists(b"b")
            assert client.exists(b"c")
            stats = server.stats()
            assert stats["evictions"] == 1
            # The evicted key must leave the tag index too.
            assert client.invalidate(b"t1") == 1
            client.close()

    def test_invalidate_by_tag(self, cache_server):
        client = SharedCacheClient(cache_server.address)
        client.put(b"k1", b"v1", b"x")
        client.put(b"k2", b"v1", b"y")
        client.put(b"k3", b"v2", b"z")
        assert client.invalidate(b"v1") == 2
        assert not client.exists(b"k1")
        assert not client.exists(b"k2")
        assert client.exists(b"k3")
        assert client.invalidate(b"v1") == 0
        assert cache_server.stats()["invalidated"] == 2
        client.close()

    def test_retagging_a_key_moves_it_between_tags(self, cache_server):
        client = SharedCacheClient(cache_server.address)
        client.put(b"k", b"old", b"1")
        client.put(b"k", b"new", b"2")
        assert client.invalidate(b"old") == 0
        assert client.get(b"k") == b"2"
        assert client.invalidate(b"new") == 1
        client.close()

    def test_clear_and_server_stats(self, cache_server):
        client = SharedCacheClient(cache_server.address)
        client.put(b"k", b"t", b"v")
        assert client.clear()
        assert client.get(b"k") is None
        remote = client.server_stats()
        assert remote is not None
        assert remote["size"] == 0
        assert remote["inserts"] == 1
        client.close()

    def test_oversize_put_is_refused_client_side(self, cache_server):
        client = SharedCacheClient(cache_server.address)
        assert not client.put(b"big", b"t", b"\x00" * MAX_FRAME_BYTES)
        assert client.ping()  # connection not poisoned
        client.close()

    def test_empty_value_round_trip(self, cache_server):
        client = SharedCacheClient(cache_server.address)
        assert client.put(b"empty", b"t", b"")
        assert client.get(b"empty") == b""
        client.close()

    def test_client_degrades_when_server_is_down(self, tmp_path):
        server = PlanCacheServer(str(tmp_path / "dead.sock"), capacity=8).start()
        client = SharedCacheClient(server.address, retry_seconds=30.0)
        assert client.put(b"k", b"t", b"v")
        server.close()
        # Every op is a miss / no-op, never an exception.
        assert client.get(b"k") is None
        assert not client.put(b"k2", b"t", b"v")
        assert not client.exists(b"k")
        assert client.invalidate(b"t") == 0
        assert not client.ping()
        assert not client.available
        stats = client.stats()
        assert stats["errors"] >= 1
        assert stats["skipped_while_down"] >= 1
        client.close()

    def test_client_reconnects_after_retry_window(self, tmp_path):
        path = str(tmp_path / "flap.sock")
        server = PlanCacheServer(path, capacity=8).start()
        client = SharedCacheClient(server.address, retry_seconds=0.05)
        assert client.ping()
        server.close()
        assert not client.ping()  # marks the tier down
        revived = PlanCacheServer(path, capacity=8).start()
        try:
            deadline = time.monotonic() + 5.0
            while not client.ping():
                assert time.monotonic() < deadline, "client never reconnected"
                time.sleep(0.02)
        finally:
            client.close()
            revived.close()


# ---------------------------------------------------------------------- #
# Tiered cache over the real server
# ---------------------------------------------------------------------- #
class TestTieredPlanCache:
    def key(self, query, version=("net", 1), k=2):
        return (query.fingerprint(), version, k, None)

    def test_cross_cache_hit_promotes_into_local(self, bench, cache_server):
        query = bench.train_queries[0]
        tier_a = TieredPlanCache(
            ServicePlanCache(8), SharedCacheClient(cache_server.address)
        )
        tier_b = TieredPlanCache(
            ServicePlanCache(8), SharedCacheClient(cache_server.address)
        )
        result = make_result(bench, query)
        key = self.key(query)
        tier_a.store(key, result)
        assert tier_a.shared_stats()["shared_stores"] == 1

        found = tier_b.lookup(key)
        assert found is not None
        assert [p.fingerprint() for p in found.plans] == [
            p.fingerprint() for p in result.plans
        ]
        assert found.predicted_latencies == result.predicted_latencies
        assert tier_b.shared_stats()["shared_hits"] == 1
        # Promoted into B's local LRU: the next lookup never leaves process.
        assert tier_b.local.contains(key)
        assert tier_b.contains(key)

    def test_invalidate_version_drops_both_tiers(self, bench, cache_server):
        tier = TieredPlanCache(
            ServicePlanCache(8), SharedCacheClient(cache_server.address)
        )
        old, new = ("net", 1), ("net", 2)
        q0, q1 = bench.train_queries[0], bench.train_queries[1]
        tier.store(self.key(q0, old), make_result(bench, q0))
        tier.store(self.key(q1, new), make_result(bench, q1))
        assert tier.invalidate_version(old) >= 2  # L1 + shared tier
        assert not tier.contains(self.key(q0, old))
        assert tier.contains(self.key(q1, new))
        assert cache_server.stats()["size"] == 1

    def test_degrades_to_local_when_server_dies(self, bench, tmp_path):
        server = PlanCacheServer(str(tmp_path / "t.sock"), capacity=8).start()
        tier = TieredPlanCache(ServicePlanCache(8), SharedCacheClient(server.address))
        query = bench.train_queries[0]
        key = self.key(query)
        tier.store(key, make_result(bench, query))
        server.close()
        # The local LRU keeps answering; the dead tier is a silent miss.
        assert tier.lookup(key) is not None
        other = self.key(bench.train_queries[1])
        assert tier.lookup(other) is None
        tier.store(other, make_result(bench, bench.train_queries[1]))  # no raise
        assert tier.local.contains(other)
        assert not tier.shared_stats()["transport"]["available"]

    def test_corrupt_shared_entry_is_a_miss(self, bench, cache_server):
        query = bench.train_queries[0]
        key = self.key(query)
        poison = SharedCacheClient(cache_server.address)
        poison.put(encode_cache_key(key), b"tag", b"not json at all")
        tier = TieredPlanCache(
            ServicePlanCache(8), SharedCacheClient(cache_server.address)
        )
        assert tier.lookup(key) is None
        stats = tier.shared_stats()
        assert stats["decode_failures"] == 1
        assert stats["shared_misses"] == 1
        poison.close()

    def test_clear_empties_both_tiers(self, bench, cache_server):
        tier = TieredPlanCache(
            ServicePlanCache(8), SharedCacheClient(cache_server.address)
        )
        query = bench.train_queries[0]
        tier.store(self.key(query), make_result(bench, query))
        tier.clear()
        assert len(tier) == 0
        assert cache_server.stats()["size"] == 0


# ---------------------------------------------------------------------- #
# Cross-service semantics (two services sharing one tier, no forking)
# ---------------------------------------------------------------------- #
class TestCrossServiceSharing:
    def test_plan_computed_by_one_service_hits_on_the_other(
        self, bench, network, cache_server
    ):
        # Both services serve the *same* network object — exactly the
        # pre-fork situation, where workers inherit one network and their
        # cache keys (which embed the network's version key) agree.
        service_a = PlannerService(
            network, planner=small_planner(), max_workers=1, cache_capacity=32
        )
        service_b = PlannerService(
            network, planner=small_planner(), max_workers=1, cache_capacity=32
        )
        service_a.cache = TieredPlanCache(
            service_a.cache, SharedCacheClient(cache_server.address)
        )
        service_b.cache = TieredPlanCache(
            service_b.cache, SharedCacheClient(cache_server.address)
        )
        try:
            request = PlanRequest(query=bench.train_queries[0], k=2)
            first = service_a.plan(request)
            assert not first.cache_hit
            second = service_b.plan(PlanRequest(query=bench.train_queries[0], k=2))
            assert second.cache_hit
            assert [p.fingerprint() for p in second.plans] == [
                p.fingerprint() for p in first.plans
            ]
            assert service_b.cache.shared_stats()["shared_hits"] == 1
        finally:
            service_a.close()
            service_b.close()

    def test_foreground_requests_survive_cache_server_crash(
        self, bench, network, tmp_path
    ):
        server = PlanCacheServer(str(tmp_path / "crash.sock"), capacity=32).start()
        service = PlannerService(
            network, planner=small_planner(), max_workers=1, cache_capacity=32
        )
        service.cache = TieredPlanCache(
            service.cache, SharedCacheClient(server.address, retry_seconds=0.1)
        )
        try:
            ok = service.plan(PlanRequest(query=bench.train_queries[0], k=2))
            assert ok.plans
            server.close()  # the tier crashes out from under the worker
            for query in bench.train_queries[:3]:
                response = service.plan(PlanRequest(query=query, k=2))
                assert response.plans  # degraded to local-LRU, never failed
            # The local L1 still caches.
            again = service.plan(PlanRequest(query=bench.train_queries[1], k=2))
            assert again.cache_hit
        finally:
            service.close()
            server.close()


# ---------------------------------------------------------------------- #
# Version-keyed invalidation through the ops endpoints
# ---------------------------------------------------------------------- #
class TestPromoteRollbackInvalidation:
    @pytest.fixture()
    def ops_stack(self, bench, network, cache_server, tmp_path):
        service = PlannerService(
            network, planner=small_planner(), max_workers=1, cache_capacity=32
        )
        service.cache = TieredPlanCache(
            service.cache, SharedCacheClient(cache_server.address)
        )
        registry = ModelRegistry(retention=4, persist_dir=tmp_path / "registry")
        v1 = registry.register(network, source="baseline")
        registry.promote(v1.version)
        successor = network.clone()
        successor.bump_version()
        v2 = registry.register(successor, source="fine-tune")
        gateway = PlanningServer(
            service, registry=registry, featurizer=bench.featurizer
        )
        yield {
            "service": service,
            "gateway": gateway,
            "v1": v1.version,
            "v2": v2.version,
        }
        gateway.close()
        service.close()

    def test_promote_invalidates_displaced_version_in_both_tiers(
        self, bench, cache_server, ops_stack
    ):
        service, gateway = ops_stack["service"], ops_stack["gateway"]
        for query in bench.train_queries[:2]:
            assert service.plan(PlanRequest(query=query, k=2)).plans
        assert cache_server.stats()["size"] == 2
        assert len(service.cache) == 2

        status, body = gateway.handle_promote({"version": ops_stack["v2"]})
        assert status == 200
        assert body["serving_version"] == ops_stack["v2"]
        # The displaced version's plans are gone from the shared tier (so no
        # sibling worker can resurrect them) and from the local L1.
        assert cache_server.stats()["size"] == 0
        assert len(service.cache) == 0

    def test_rollback_invalidates_the_rolled_back_version(
        self, bench, cache_server, ops_stack
    ):
        service, gateway = ops_stack["service"], ops_stack["gateway"]
        status, _ = gateway.handle_promote({"version": ops_stack["v2"]})
        assert status == 200
        for query in bench.train_queries[:2]:
            assert service.plan(PlanRequest(query=query, k=2)).plans
        assert cache_server.stats()["size"] == 2

        status, body = gateway.handle_rollback()
        assert status == 200
        assert body["serving_version"] == ops_stack["v1"]
        assert cache_server.stats()["size"] == 0
        assert len(service.cache) == 0


# ---------------------------------------------------------------------- #
# The pre-forked gateway (end to end)
# ---------------------------------------------------------------------- #
def make_worker_factory(bench, network):
    def factory(spec: WorkerSpec) -> PlanningServer:
        service = PlannerService(
            network, planner=small_planner(), max_workers=2, cache_capacity=256
        )
        return PlanningServer(
            service,
            queries=bench.all_queries(),
            host=spec.host,
            port=spec.port,
        )

    return factory


SOCKET_MODES = [
    pytest.param(
        True,
        id="reuse-port",
        marks=pytest.mark.skipif(
            not HAS_REUSE_PORT, reason="platform lacks SO_REUSEPORT"
        ),
    ),
    pytest.param(False, id="inherited-fd"),
]


class TestShardedGateway:
    @pytest.mark.parametrize("reuse_port", SOCKET_MODES)
    def test_two_workers_share_port_cache_and_survive_a_kill(
        self, bench, network, reuse_port
    ):
        shard = ShardedGateway(
            make_worker_factory(bench, network),
            num_workers=2,
            reuse_port=reuse_port,
            max_respawns=1,
            health_interval_seconds=0.1,
            drain_grace_seconds=0.05,
        )
        with shard:
            assert shard.alive_workers() == 2
            base = shard.base_url

            # Both workers answer on the one shared port (fresh connection
            # per probe so the kernel is free to pick either worker).
            seen: set[int] = set()
            deadline = time.monotonic() + 30.0
            while seen != {0, 1}:
                assert time.monotonic() < deadline, f"only saw workers {seen}"
                status, body, headers = http("GET", f"{base}/healthz", timeout=5.0)
                assert status == 200
                assert body["status"] == "ok"
                worker_id = body["worker_id"]
                assert worker_id in (0, 1)
                assert headers.get("X-Repro-Worker") == str(worker_id)
                seen.add(worker_id)

            # A plan computed by one worker becomes a shared-tier hit when
            # the other worker sees the same query.
            payload = {"query": bench.train_queries[0].name, "k": 2}
            plan_workers: set[int] = set()
            fingerprints: set[tuple] = set()
            deadline = time.monotonic() + 30.0
            while plan_workers != {0, 1}:
                assert time.monotonic() < deadline, (
                    f"plan answered only by workers {plan_workers}"
                )
                status, body, headers = http(
                    "POST", f"{base}/v1/plan", payload, timeout=10.0
                )
                assert status == 200
                assert body["plans"]
                plan_workers.add(int(headers["X-Repro-Worker"]))
                fingerprints.add(
                    tuple(sorted(str(plan) for plan in body["plans"]))
                )
            assert len(fingerprints) == 1  # both workers serve the same plans
            tier = shard.shared_cache_stats()
            assert tier is not None
            assert tier["inserts"] >= 1
            assert tier["hits"] >= 1

            # Kill a worker outright: the supervisor respawns it on the same
            # slot and the shard keeps answering throughout.
            victim = shard.worker_pids()[0]
            os.kill(victim, signal.SIGKILL)
            deadline = time.monotonic() + 30.0
            while shard.worker_pids()[0] == victim or shard.alive_workers() < 2:
                assert time.monotonic() < deadline, "worker was never respawned"
                time.sleep(0.05)
            status, body, _ = http("GET", f"{base}/healthz", timeout=5.0)
            assert status == 200
            stats = shard.stats()
            assert stats["respawns_used"] == 1
            assert stats["alive_workers"] == 2
            assert stats["reuse_port"] is reuse_port

        assert shard.alive_workers() == 0  # close() drained every worker

    def test_respawn_budget_is_enforced(self, bench, network):
        shard = ShardedGateway(
            make_worker_factory(bench, network),
            num_workers=1,
            max_respawns=0,
            health_interval_seconds=0.1,
            drain_grace_seconds=0.05,
        )
        with shard:
            os.kill(shard.worker_pids()[0], signal.SIGKILL)
            deadline = time.monotonic() + 10.0
            while shard.alive_workers() > 0:
                assert time.monotonic() < deadline
                time.sleep(0.05)
            time.sleep(0.3)  # give the supervisor a few polls to (not) respawn
            assert shard.alive_workers() == 0
            assert shard.stats()["respawns_used"] == 0

    def test_single_worker_shard_serves_without_shared_cache(self, bench, network):
        shard = ShardedGateway(
            make_worker_factory(bench, network),
            num_workers=1,
            shared_cache=False,
            drain_grace_seconds=0.05,
        )
        with shard:
            status, body, _ = http("GET", f"{shard.base_url}/healthz", timeout=5.0)
            assert status == 200
            assert body["worker_id"] == 0
            assert shard.shared_cache_stats() is None
            payload = {"query": bench.train_queries[0].name, "k": 2}
            status, body, _ = http(
                "POST", f"{shard.base_url}/v1/plan", payload, timeout=10.0
            )
            assert status == 200
            assert body["plans"]

    def test_invalid_construction(self, bench, network):
        factory = make_worker_factory(bench, network)
        with pytest.raises(ValueError):
            ShardedGateway(factory, num_workers=0)
        with pytest.raises(ValueError):
            ShardedGateway(factory, num_workers=2, max_respawns=-1)


# ---------------------------------------------------------------------- #
# Shared-tier admission policy (the planning-time floor)
# ---------------------------------------------------------------------- #
class TestCacheAdmission:
    def test_server_floor_skips_provably_cheap_entries(self, tmp_path):
        server = PlanCacheServer(
            str(tmp_path / "adm.sock"), capacity=8, min_planning_seconds=0.05
        ).start()
        try:
            client = SharedCacheClient(server.address)
            cheap = json.dumps({"planning_seconds": 0.001}).encode("utf-8")
            costly = json.dumps({"planning_seconds": 0.2}).encode("utf-8")
            # The put "succeeds" (callers never care) but is not admitted.
            assert client.put(b"cheap", b"tag", cheap)
            assert client.get(b"cheap") is None
            assert client.put(b"costly", b"tag", costly)
            assert client.get(b"costly") == costly
            stats = server.stats()
            assert stats["admission_skips"] == 1
            assert stats["inserts"] == 1
            assert stats["min_planning_seconds"] == 0.05
            client.close()
        finally:
            server.close()

    def test_undecodable_values_are_admitted(self, tmp_path):
        # The floor only rejects entries it can *prove* cheap: opaque or
        # malformed values sail through rather than silently disappearing.
        server = PlanCacheServer(
            str(tmp_path / "adm2.sock"), capacity=8, min_planning_seconds=0.05
        ).start()
        try:
            client = SharedCacheClient(server.address)
            for key, value in [
                (b"opaque", b"\xff\xfe not utf-8"),
                (b"notdict", b"[1, 2, 3]"),
                (b"nofield", b"{}"),
                (b"badtype", b'{"planning_seconds": "soon"}'),
            ]:
                assert client.put(key, b"tag", value)
                assert client.get(key) == value
            assert server.stats()["admission_skips"] == 0
            client.close()
        finally:
            server.close()

    def test_zero_floor_admits_everything(self, cache_server):
        client = SharedCacheClient(cache_server.address)
        cheap = json.dumps({"planning_seconds": 0.0}).encode("utf-8")
        assert client.put(b"free", b"tag", cheap)
        assert client.get(b"free") == cheap
        assert cache_server.stats()["admission_skips"] == 0
        client.close()

    def test_tiered_cache_skips_shared_put_below_floor(self, bench, cache_server):
        query = bench.train_queries[0]
        tier = TieredPlanCache(
            ServicePlanCache(8),
            SharedCacheClient(cache_server.address),
            min_shared_planning_seconds=0.05,
        )
        key = (query.fingerprint(), ("net", 1), 2, None)
        cheap = make_result(bench, query)  # planning_seconds=0.01
        tier.store(key, cheap)
        # L1 always stores; the shared put was skipped client-side.
        assert tier.local.contains(key)
        stats = tier.shared_stats()
        assert stats["admission_skipped"] == 1
        assert stats["shared_stores"] == 0
        assert cache_server.stats()["size"] == 0

        other = bench.train_queries[1]
        costly = replace(make_result(bench, other), planning_seconds=0.2)
        other_key = (other.fingerprint(), ("net", 1), 2, None)
        tier.store(other_key, costly)
        assert tier.shared_stats()["shared_stores"] == 1
        assert cache_server.stats()["size"] == 1

    def test_invalid_floors_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            PlanCacheServer(str(tmp_path / "x.sock"), min_planning_seconds=-0.1)
        with pytest.raises(ValueError):
            TieredPlanCache(
                ServicePlanCache(8), None, min_shared_planning_seconds=-1.0
            )


# ---------------------------------------------------------------------- #
# The ops-coherence bus (unit: no forking)
# ---------------------------------------------------------------------- #
def await_until(predicate, timeout: float = 10.0, message: str = "condition"):
    deadline = time.monotonic() + timeout
    while not predicate():
        assert time.monotonic() < deadline, f"timed out awaiting {message}"
        time.sleep(0.01)


class TestOpsChannel:
    def test_publish_reaches_peers_but_never_echoes(self, tmp_path):
        server = OpsBroadcastServer(str(tmp_path / "ops.sock")).start()
        try:
            received_a: list = []
            received_b: list = []
            client_a = OpsChannelClient(server.address, 0, received_a.append).start()
            client_b = OpsChannelClient(server.address, 1, received_b.append).start()
            await_until(
                lambda: server.stats()["connections"] == 2, message="registration"
            )
            assert client_a.publish({"op": "promote", "version": 7})
            await_until(lambda: len(received_b) == 1, message="delivery to peer")
            assert received_b == [{"op": "promote", "version": 7}]
            assert received_a == []  # the publisher is never echoed
            stats = server.stats()
            assert sorted(stats["workers"]) == [0, 1]
            assert stats["published"] == 1
            assert stats["delivered"] == 1
            assert stats["delivery_errors"] == 0
            client_a.close()
            client_b.close()
        finally:
            server.close()

    def test_publish_degrades_when_bus_is_gone(self, tmp_path):
        server = OpsBroadcastServer(str(tmp_path / "ops2.sock")).start()
        client = OpsChannelClient(server.address, 0, lambda op: None).start()
        server.close()
        time.sleep(0.05)
        assert client.publish({"op": "rollback"}) is False  # no raise
        client.close()

    def test_callback_errors_do_not_kill_the_listener(self, tmp_path):
        server = OpsBroadcastServer(str(tmp_path / "ops3.sock")).start()
        try:
            received: list = []

            def flaky(message):
                if not received:
                    received.append(message)
                    raise RuntimeError("first delivery explodes")
                received.append(message)

            publisher = OpsChannelClient(server.address, 0, lambda op: None).start()
            listener = OpsChannelClient(server.address, 1, flaky).start()
            await_until(
                lambda: server.stats()["connections"] == 2, message="registration"
            )
            publisher.publish({"op": "rollback"})
            publisher.publish({"op": "promote", "version": 3})
            await_until(lambda: len(received) == 2, message="second delivery")
            publisher.close()
            listener.close()
        finally:
            server.close()

    def test_gateways_stay_coherent_through_the_bus(self, bench, network, tmp_path):
        """Two in-process gateways wired to one bus: a promote handled by one
        is applied by the other (and a rollback undoes it everywhere)."""
        server = OpsBroadcastServer(str(tmp_path / "ops4.sock")).start()
        stacks = []
        try:
            candidate = network.clone()
            for worker_id in range(2):
                service = PlannerService(
                    network, planner=small_planner(), max_workers=1
                )
                registry = ModelRegistry()
                baseline = registry.register(network, source="baseline")
                registry.promote(baseline.version)
                registry.register(candidate, source="candidate")
                gateway = PlanningServer(
                    service,
                    registry=registry,
                    queries=bench.all_queries(),
                    featurizer=bench.featurizer,
                    worker_id=worker_id,
                )
                client = OpsChannelClient(
                    server.address, worker_id, gateway.apply_ops_message
                ).start()
                gateway.ops_channel = client
                stacks.append((gateway, registry, service, client))
            await_until(
                lambda: server.stats()["connections"] == 2, message="registration"
            )

            gateway_a, registry_a = stacks[0][0], stacks[0][1]
            registry_b = stacks[1][1]
            status, body = gateway_a.handle_promote({"version": 2})
            assert status == 200, body
            assert registry_a.serving_version == 2
            await_until(
                lambda: registry_b.serving_version == 2,
                message="peer applying the promote",
            )

            status, body = gateway_a.handle_rollback()
            assert status == 200, body
            assert registry_a.serving_version == 1
            await_until(
                lambda: registry_b.serving_version == 1,
                message="peer applying the rollback",
            )
            # Re-broadcast suppression: each op was published exactly once.
            assert server.stats()["published"] == 2
        finally:
            for gateway, _, service, client in stacks:
                client.close()
                gateway.close()
                service.close()
            server.close()


# ---------------------------------------------------------------------- #
# Cross-worker ops coherence, end to end through the forked shard
# ---------------------------------------------------------------------- #
def make_versioned_worker_factory(bench, network, candidate):
    """Workers with a registry holding v1 (serving) and v2 (the candidate)."""

    def factory(spec: WorkerSpec) -> PlanningServer:
        service = PlannerService(
            network, planner=small_planner(), max_workers=2, cache_capacity=256
        )
        registry = ModelRegistry()
        baseline = registry.register(network, source="baseline")
        registry.promote(baseline.version)
        registry.register(candidate, source="candidate")
        return PlanningServer(
            service,
            registry=registry,
            queries=bench.all_queries(),
            featurizer=bench.featurizer,
            host=spec.host,
            port=spec.port,
        )

    return factory


class TestShardedOpsCoherence:
    def await_all_serving(self, base_url, version, num_workers=2, timeout=30.0):
        """Poll /healthz on fresh connections until every worker reports
        ``version`` as serving; returns the set of agreeing worker ids."""
        agreed: set[int] = set()
        deadline = time.monotonic() + timeout
        while agreed != set(range(num_workers)) and time.monotonic() < deadline:
            status, body, headers = http("GET", f"{base_url}/healthz", timeout=5.0)
            assert status == 200
            if body["serving_version"] == version:
                agreed.add(int(headers["X-Repro-Worker"]))
        return agreed

    def test_promote_and_rollback_reach_every_worker(self, bench, network):
        candidate = network.clone()
        shard = ShardedGateway(
            make_versioned_worker_factory(bench, network, candidate),
            num_workers=2,
            health_interval_seconds=0.1,
            drain_grace_seconds=0.05,
        )
        with shard:
            base = shard.base_url
            # The kernel routes this to ONE worker; the ops bus must carry
            # the swap to the other.
            status, body, _ = http(
                "POST", f"{base}/v1/models/promote", {"version": 2}
            )
            assert status == 200, body
            assert self.await_all_serving(base, 2) == {0, 1}

            ops = shard.stats()["ops_channel"]
            assert ops is not None
            assert ops["published"] >= 1
            assert ops["delivered"] >= 1

            status, body, _ = http("POST", f"{base}/v1/models/rollback")
            assert status == 200, body
            assert self.await_all_serving(base, 1) == {0, 1}

    def test_bus_can_be_disabled(self, bench, network):
        shard = ShardedGateway(
            make_worker_factory(bench, network),
            num_workers=1,
            ops_channel=False,
            drain_grace_seconds=0.05,
        )
        with shard:
            status, _, _ = http("GET", f"{shard.base_url}/healthz", timeout=5.0)
            assert status == 200
            assert shard.stats()["ops_channel"] is None
