"""In-process scoring: forward passes on the calling thread.

The baseline backend, and the fallback target when fancier ones fail.  Each
``submit`` featurises on the calling thread and runs the (chunked) forward
pass under one predict lock — concurrency across searches is limited by the
GIL and the lock, which is exactly the pre-refactor single-process behaviour.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Callable

import numpy as np

from repro.model.value_network import ValueNetwork
from repro.plans.nodes import PlanNode
from repro.scoring.core import NetworkResolver, ScoringCore
from repro.scoring.protocol import ScoringBridgeStats, VersionPin
from repro.sql.query import Query

if TYPE_CHECKING:
    from repro.lifecycle.registry import ModelRegistry


class InProcessBackend:
    """Synchronous scoring on the calling thread (the GIL-bound baseline).

    Args:
        network_provider: Zero-argument callable returning the current
            network (used for unpinned requests when no registry is
            followed).
        registry: Optional :class:`ModelRegistry` to resolve integer version
            pins against (equivalent to calling :meth:`follow`).
        featurizer: Featuriser for restoring registry snapshots and for
            featurising requests scored by signature-restored networks.
        max_batch_size: Forward-pass size cap (larger inputs are chunked).
    """

    def __init__(
        self,
        network_provider: Callable[[], "ValueNetwork | None"] | None = None,
        *,
        registry: "ModelRegistry | None" = None,
        featurizer=None,
        max_batch_size: int = 512,
    ):
        self._resolver = NetworkResolver(network_provider, registry, featurizer)
        self._core = ScoringCore(max_batch_size)
        # Bare predict stashes per-call activations on shared layer objects;
        # one lock serialises forward passes across submitting threads.
        self._predict_lock = threading.Lock()
        self._closed = False

    @property
    def max_batch_size(self) -> int:
        return self._core.max_batch_size

    def submit(
        self, query: Query, plans: list[PlanNode], version: VersionPin = None
    ) -> np.ndarray:
        """Score ``plans`` for ``query`` on the calling thread."""
        if self._closed:
            raise RuntimeError("scoring backend is closed")
        if not plans:
            return np.zeros(0, dtype=np.float64)
        network = self._resolver.resolve(version)
        featurizer = self._resolver.featurizer or network.featurizer
        examples = [featurizer.featurize(query, plan) for plan in plans]
        with self._predict_lock:
            return self._core.predict_examples(network, examples)

    def follow(self, registry: "ModelRegistry") -> None:
        """Resolve version pins (and unpinned requests) against ``registry``."""
        self._resolver.follow(registry)

    def stats(self) -> ScoringBridgeStats:
        """A snapshot of the batching counters."""
        return self._core.snapshot()

    def close(self) -> None:
        """Mark the backend closed (no resources to release)."""
        self._closed = True
