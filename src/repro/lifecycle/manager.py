"""The lifecycle manager: train → shadow → promote → warm, end to end.

:class:`ModelLifecycle` wires the four lifecycle pieces to a running
:class:`~repro.service.service.PlannerService`:

1. :meth:`baseline` registers and promotes the initially serving network;
2. :meth:`advance` (or the non-blocking :meth:`submit`) fine-tunes a clone of
   the serving network on fresh experience via the
   :class:`~repro.lifecycle.trainer.BackgroundTrainer`;
3. the candidate snapshot is shadow-evaluated against the serving version on
   the probe workload; the :class:`~repro.lifecycle.shadow.PromotionDecision`
   is recorded in the registry's audit trail either way;
4. approved candidates hot-swap into the service atomically (in-flight
   requests finish on version N, new requests plan with N+1) and the cache
   warmer immediately replans the known workload so steady-state traffic
   stays on the warm path; rejected candidates leave version N serving and
   bump the service's ``promotions_rejected`` counter.

:meth:`rollback` reverts to the previously serving version — same swap, same
warming — for when post-promotion monitoring disagrees with the gate.

Post-promotion monitoring itself plugs in through
:meth:`ModelLifecycle.attach_live_monitor`: a
:class:`~repro.server.shadow_traffic.TrafficShadower` (or anything with the
same ``watch``/``disarm`` surface) is armed after every promotion with the
(candidate, displaced-baseline) version pair, shadow-scores *live* traffic
against the pair, and calls :meth:`rollback` when the regression bound
breaks on what users actually run — not just on the probe workload.
"""

from __future__ import annotations

from concurrent.futures import Future
from typing import Sequence

from repro.featurization.featurizer import FeaturizedExample, QueryPlanFeaturizer
from repro.lifecycle.registry import ModelRegistry
from repro.lifecycle.shadow import PromotionDecision, ShadowEvaluator
from repro.lifecycle.snapshot import LifecycleError, ModelSnapshot
from repro.lifecycle.trainer import BackgroundTrainer
from repro.model.value_network import ValueNetwork
from repro.service.service import PlannerService
from repro.sql.query import Query
from repro.telemetry.events import emit_event


class ModelLifecycle:
    """Serve version N while N+1 trains, gates, swaps in and warms up.

    Args:
        service: The serving front door (must run the beam backend).
        registry: Snapshot store and promotion audit trail.
        shadow: The promotion gate.
        trainer: Background fine-tuner (one is built on ``registry`` when
            omitted).
        warm_queries: The known workload the cache warmer replans after every
            swap (defaults to the shadow evaluator's probe workload).
        featurizer: Featuriser used to restore snapshots (defaults to the
            serving network's).
    """

    def __init__(
        self,
        service: PlannerService,
        registry: ModelRegistry,
        shadow: ShadowEvaluator,
        trainer: BackgroundTrainer | None = None,
        warm_queries: Sequence[Query] | None = None,
        featurizer: QueryPlanFeaturizer | None = None,
    ):
        self.service = service
        self.registry = registry
        self.shadow = shadow
        self.trainer = trainer or BackgroundTrainer(registry)
        self.warm_queries = (
            list(warm_queries) if warm_queries is not None else list(shadow.probe_queries)
        )
        self._featurizer = featurizer
        #: Optional live-traffic monitor (``watch``/``disarm`` duck type),
        #: armed on every promotion with (candidate, displaced baseline).
        self.live_monitor = None

    def attach_live_monitor(self, monitor) -> None:
        """Arm ``monitor`` after every promotion (see module docstring).

        ``monitor`` needs ``watch(candidate_version, baseline_version)`` and
        ``disarm()`` — the :class:`~repro.server.shadow_traffic.TrafficShadower`
        surface.  Monitor failures never unwind an applied promotion.
        """
        self.live_monitor = monitor

    # ------------------------------------------------------------------ #
    # Setup
    # ------------------------------------------------------------------ #
    def baseline(
        self, network: ValueNetwork | None = None, source: str = "baseline"
    ) -> ModelSnapshot:
        """Register and promote the initially serving network.

        Args:
            network: The network to baseline (defaults to the service's
                current serving network — the common case after bootstrap).
            source: Provenance recorded on the snapshot.
        """
        network = network if network is not None else self._serving_network()
        snapshot = self.registry.register(network, source=source)
        self.registry.promote(snapshot.version)
        return snapshot

    # ------------------------------------------------------------------ #
    # Train → shadow → promote → warm
    # ------------------------------------------------------------------ #
    def advance(
        self,
        examples: Sequence[FeaturizedExample],
        labels: Sequence[float],
        *,
        max_epochs: int | None = None,
        refit_label_transform: bool = False,
        source: str = "fine-tune",
    ) -> PromotionDecision:
        """Run one full lifecycle round synchronously.

        Fine-tunes a clone of the serving network on ``(examples, labels)``,
        shadow-evaluates the candidate, and — only if the gate passes —
        hot-swaps it in and warms the cache.  The serving path keeps
        answering throughout (training happens on the background thread; this
        call merely waits for the outcome).
        """
        future = self.submit(
            examples,
            labels,
            max_epochs=max_epochs,
            refit_label_transform=refit_label_transform,
            source=source,
        )
        return future.result()

    def submit(
        self,
        examples: Sequence[FeaturizedExample],
        labels: Sequence[float],
        *,
        max_epochs: int | None = None,
        refit_label_transform: bool = False,
        source: str = "fine-tune",
    ) -> "Future[PromotionDecision]":
        """Non-blocking :meth:`advance`: returns a future of the decision.

        Training, shadow evaluation, the swap and the cache warming all run
        off the caller's thread; version N serves uninterrupted until (and
        unless) the candidate passes the gate.
        """
        base = self._serving_network()
        inner = self.trainer.submit(
            base,
            examples,
            labels,
            parent_version=self.registry.serving_version,
            refit_label_transform=refit_label_transform,
            max_epochs=max_epochs,
            source=source,
        )
        outcome: Future = Future()

        def _gate_and_swap(done: Future) -> None:
            try:
                report = done.result()
                outcome.set_result(self.evaluate_and_apply(report.snapshot))
            except BaseException as error:
                outcome.set_exception(error)

        inner.add_done_callback(_gate_and_swap)
        return outcome

    def evaluate_and_apply(self, snapshot: ModelSnapshot) -> PromotionDecision:
        """Shadow-evaluate ``snapshot`` and promote/reject accordingly."""
        serving = self._serving_network()
        featurizer = self._featurizer_for(serving)
        candidate = snapshot.restore(featurizer)
        # Shadow-score the serving side on a private restored copy: the live
        # network's bare ``predict`` is not thread-safe, and service traffic
        # keeps scoring on it while this evaluation runs.  A lifecycle used
        # without an explicit baseline() gets one implicitly so the copy
        # always exists.
        serving_version = self.registry.serving_version
        if serving_version is None or serving_version not in self.registry:
            serving_version = self.baseline(serving, source="auto-baseline").version
        shadow_serving = self.registry.restore(serving_version, featurizer)
        decision = self.shadow.evaluate(
            candidate,
            shadow_serving,
            candidate_version=snapshot.version,
            serving_version=serving_version,
        )
        self.registry.record_decision(decision)
        if decision.promoted:
            # Swap before promoting: if the swap cannot happen (service
            # closed), the registry must not claim a version is serving that
            # never took traffic.
            self.service.swap_network(candidate)
            self.registry.promote(snapshot.version)
            emit_event(
                "promotion",
                source="lifecycle-gate",
                version=snapshot.version,
                previous_version=serving_version,
            )
            self.warm()
            self._arm_live_monitor(snapshot.version, serving_version)
        else:
            self.service.record_promotion_rejected()
        return decision

    def _arm_live_monitor(
        self, candidate_version: int, baseline_version: int | None
    ) -> None:
        """Point the live monitor at the promotion that just landed."""
        if self.live_monitor is None:
            return
        import warnings

        try:
            self.live_monitor.watch(candidate_version, baseline_version)
        except Exception as error:  # noqa: BLE001 - advisory path
            warnings.warn(
                f"live monitor failed to arm for v{candidate_version}: {error}",
                RuntimeWarning,
                stacklevel=2,
            )

    def warm(self) -> int:
        """Replan the known workload so post-swap traffic hits the cache."""
        if not self.warm_queries:
            return 0
        return self.service.warm_cache(self.warm_queries)

    # ------------------------------------------------------------------ #
    # Rollback
    # ------------------------------------------------------------------ #
    def rollback(self, expected_serving: int | None = None) -> ModelSnapshot:
        """Revert serving to the previously promoted version (and rewarm).

        ``expected_serving`` is the registry's compare-and-rollback guard: a
        stale verdict (the live monitor condemning a version a concurrent
        promotion already displaced) aborts with a ``LifecycleError``
        instead of unseating the fresh promotion.

        A rollback retires whatever promotion the live monitor was watching,
        so the monitor is disarmed (it re-arms on the next promotion).
        """
        snapshot = self.registry.rollback(expected_serving=expected_serving)
        network = snapshot.restore(self._featurizer_for(self._serving_network()))
        self.service.swap_network(network)
        emit_event(
            "rollback",
            source="lifecycle",
            version=snapshot.version,
            rolled_back_from=expected_serving,
        )
        self.warm()
        if self.live_monitor is not None:
            import warnings

            try:
                self.live_monitor.disarm()
            except Exception as error:  # noqa: BLE001 - rollback already applied
                warnings.warn(
                    f"live monitor failed to disarm: {error}",
                    RuntimeWarning,
                    stacklevel=2,
                )
        return snapshot

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Stop the background trainer (the service is the caller's)."""
        self.trainer.close()

    def __enter__(self) -> "ModelLifecycle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _serving_network(self) -> ValueNetwork:
        network = self.service.serving_network()
        if network is None:
            raise LifecycleError(
                "the service has no serving value network (protocol backends "
                "cannot participate in the model lifecycle)"
            )
        return network

    def _featurizer_for(self, serving: ValueNetwork) -> QueryPlanFeaturizer:
        return self._featurizer if self._featurizer is not None else serving.featurizer
