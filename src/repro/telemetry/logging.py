"""Structured JSON logging shared by gateway, supervisor and scorer processes.

One formatter, one configuration entry point.  Every line is a single JSON
object carrying the timestamp, level, logger, message, the active request's
``trace_id`` (when the log call happens inside a traced request) and the
process context set via :func:`set_log_context` (worker id, process role,
planner).  Extra fields passed as ``logger.info(..., extra={...})`` with a
``repro_fields`` dict are merged in.

Child processes cannot inherit a configured handler across ``spawn``;
``examples/serve_http.py --log-json`` therefore also sets ``REPRO_LOG_JSON=1``
in the environment and scorer/worker bootstrap calls
:func:`maybe_configure_from_env`.
"""

from __future__ import annotations

import json
import logging
import os
import sys
import threading
import time

#: Environment toggle spawned processes check at bootstrap.
ENV_FLAG = "REPRO_LOG_JSON"

_context_lock = threading.Lock()
_context: dict = {}


def set_log_context(**fields) -> None:
    """Merge process-wide fields (worker_id, process role) into every line."""
    with _context_lock:
        for name, value in fields.items():
            if value is None:
                _context.pop(name, None)
            else:
                _context[name] = value


def get_log_context() -> dict:
    with _context_lock:
        return dict(_context)


class JsonLogFormatter(logging.Formatter):
    """Renders one record as one JSON object per line."""

    def format(self, record: logging.LogRecord) -> str:
        from repro.telemetry.trace import current_trace_id

        payload: dict = {
            "ts": round(record.created, 6),
            "level": record.levelname.lower(),
            "logger": record.name,
            "message": record.getMessage(),
        }
        trace_id = current_trace_id()
        if trace_id is not None:
            payload["trace_id"] = trace_id
        payload.update(get_log_context())
        fields = getattr(record, "repro_fields", None)
        if isinstance(fields, dict):
            payload.update(fields)
        if record.exc_info and record.exc_info[0] is not None:
            payload["exception"] = self.formatException(record.exc_info)
        try:
            return json.dumps(payload, default=str)
        except (TypeError, ValueError):
            return json.dumps(
                {"ts": time.time(), "level": "error",
                 "message": "unserialisable log record", "logger": record.name}
            )


def configure_json_logging(
    level: int = logging.INFO, stream=None, logger_name: str = "repro"
) -> logging.Logger:
    """Route the ``repro`` logger tree to JSON lines on ``stream`` (stderr).

    Idempotent: reconfiguring replaces the previously installed JSON handler
    instead of stacking duplicates.
    """
    logger = logging.getLogger(logger_name)
    logger.setLevel(level)
    logger.propagate = False
    for handler in list(logger.handlers):
        if getattr(handler, "_repro_json", False):
            logger.removeHandler(handler)
    handler = logging.StreamHandler(stream or sys.stderr)
    handler.setFormatter(JsonLogFormatter())
    handler._repro_json = True
    logger.addHandler(handler)
    return logger


def maybe_configure_from_env() -> bool:
    """Configure JSON logging when ``REPRO_LOG_JSON=1`` (child bootstrap)."""
    if os.environ.get(ENV_FLAG, "") != "1":
        return False
    configure_json_logging()
    return True
