"""Tests for the classical optimizers: DP, greedy, QuickPick, experts."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.costmodel.cout import CoutCostModel
from repro.costmodel.expert import ExpertCostModel
from repro.execution.hints import HintSet
from repro.optimizer.dp import DynamicProgrammingOptimizer
from repro.optimizer.expert import make_commdb_optimizer, make_postgres_optimizer
from repro.optimizer.greedy import GreedyOptimizer
from repro.optimizer.quickpick import QuickPickOptimizer, random_plan
from repro.planning.envelope import PlanRequest
from repro.plans.analysis import PlanShape, plan_shape
from repro.plans.builders import left_deep_plan
from repro.plans.nodes import JoinOperator, ScanOperator
from repro.plans.validation import is_valid_plan, validate_plan
from repro.sql.query import Query


def brute_force_left_deep_best(query: Query, cost_model) -> float:
    """Cheapest left-deep hash-join plan by exhaustive permutation search."""
    best = float("inf")
    for order in itertools.permutations(query.aliases):
        try:
            plan = left_deep_plan(query, list(order))
            validate_plan(query, plan)
        except Exception:
            continue
        best = min(best, cost_model.cost(query, plan))
    return best


class TestDynamicProgramming:
    def test_best_plan_is_valid(self, estimator, five_table_query):
        dp = DynamicProgrammingOptimizer(CoutCostModel(estimator), physical=False)
        result = dp.optimize(five_table_query)
        assert result.best_plan is not None
        validate_plan(five_table_query, result.best_plan)

    def test_dp_at_least_as_good_as_left_deep_brute_force(self, estimator, three_table_query):
        model = CoutCostModel(estimator)
        dp = DynamicProgrammingOptimizer(model, physical=False)
        result = dp.optimize(three_table_query)
        brute = brute_force_left_deep_best(three_table_query, model)
        assert result.best_cost <= brute + 1e-6

    def test_left_deep_restriction(self, estimator, five_table_query):
        dp = DynamicProgrammingOptimizer(
            CoutCostModel(estimator), left_deep_only=True, physical=False
        )
        result = dp.optimize(five_table_query)
        assert plan_shape(result.best_plan) in (PlanShape.LEFT_DEEP, PlanShape.SINGLE_TABLE)

    def test_bushy_cost_never_worse_than_left_deep(self, estimator, five_table_query):
        model = CoutCostModel(estimator)
        bushy = DynamicProgrammingOptimizer(model, physical=False).optimize(five_table_query)
        left_deep = DynamicProgrammingOptimizer(
            model, left_deep_only=True, physical=False
        ).optimize(five_table_query)
        assert bushy.best_cost <= left_deep.best_cost + 1e-9

    def test_collect_all_produces_candidates(self, estimator, three_table_query):
        dp = DynamicProgrammingOptimizer(CoutCostModel(estimator), physical=False)
        result = dp.optimize(three_table_query, collect_all=True)
        assert len(result.enumerated) == result.num_candidates > 0
        # Every enumerated candidate is a valid partial plan of its alias set.
        for candidate in result.enumerated:
            restricted = three_table_query.restricted_to(candidate.aliases)
            validate_plan(restricted, candidate.plan)

    def test_physical_enumeration_uses_operators(self, imdb_database, estimator, three_table_query):
        model = ExpertCostModel(estimator, imdb_database)
        dp = DynamicProgrammingOptimizer(model, physical=True)
        result = dp.optimize(three_table_query, collect_all=True)
        operators = {
            node.operator
            for candidate in result.enumerated
            for node in candidate.plan.iter_joins()
        }
        assert len(operators) >= 2

    def test_hint_set_restricts_operators(self, imdb_database, estimator, three_table_query):
        model = ExpertCostModel(estimator, imdb_database)
        hint = HintSet("hash_only", (JoinOperator.HASH_JOIN,), (ScanOperator.SEQ_SCAN,))
        dp = DynamicProgrammingOptimizer(model, hint_set=hint, physical=True)
        result = dp.optimize(three_table_query)
        for node in result.best_plan.iter_joins():
            assert node.operator is JoinOperator.HASH_JOIN
        for node in result.best_plan.iter_scans():
            assert node.operator is ScanOperator.SEQ_SCAN

    def test_disconnected_query_rejected(self, estimator):
        from repro.sql.query import TableRef

        query = Query("disc", (TableRef("title", "t"), TableRef("name", "n")))
        dp = DynamicProgrammingOptimizer(CoutCostModel(estimator), physical=False)
        with pytest.raises(ValueError):
            dp.optimize(query)


class TestGreedy:
    def test_produces_valid_plan(self, imdb_database, estimator, five_table_query):
        greedy = GreedyOptimizer(ExpertCostModel(estimator, imdb_database))
        result = greedy.plan(PlanRequest(query=five_table_query))
        plan, cost = result.best_plan, result.best_predicted_latency
        assert result.planner_name == "greedy"
        validate_plan(five_table_query, plan)
        assert cost > 0

    def test_greedy_cost_not_better_than_dp(self, imdb_database, estimator, five_table_query):
        model = ExpertCostModel(estimator, imdb_database)
        dp_cost = DynamicProgrammingOptimizer(model).optimize(five_table_query).best_cost
        _, greedy_cost = GreedyOptimizer(model).best_plan_and_cost(five_table_query)
        assert greedy_cost >= dp_cost - 1e-6


class TestQuickPick:
    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_random_plans_always_valid(self, seed, five_table_query):
        plan = random_plan(five_table_query, seed)
        assert is_valid_plan(five_table_query, plan)

    def test_left_deep_mode(self, five_table_query):
        plan = random_plan(five_table_query, 3, bushy=False)
        assert plan_shape(plan) in (PlanShape.LEFT_DEEP, PlanShape.SINGLE_TABLE)

    def test_optimizer_wrapper_varies_plans(self, five_table_query):
        optimizer = QuickPickOptimizer(seed=0)
        fingerprints = {
            optimizer.plan(PlanRequest(query=five_table_query)).best_plan.fingerprint()
            for _ in range(10)
        }
        assert len(fingerprints) > 1


class TestExpertOptimizers:
    def test_postgres_expert_plans_are_valid_and_cached(self, imdb_database, estimator, five_table_query):
        expert = make_postgres_optimizer(imdb_database, estimator)
        plan_a = expert.plan(PlanRequest(query=five_table_query)).best_plan
        plan_b = expert.plan(PlanRequest(query=five_table_query)).best_plan
        validate_plan(five_table_query, plan_a)
        assert plan_a.fingerprint() == plan_b.fingerprint()
        assert expert.stats.queries_planned == 1  # second call was cached

    def test_commdb_expert_is_left_deep(self, imdb_database, estimator, five_table_query):
        expert = make_commdb_optimizer(imdb_database, estimator)
        plan = expert.plan(PlanRequest(query=five_table_query)).best_plan
        assert plan_shape(plan) in (PlanShape.LEFT_DEEP, PlanShape.SINGLE_TABLE)

    def test_greedy_fallback_above_dp_limit(self, imdb_database, estimator, five_table_query):
        expert = make_postgres_optimizer(imdb_database, estimator, max_dp_tables=3)
        expert.plan(PlanRequest(query=five_table_query))
        assert expert.stats.greedy_planned == 1

    def test_with_hint_set_restricts_plan(self, imdb_database, estimator, five_table_query):
        expert = make_postgres_optimizer(imdb_database, estimator)
        restricted = expert.with_hint_set(
            HintSet("no_nl", (JoinOperator.HASH_JOIN, JoinOperator.MERGE_JOIN), (ScanOperator.SEQ_SCAN, ScanOperator.INDEX_SCAN))
        )
        plan = restricted.plan(PlanRequest(query=five_table_query)).best_plan
        assert all(j.operator is not JoinOperator.NESTED_LOOP for j in plan.iter_joins())

    def test_expert_beats_random_plans_on_latency(self, imdb_database, engine, estimator, five_table_query):
        expert = make_postgres_optimizer(imdb_database, estimator)
        expert_plan = expert.plan(PlanRequest(query=five_table_query)).best_plan
        expert_latency = engine.execute(five_table_query, expert_plan).latency
        random_latencies = [
            engine.execute(five_table_query, random_plan(five_table_query, s), timeout=600).latency
            for s in range(5)
        ]
        assert expert_latency <= min(random_latencies) * 1.5
