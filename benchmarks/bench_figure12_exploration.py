"""Figure 12: impact of exploration (count-based vs ε-greedy vs none).

Paper: count-based safe exploration generalises best to unseen queries and
sees the most distinct plans; ε-greedy has similar diversity but is unstable.
The shape to check: count-based executes at least as many unique plans as
no-exploration.
"""

from benchmarks.conftest import run_once
from repro.evaluation import experiments
from repro.evaluation.reporting import format_series


def bench_figure12_exploration_ablation(benchmark, scale):
    result = run_once(
        benchmark,
        experiments.run_figure12_exploration_ablation,
        scale,
        strategies=("count", "epsilon", "none"),
    )
    print()
    print("Figure 12: unique plans seen per iteration, by exploration strategy")
    print(
        format_series(
            {name: curves["unique_plans"] for name, curves in result["curves"].items()}
        )
    )
    assert (
        result["curves"]["count"]["unique_plans"][-1]
        >= result["curves"]["none"]["unique_plans"][-1]
    )
