"""A TPC-H-like workload: SPJ approximations of the paper's templates.

Paper §8.1 uses TPC-H templates 3, 5, 7, 8, 12, 13, 14 for training and
template 10 for testing, with 10 queries generated per template (avoiding
templates with views/sub-queries).  Balsa optimizes the select-project-join
block of each query, so this generator emits the SPJ skeleton of each template
(its join graph and filterable predicates) and draws literals per instance,
exactly the part of TPC-H that exercises the optimizer.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sql.expr import ComparisonOp, FilterPredicate, JoinPredicate
from repro.sql.query import Query, TableRef
from repro.utils.rng import new_rng


@dataclass
class TpchTemplate:
    """SPJ skeleton of one TPC-H template."""

    number: int
    tables: tuple[TableRef, ...]
    joins: tuple[JoinPredicate, ...]
    filter_slots: tuple[tuple[str, str, str], ...]  # (alias, column, kind)


def _templates() -> dict[int, TpchTemplate]:
    """The SPJ skeletons of templates 3, 5, 7, 8, 10, 12, 13, 14."""
    t = {}
    t[3] = TpchTemplate(
        3,
        (TableRef("customer", "c"), TableRef("orders", "o"), TableRef("lineitem", "l")),
        (
            JoinPredicate("c", "id", "o", "o_custkey"),
            JoinPredicate("o", "id", "l", "l_orderkey"),
        ),
        (("c", "c_mktsegment", "small_eq"), ("o", "o_orderdate", "date_lt"), ("l", "l_shipdate", "date_gt")),
    )
    t[5] = TpchTemplate(
        5,
        (
            TableRef("customer", "c"), TableRef("orders", "o"), TableRef("lineitem", "l"),
            TableRef("supplier", "s"), TableRef("nation", "n"), TableRef("region", "r"),
        ),
        (
            JoinPredicate("c", "id", "o", "o_custkey"),
            JoinPredicate("o", "id", "l", "l_orderkey"),
            JoinPredicate("l", "l_suppkey", "s", "id"),
            JoinPredicate("s", "s_nationkey", "n", "id"),
            JoinPredicate("n", "n_regionkey", "r", "id"),
        ),
        (("r", "r_name", "tiny_eq"), ("o", "o_orderdate", "date_between")),
    )
    t[7] = TpchTemplate(
        7,
        (
            TableRef("supplier", "s"), TableRef("lineitem", "l"), TableRef("orders", "o"),
            TableRef("customer", "c"), TableRef("nation", "n1"), TableRef("nation", "n2"),
        ),
        (
            JoinPredicate("s", "id", "l", "l_suppkey"),
            JoinPredicate("o", "id", "l", "l_orderkey"),
            JoinPredicate("c", "id", "o", "o_custkey"),
            JoinPredicate("s", "s_nationkey", "n1", "id"),
            JoinPredicate("c", "c_nationkey", "n2", "id"),
        ),
        (("n1", "n_name", "nation_eq"), ("n2", "n_name", "nation_eq"), ("l", "l_shipdate", "date_between")),
    )
    t[8] = TpchTemplate(
        8,
        (
            TableRef("part", "p"), TableRef("supplier", "s"), TableRef("lineitem", "l"),
            TableRef("orders", "o"), TableRef("customer", "c"), TableRef("nation", "n1"),
            TableRef("nation", "n2"), TableRef("region", "r"),
        ),
        (
            JoinPredicate("p", "id", "l", "l_partkey"),
            JoinPredicate("s", "id", "l", "l_suppkey"),
            JoinPredicate("l", "l_orderkey", "o", "id"),
            JoinPredicate("o", "o_custkey", "c", "id"),
            JoinPredicate("c", "c_nationkey", "n1", "id"),
            JoinPredicate("n1", "n_regionkey", "r", "id"),
            JoinPredicate("s", "s_nationkey", "n2", "id"),
        ),
        (("p", "p_type", "cat_eq"), ("r", "r_name", "tiny_eq"), ("o", "o_orderdate", "date_between")),
    )
    t[10] = TpchTemplate(
        10,
        (
            TableRef("customer", "c"), TableRef("orders", "o"), TableRef("lineitem", "l"),
            TableRef("nation", "n"),
        ),
        (
            JoinPredicate("c", "id", "o", "o_custkey"),
            JoinPredicate("o", "id", "l", "l_orderkey"),
            JoinPredicate("c", "c_nationkey", "n", "id"),
        ),
        (("o", "o_orderdate", "date_between"), ("l", "l_returnflag", "tiny_eq")),
    )
    t[12] = TpchTemplate(
        12,
        (TableRef("orders", "o"), TableRef("lineitem", "l")),
        (JoinPredicate("o", "id", "l", "l_orderkey"),),
        (("l", "l_shipmode", "shipmode_in"), ("l", "l_receiptdate", "date_between")),
    )
    t[13] = TpchTemplate(
        13,
        (TableRef("customer", "c"), TableRef("orders", "o")),
        (JoinPredicate("c", "id", "o", "o_custkey"),),
        (("o", "o_orderpriority", "small_eq"),),
    )
    t[14] = TpchTemplate(
        14,
        (TableRef("lineitem", "l"), TableRef("part", "p")),
        (JoinPredicate("l", "l_partkey", "p", "id"),),
        (("l", "l_shipdate", "date_between"), ("p", "p_size", "size_le")),
    )
    return t


def _draw_filter(rng: np.random.Generator, alias: str, column: str, kind: str) -> FilterPredicate:
    if kind == "date_lt":
        return FilterPredicate(alias, column, ComparisonOp.LT, int(rng.integers(800, 2200)))
    if kind == "date_gt":
        return FilterPredicate(alias, column, ComparisonOp.GT, int(rng.integers(300, 1700)))
    if kind == "date_between":
        low = int(rng.integers(0, 1800))
        return FilterPredicate(alias, column, ComparisonOp.BETWEEN, (low, low + int(rng.integers(200, 700))))
    if kind == "small_eq":
        return FilterPredicate(alias, column, ComparisonOp.EQ, int(rng.integers(0, 5)))
    if kind == "tiny_eq":
        return FilterPredicate(alias, column, ComparisonOp.EQ, int(rng.integers(0, 3)))
    if kind == "nation_eq":
        return FilterPredicate(alias, column, ComparisonOp.EQ, int(rng.integers(0, 25)))
    if kind == "cat_eq":
        return FilterPredicate(alias, column, ComparisonOp.EQ, int(rng.integers(0, 150)))
    if kind == "shipmode_in":
        values = tuple(sorted(set(int(v) for v in rng.integers(0, 7, size=2))))
        return FilterPredicate(alias, column, ComparisonOp.IN, values)
    if kind == "size_le":
        return FilterPredicate(alias, column, ComparisonOp.LE, int(rng.integers(5, 50)))
    raise ValueError(f"unknown filter kind {kind!r}")


def make_tpch_queries(
    train_templates: tuple[int, ...] = (3, 5, 7, 8, 12, 13, 14),
    test_templates: tuple[int, ...] = (10,),
    queries_per_template: int = 10,
    seed: int = 0,
) -> tuple[list[Query], list[Query]]:
    """Generate the TPC-H-like train/test workloads.

    Args:
        train_templates: Template numbers used for training.
        test_templates: Template numbers used for testing.
        queries_per_template: Instances generated per template.
        seed: RNG seed.

    Returns:
        ``(train_queries, test_queries)``.
    """
    rng = new_rng(seed)
    skeletons = _templates()

    def instantiate(numbers: tuple[int, ...]) -> list[Query]:
        queries = []
        for number in numbers:
            template = skeletons[number]
            for v in range(queries_per_template):
                filters = tuple(
                    _draw_filter(rng, alias, column, kind)
                    for alias, column, kind in template.filter_slots
                )
                queries.append(
                    Query(
                        name=f"tpch{number}_{v + 1}",
                        tables=template.tables,
                        joins=template.joins,
                        filters=filters,
                    )
                )
        return queries

    return instantiate(train_templates), instantiate(test_templates)
