"""Planner-service throughput: queries/sec, cache-hit speedup, coalescing.

Not a paper figure — this measures the serving layer added on top of the
paper's beam search.  For each workload (JOB-like and TPC-H-like) the bench
plans the full query set three ways under one untrained value network:

- ``serial``      — plain ``BeamSearchPlanner.plan`` in a loop (the pre-service
  baseline; also warms the shared featurizer cache so the service passes
  measure search + scoring, not featurisation);
- ``cold``        — ``PlannerService.plan_many`` with a worker pool and the
  batched scoring bridge, empty plan cache (every request misses);
- ``warm``        — the same requests again (every request hits the cache).

The numbers to watch: warm/cold speedup (must be >= 5x, it is typically a few
hundred x), concurrent-vs-serial wall clock, and the bridge's mean forward
batch size versus the per-frontier batches of serial search.  All headline
figures are attached to ``benchmark.extra_info`` so ``--benchmark-json``
artifacts expose them to CI.
"""

from __future__ import annotations

import os
import time

from benchmarks.conftest import run_once
from repro.evaluation.reporting import format_table
from repro.model.value_network import ValueNetwork, ValueNetworkConfig
from repro.search.beam import BeamSearchPlanner
from repro.workloads.benchmark import make_job_benchmark, make_tpch_benchmark

#: CI smoke mode (REPRO_BENCH_QUICK=1) shrinks the workloads further.
QUICK = os.environ.get("REPRO_BENCH_QUICK", "") == "1"

MIN_WARM_SPEEDUP = 5.0


def _make_planner() -> BeamSearchPlanner:
    return BeamSearchPlanner(beam_size=5, top_k=3, enumerate_scan_operators=False)


def _make_network(benchmark_bundle) -> ValueNetwork:
    return ValueNetwork(
        benchmark_bundle.featurizer,
        ValueNetworkConfig(
            query_hidden=32, query_embedding=16, tree_channels=(32, 16), head_hidden=16,
            seed=0,
        ),
    )


def _measure_workload(bundle, queries, workers: int = 4) -> dict:
    """Plan ``queries`` serially, then cold and warm through the service."""
    network = _make_network(bundle)
    planner = _make_planner()

    serial_started = time.perf_counter()
    serial_results = [planner.plan(query, network) for query in queries]
    serial_seconds = time.perf_counter() - serial_started

    with bundle.planner_service(
        network, planner=_make_planner(), max_workers=workers
    ) as service:
        cold_started = time.perf_counter()
        cold = service.plan_many(queries)
        cold_seconds = time.perf_counter() - cold_started

        warm_started = time.perf_counter()
        warm = service.plan_many(queries)
        warm_seconds = time.perf_counter() - warm_started
        metrics = service.metrics()

    assert all(not response.cache_hit for response in cold)
    assert all(response.cache_hit for response in warm)
    # Concurrent planning returns the same best plans as the serial baseline.
    for direct, response in zip(serial_results, cold):
        assert direct.best_plan.fingerprint() == response.best_plan.fingerprint()

    count = len(queries)
    return {
        "queries": count,
        "serial_seconds": serial_seconds,
        "cold_seconds": cold_seconds,
        "warm_seconds": warm_seconds,
        "serial_qps": count / serial_seconds if serial_seconds > 0 else 0.0,
        "cold_qps": count / cold_seconds if cold_seconds > 0 else 0.0,
        "warm_qps": count / warm_seconds if warm_seconds > 0 else 0.0,
        "warm_speedup": cold_seconds / warm_seconds if warm_seconds > 0 else float("inf"),
        "concurrent_speedup": serial_seconds / cold_seconds if cold_seconds > 0 else 0.0,
        "hit_rate": metrics.hit_rate,
        "mean_forward_batch": metrics.scoring.mean_batch_examples,
        "max_forward_batch": metrics.scoring.max_batch_examples,
    }


def _run_service_throughput(scale) -> dict:
    num_queries = 8 if QUICK else scale.num_queries
    job = make_job_benchmark(
        fact_rows=scale.fact_rows,
        num_queries=num_queries,
        num_templates=min(scale.num_templates, num_queries),
        test_size=min(scale.test_size, max(num_queries - 2, 1)),
        seed=0,
        size_range=scale.size_range,
    )
    tpch = make_tpch_benchmark(
        base_rows=scale.tpch_rows,
        queries_per_template=1 if QUICK else scale.tpch_queries_per_template,
        seed=0,
    )
    rows = {
        "job": _measure_workload(job, job.all_queries()),
        "tpch": _measure_workload(tpch, tpch.all_queries()),
    }
    return rows


def bench_service_throughput(benchmark, scale):
    result = run_once(benchmark, _run_service_throughput, scale)
    print()
    print(
        format_table(
            [
                "workload", "queries", "serial q/s", "cold q/s", "warm q/s",
                "warm speedup", "mean batch",
            ],
            [
                [
                    name,
                    row["queries"],
                    f"{row['serial_qps']:.1f}",
                    f"{row['cold_qps']:.1f}",
                    f"{row['warm_qps']:.0f}",
                    f"{row['warm_speedup']:.0f}x",
                    f"{row['mean_forward_batch']:.1f}",
                ]
                for name, row in result.items()
            ],
            title="Planner service throughput (cold = empty cache, warm = repeat)",
        )
    )
    for name, row in result.items():
        for key in (
            "serial_qps", "cold_qps", "warm_qps", "warm_speedup",
            "concurrent_speedup", "mean_forward_batch",
        ):
            benchmark.extra_info[f"{name}_{key}"] = round(float(row[key]), 3)
        # The acceptance bar: a warm cache must be at least 5x faster.
        assert row["warm_speedup"] >= MIN_WARM_SPEEDUP, (name, row["warm_speedup"])
