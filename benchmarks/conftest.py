"""Shared configuration for the benchmark suite.

Every benchmark regenerates one table or figure of the paper at the ``tiny``
experiment scale, runs the corresponding experiment exactly once inside
``benchmark.pedantic(..., rounds=1, iterations=1)`` (a full experiment is far
too expensive to repeat for statistical timing), and prints the resulting rows
or series so the run doubles as a results report.  ``EXPERIMENTS.md`` records
how these scaled-down results compare to the paper's.
"""

from __future__ import annotations

import pytest

from repro.evaluation.experiments import ExperimentScale


@pytest.fixture(scope="session")
def scale() -> ExperimentScale:
    """The tiny experiment scale shared by all benchmarks."""
    return ExperimentScale.tiny()


def run_once(benchmark, function, *args, **kwargs):
    """Run ``function`` once under pytest-benchmark and return its result."""
    return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)
