"""Tests for featurisation and the value network (forward, backward, training)."""

import numpy as np
import pytest

from repro.featurization.plan_encoder import OPERATOR_ORDER, PlanEncoder
from repro.featurization.query_encoder import QueryEncoder
from repro.model.trainer import ValueNetworkTrainer
from repro.model.value_network import ValueNetwork, ValueNetworkConfig
from repro.plans.builders import join, left_deep_plan, scan
from repro.plans.nodes import JoinOperator


SMALL_CONFIG = ValueNetworkConfig(
    query_hidden=16, query_embedding=8, tree_channels=(16, 8), head_hidden=8, seed=0
)


class TestQueryEncoder:
    def test_dimension_matches_schema(self, imdb_database, estimator):
        encoder = QueryEncoder(imdb_database.schema, estimator)
        assert encoder.dimension == len(imdb_database.schema.table_names())

    def test_absent_tables_zero(self, imdb_database, estimator, three_table_query):
        encoder = QueryEncoder(imdb_database.schema, estimator)
        encoding = encoder.encode(three_table_query)
        slots = {t: i for i, t in enumerate(encoder.table_order)}
        assert encoding[slots["cast_info"]] == 0.0
        assert encoding[slots["title"]] > 0.0

    def test_unfiltered_present_table_is_one(self, imdb_database, estimator, three_table_query):
        encoder = QueryEncoder(imdb_database.schema, estimator)
        encoding = encoder.encode(three_table_query)
        slots = {t: i for i, t in enumerate(encoder.table_order)}
        assert encoding[slots["movie_companies"]] == pytest.approx(1.0)

    def test_values_in_unit_interval(self, imdb_database, estimator, five_table_query):
        encoder = QueryEncoder(imdb_database.schema, estimator)
        encoding = encoder.encode(five_table_query)
        assert np.all(encoding >= 0.0) and np.all(encoding <= 1.0)

    def test_caching_returns_same_array(self, imdb_database, estimator, five_table_query):
        encoder = QueryEncoder(imdb_database.schema, estimator)
        assert encoder.encode(five_table_query) is encoder.encode(five_table_query)


class TestPlanEncoder:
    def test_node_dimension(self, imdb_database):
        encoder = PlanEncoder(imdb_database.schema)
        assert encoder.node_dimension == len(OPERATOR_ORDER) + len(
            imdb_database.schema.table_names()
        )

    def test_flatten_structure(self, imdb_database, three_table_query):
        encoder = PlanEncoder(imdb_database.schema)
        plan = left_deep_plan(three_table_query, ["t", "mc", "cn"])
        flattened = encoder.flatten(plan, dict(three_table_query.alias_to_table))
        assert flattened.num_nodes == 5
        assert flattened.features.shape == (6, encoder.node_dimension)
        assert np.all(flattened.features[0] == 0.0)
        # The root (slot 1 in preorder) is a join with two children.
        assert flattened.left[1] != 0 and flattened.right[1] != 0
        # Scans have no children.
        scans = [i for i in range(1, 6) if flattened.left[i] == 0 and flattened.right[i] == 0]
        assert len(scans) == 3

    def test_operator_one_hot(self, imdb_database, three_table_query):
        encoder = PlanEncoder(imdb_database.schema)
        q = three_table_query
        node = join(scan(q, "t"), scan(q, "mc"), JoinOperator.MERGE_JOIN)
        features = encoder.node_features(node, dict(q.alias_to_table))
        operator_slice = features[: len(OPERATOR_ORDER)]
        assert operator_slice.sum() == 1.0
        assert operator_slice[OPERATOR_ORDER.index("MergeJoin")] == 1.0

    def test_table_multi_hot_counts_subtree(self, imdb_database, three_table_query):
        encoder = PlanEncoder(imdb_database.schema)
        q = three_table_query
        node = join(scan(q, "t"), scan(q, "mc"))
        features = encoder.node_features(node, dict(q.alias_to_table))
        assert features[len(OPERATOR_ORDER):].sum() == 2.0


class TestFeaturizerBatching:
    def test_batch_pads_to_max(self, featurizer, three_table_query, five_table_query):
        small = featurizer.featurize(
            three_table_query, left_deep_plan(three_table_query, ["t", "mc", "cn"])
        )
        large = featurizer.featurize(
            five_table_query, left_deep_plan(five_table_query, ["t", "mc", "cn", "mi", "it"])
        )
        queries, tree_batch = featurizer.batch([small, large])
        assert queries.shape[0] == 2
        assert tree_batch.features.shape[1] == 10  # 9 nodes + sentinel
        assert tree_batch.valid[0].sum() == 5
        assert tree_batch.valid[1].sum() == 9

    def test_empty_batch_rejected(self, featurizer):
        with pytest.raises(ValueError):
            featurizer.batch([])

    def test_featurize_is_cached(self, featurizer, three_table_query):
        plan = left_deep_plan(three_table_query, ["t", "mc", "cn"])
        assert featurizer.featurize(three_table_query, plan) is featurizer.featurize(
            three_table_query, plan
        )


class TestValueNetwork:
    def test_forward_shapes_and_determinism(self, featurizer, three_table_query):
        network = ValueNetwork(featurizer, SMALL_CONFIG)
        plans = [
            left_deep_plan(three_table_query, ["t", "mc", "cn"]),
            left_deep_plan(three_table_query, ["cn", "mc", "t"]),
        ]
        a = network.predict(three_table_query, plans)
        b = network.predict(three_table_query, plans)
        assert a.shape == (2,)
        assert np.allclose(a, b)

    def test_label_transform_round_trip(self, featurizer):
        network = ValueNetwork(featurizer, SMALL_CONFIG)
        labels = np.array([0.01, 1.0, 100.0, 4096.0])
        network.fit_label_transform(labels)
        recovered = network.inverse_transform(network.transform_labels(labels))
        assert np.allclose(recovered, labels, rtol=1e-6)

    def test_clone_preserves_predictions(self, featurizer, three_table_query):
        network = ValueNetwork(featurizer, SMALL_CONFIG)
        clone = network.clone()
        plan = left_deep_plan(three_table_query, ["t", "mc", "cn"])
        assert network.predict_one(three_table_query, plan) == pytest.approx(
            clone.predict_one(three_table_query, plan)
        )

    def test_set_state_shape_mismatch_rejected(self, featurizer):
        network = ValueNetwork(featurizer, SMALL_CONFIG)
        state = network.get_state()
        state["query_fc1.weight"] = np.zeros((1, 1))
        with pytest.raises(ValueError):
            network.set_state(state)

    def test_num_parameters_positive(self, featurizer):
        network = ValueNetwork(featurizer, SMALL_CONFIG)
        assert network.num_parameters() > 1000

    def test_end_to_end_gradient_check(self, featurizer, three_table_query):
        """Full-network gradient check on a couple of weights."""
        network = ValueNetwork(featurizer, SMALL_CONFIG)
        plan = left_deep_plan(three_table_query, ["t", "mc", "cn"])
        example = featurizer.featurize(three_table_query, plan)
        queries, tree_batch = featurizer.batch([example, example])
        target = np.array([0.3, 0.3])

        def loss_value():
            out = network.forward(queries, tree_batch)
            return 0.5 * float(np.sum((out - target) ** 2))

        out = network.forward(queries, tree_batch)
        for parameter in network.parameters():
            parameter.zero_grad()
        network.backward(out - target)

        for parameter in (network.head_fc2.weight, network.query_fc1.weight):
            numeric_full = np.zeros_like(parameter.value)
            # Check a handful of coordinates to keep the test fast.
            flat = parameter.value.reshape(-1)
            numeric = np.zeros(min(5, flat.size))
            analytic = parameter.grad.reshape(-1)[: numeric.size]
            for i in range(numeric.size):
                original = flat[i]
                flat[i] = original + 1e-6
                plus = loss_value()
                flat[i] = original - 1e-6
                minus = loss_value()
                flat[i] = original
                numeric[i] = (plus - minus) / 2e-6
            assert np.allclose(analytic, numeric, atol=1e-4)


class TestTrainer:
    def _dataset(self, featurizer, query):
        """A tiny synthetic regression problem: label = number of joins."""
        plans = [
            left_deep_plan(query, ["t", "mc", "cn"]),
            left_deep_plan(query, ["cn", "mc", "t"]),
            left_deep_plan(query, ["mc", "t", "cn"]),
            join(join(scan(query, "t"), scan(query, "mc")), scan(query, "cn"), JoinOperator.MERGE_JOIN),
        ]
        examples = [featurizer.featurize(query, p) for p in plans] * 8
        labels = [1.0, 4.0, 2.0, 8.0] * 8
        return examples, labels

    def test_training_reduces_loss(self, featurizer, three_table_query):
        network = ValueNetwork(featurizer, SMALL_CONFIG)
        trainer = ValueNetworkTrainer(
            network, learning_rate=3e-3, batch_size=8, max_epochs=15, validation_fraction=0.0
        )
        examples, labels = self._dataset(featurizer, three_table_query)
        history = trainer.fit(examples, labels)
        assert history.epochs_run >= 1
        assert history.train_losses[-1] < history.train_losses[0]

    def test_validation_split_and_early_stopping_fields(self, featurizer, three_table_query):
        network = ValueNetwork(featurizer, SMALL_CONFIG)
        trainer = ValueNetworkTrainer(
            network, batch_size=8, max_epochs=6, validation_fraction=0.2, patience=2
        )
        examples, labels = self._dataset(featurizer, three_table_query)
        history = trainer.fit(examples, labels)
        assert len(history.validation_losses) == history.epochs_run

    def test_empty_dataset_is_noop(self, featurizer):
        network = ValueNetwork(featurizer, SMALL_CONFIG)
        trainer = ValueNetworkTrainer(network)
        history = trainer.fit([], [])
        assert history.epochs_run == 0

    def test_mismatched_lengths_rejected(self, featurizer):
        network = ValueNetwork(featurizer, SMALL_CONFIG)
        trainer = ValueNetworkTrainer(network)
        with pytest.raises(ValueError):
            trainer.fit([], [1.0])
