"""Plan cache: skip re-executing plans whose runtime is already known.

Paper §7 ("Optimizations"): *"A plan cache is used so that reissued plans have
their prior runtimes quickly looked up and can skip re-execution."*

A completed execution is always reusable.  A timed-out execution is only
reusable when the new timeout budget is not larger than the budget it already
failed at (a larger budget might let the plan finish).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.execution.engine import ExecutionResult


@dataclass
class _CacheEntry:
    result: ExecutionResult
    timeout_budget: float | None


class PlanCache:
    """An in-memory cache of plan execution results keyed by plan fingerprint."""

    def __init__(self):
        self._entries: dict[tuple[str, str], _CacheEntry] = {}
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(
        self, query_name: str, plan_fingerprint: str, timeout: float | None
    ) -> ExecutionResult | None:
        """Return a cached result usable under the requested timeout, if any."""
        entry = self._entries.get((query_name, plan_fingerprint))
        if entry is None:
            self.misses += 1
            return None
        if not entry.result.timed_out:
            self.hits += 1
            return entry.result
        # The cached run timed out; only reuse it if the new budget is not more
        # generous than the one it already failed under.
        if timeout is not None and (
            entry.timeout_budget is None or timeout <= entry.timeout_budget
        ):
            self.hits += 1
            return entry.result
        self.misses += 1
        return None

    def store(
        self,
        query_name: str,
        plan_fingerprint: str,
        result: ExecutionResult,
        timeout: float | None,
    ) -> None:
        """Record an execution result.

        Completed results overwrite timed-out ones; timed-out results keep the
        largest budget they were observed failing under.
        """
        key = (query_name, plan_fingerprint)
        existing = self._entries.get(key)
        if existing is not None and not existing.result.timed_out and result.timed_out:
            return
        if (
            existing is not None
            and existing.result.timed_out
            and result.timed_out
            and existing.timeout_budget is not None
            and timeout is not None
            and timeout < existing.timeout_budget
        ):
            return
        self._entries[key] = _CacheEntry(result=result, timeout_budget=timeout)

    def clear(self) -> None:
        """Drop all cached entries and reset counters."""
        self._entries.clear()
        self.hits = 0
        self.misses = 0
