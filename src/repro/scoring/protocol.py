"""The ``ScoringBackend`` protocol: one contract for every scoring path.

Everything between ``BeamSearchPlanner.search(score_fn=...)`` and
``ValueNetwork.predict_examples`` lives behind this interface.  A backend
accepts ``(query, plans)`` scoring requests pinned to a model version, runs
value-network forward passes *somewhere* — on the calling thread, on a shared
coalescing thread, or in a pool of scorer processes — and returns raw-unit
predictions.  The serving layer picks an implementation per
``BalsaConfig.scoring_backend``; beam search itself never knows which one is
wired in (its ``score_fn`` signature is unchanged).

Version pins are deliberately loose: a live :class:`ValueNetwork` (in-process
backends score it directly; the process backend publishes its weights as a
snapshot first), a registry version number (resolved through a followed
:class:`~repro.lifecycle.registry.ModelRegistry`), or ``None`` for "whatever
is currently serving".  Two requests pinned to different versions are never
mixed into one forward pass.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Protocol, Union, runtime_checkable

import numpy as np

from repro.plans.nodes import PlanNode
from repro.sql.query import Query

if TYPE_CHECKING:
    from repro.lifecycle.registry import ModelRegistry
    from repro.model.value_network import ValueNetwork

#: What ``submit`` accepts as a version pin: a live network, a registry
#: version number, or ``None`` (the backend's current/serving model).
VersionPin = Union["ValueNetwork", int, None]


class ScoringBackendError(RuntimeError):
    """A scoring backend failed to serve a request.

    Typed so the serving layer can distinguish backend infrastructure
    failures (a scorer process crashed mid-batch, a version could not be
    resolved, a submit timed out) from planner bugs — and count them toward
    its in-process fallback — while the waiting search still gets an
    exception instead of a hang.
    """


@dataclass
class ScoringBridgeStats:
    """Counters describing how well scoring requests batched and coalesced.

    Attributes:
        requests: Scoring requests submitted by beam searches.
        examples: Total (query, plan) pairs scored.
        forward_batches: Value-network forward passes actually run.
        coalesced_batches: Forward passes that merged more than one request.
        max_batch_examples: Largest single forward-pass batch actually run.
        versions_published: Model versions published to scorer processes
            (process backend only).
        worker_crashes: Scorer processes that died mid-service (process
            backend only).
        workers_respawned: Crashed scorer processes replaced with fresh ones
            (process backend with ``max_respawns > 0`` only).
        shm_batches: Request payloads shipped zero-copy through a
            shared-memory ring slot (``process+shm`` backend only).
        shm_fallbacks: Requests that wanted the shared-memory path but took
            the copying queue path instead (oversize payload or full ring).
        leases_reclaimed: Ring-slot leases freed by the supervisor after a
            scorer process died holding them.
        scale_ups: Autoscaler decisions that added a scorer process.
        scale_downs: Autoscaler decisions that retired a scorer process.
        workers_current: Scorer processes serving at snapshot time (gauge).
        queue_depth: Requests in flight across the pool at snapshot time
            (gauge).
        ring_occupancy: Mean fraction of request-ring slots leased at
            snapshot time (gauge, 0 when no rings are configured).
        adaptive_batch_cap: Current adaptive forward-pass batch cap (gauge,
            0 when the adaptive controller is off).
        worker_queue_depths: Per-worker in-flight request counts at snapshot
            time (gauge vector; dead/retired workers report 0).
        worker_inflight: Per-worker counts of batches actually being scored
            at snapshot time (gauge vector).
    """

    requests: int = 0
    examples: int = 0
    forward_batches: int = 0
    coalesced_batches: int = 0
    max_batch_examples: int = 0
    versions_published: int = 0
    worker_crashes: int = 0
    workers_respawned: int = 0
    shm_batches: int = 0
    shm_fallbacks: int = 0
    leases_reclaimed: int = 0
    scale_ups: int = 0
    scale_downs: int = 0
    workers_current: int = 0
    queue_depth: int = 0
    ring_occupancy: float = 0.0
    adaptive_batch_cap: int = 0
    worker_queue_depths: tuple = ()
    worker_inflight: tuple = ()

    @property
    def mean_batch_examples(self) -> float:
        """Average examples per forward pass (0 when nothing was scored)."""
        return self.examples / self.forward_batches if self.forward_batches else 0.0


#: Alias reflecting the post-refactor naming (the "bridge" name survives for
#: the service layer's historical imports).
ScoringStats = ScoringBridgeStats


@runtime_checkable
class ScoringBackend(Protocol):
    """The scoring path contract the planner service programs against."""

    def submit(
        self, query: Query, plans: list[PlanNode], version: VersionPin = None
    ) -> np.ndarray:
        """Score ``plans`` for ``query`` under ``version``; blocks until done.

        Drop-in replacement for ``ValueNetwork.predict`` — searches call this
        as their ``score_fn`` (via a bound wrapper).  Raises
        :class:`ScoringBackendError` on backend infrastructure failures.
        """
        ...

    def follow(self, registry: "ModelRegistry") -> None:
        """Track ``registry`` promotions: unpinned requests score the serving
        version, and integer pins resolve through the registry."""
        ...

    def stats(self) -> ScoringBridgeStats:
        """A snapshot of the batching/coalescing counters."""
        ...

    def close(self) -> None:
        """Release scorer threads/processes; pending requests are served."""
        ...
