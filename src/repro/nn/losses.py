"""Losses.

The paper fine-tunes the value network with "SGD with an L2 loss between
predicted and true latencies" (§4.1); :func:`mse_loss` is that loss.
"""

from __future__ import annotations

import numpy as np


def mse_loss(
    predictions: np.ndarray, targets: np.ndarray
) -> tuple[float, np.ndarray]:
    """Mean-squared-error loss and its gradient w.r.t. the predictions.

    Args:
        predictions: Predicted values, any shape.
        targets: True values, same shape.

    Returns:
        ``(loss, grad)`` where ``grad`` has the same shape as ``predictions``.
    """
    predictions = np.asarray(predictions, dtype=np.float64)
    targets = np.asarray(targets, dtype=np.float64)
    if predictions.shape != targets.shape:
        raise ValueError(
            f"shape mismatch: predictions {predictions.shape} vs targets {targets.shape}"
        )
    diff = predictions - targets
    loss = float(np.mean(diff**2))
    grad = 2.0 * diff / diff.size
    return loss, grad
