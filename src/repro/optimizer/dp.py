"""Selinger-style bottom-up dynamic programming over bushy (or left-deep) spaces.

The enumerator serves both classical planning (keep the cheapest plan per
alias subset) and Balsa's simulation data collection (§3.2), which records
*every* enumerated candidate — not just the winners — to maximise data variety.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.costmodel.base import CostModel
from repro.execution.hints import HintSet
from repro.planning.envelope import PlanRequest, PlanResult
from repro.plans.builders import scan
from repro.plans.nodes import JoinNode, JoinOperator, PlanNode, ScanOperator
from repro.sql.query import Query


@dataclass
class EnumeratedPlan:
    """One candidate emitted during DP enumeration.

    Attributes:
        aliases: Alias subset the candidate covers.
        plan: The candidate plan (children are the DP-optimal subplans).
        cost: Total cost under the enumerator's cost model.
    """

    aliases: frozenset[str]
    plan: PlanNode
    cost: float


@dataclass
class DpResult:
    """Result of running the DP enumerator on one query.

    Attributes:
        best_plan: Cheapest complete plan found (``None`` only if the query's
            join graph is disconnected).
        best_cost: Its total cost.
        enumerated: All candidates emitted during enumeration (empty unless
            ``collect_all`` was requested).
        num_candidates: Number of candidate plans considered.
    """

    best_plan: PlanNode | None
    best_cost: float
    enumerated: list[EnumeratedPlan] = field(default_factory=list)
    num_candidates: int = 0


class DynamicProgrammingOptimizer:
    """Bottom-up DP plan enumerator.

    Args:
        cost_model: Additive cost model used to score candidates.
        left_deep_only: Restrict the space to left-deep trees (used by the
            CommDB-like expert and by SkinnerDB-style comparisons).
        hint_set: Restricts the physical operators considered.  ``None`` means
            all operators.
        physical: Enumerate physical operators.  When false (used with
            ``Cout``), plans carry default operators which the logical cost
            model ignores (paper footnote 4).
    """

    name = "dp"

    def __init__(
        self,
        cost_model: CostModel,
        left_deep_only: bool = False,
        hint_set: HintSet | None = None,
        physical: bool = True,
    ):
        self.cost_model = cost_model
        self.left_deep_only = left_deep_only
        self.hint_set = hint_set or HintSet(name="all")
        self.physical = physical

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def plan(self, request: PlanRequest) -> PlanResult:
        """Plan ``request.query`` with exhaustive DP (the :class:`Planner` entry).

        DP keeps only the cheapest plan per alias subset, so the result holds
        exactly one plan regardless of ``request.k``; ``plans_scored`` reports
        the number of candidates the enumeration considered.
        """
        started = time.perf_counter()
        result = self.optimize(request.query)
        if result.best_plan is None:
            raise ValueError(
                f"query {request.query.name!r}: DP found no complete plan"
            )
        return PlanResult(
            plans=[result.best_plan],
            predicted_latencies=[result.best_cost],
            planning_seconds=time.perf_counter() - started,
            plans_scored=result.num_candidates,
            planner_name=self.name,
        )

    def optimize(self, query: Query, collect_all: bool = False) -> DpResult:
        """Run DP on ``query``.

        Args:
            query: The query to plan (its join graph must be connected).
            collect_all: Also return every enumerated candidate (for
                simulation data collection).

        Returns:
            A :class:`DpResult`.
        """
        if not query.is_connected():
            raise ValueError(
                f"query {query.name!r} has a disconnected join graph; "
                "cross products are not supported"
            )
        best: dict[frozenset, tuple[PlanNode, float]] = {}
        enumerated: list[EnumeratedPlan] = []
        num_candidates = 0

        # Level 1: base-table access paths.
        for alias in query.aliases:
            subset = frozenset((alias,))
            for operator in self._scan_operators():
                candidate = scan(query, alias, operator)
                cost = self.cost_model.node_cost(query, candidate)
                num_candidates += 1
                if collect_all:
                    enumerated.append(EnumeratedPlan(subset, candidate, cost))
                incumbent = best.get(subset)
                if incumbent is None or cost < incumbent[1]:
                    best[subset] = (candidate, cost)

        # Levels 2..n: joins of disjoint, connected, join-predicate-linked
        # subsets.
        aliases = list(query.aliases)
        num_tables = len(aliases)
        subsets_by_size: dict[int, list[frozenset]] = {1: [frozenset((a,)) for a in aliases]}
        for size in range(2, num_tables + 1):
            level: list[frozenset] = []
            seen: set[frozenset] = set()
            for left_size in range(1, size):
                right_size = size - left_size
                if self.left_deep_only and right_size != 1:
                    continue
                for left_subset in subsets_by_size.get(left_size, []):
                    if left_subset not in best:
                        continue
                    for right_subset in subsets_by_size.get(right_size, []):
                        if right_subset not in best or left_subset & right_subset:
                            continue
                        if not query.joins_between(left_subset, right_subset):
                            continue
                        union = left_subset | right_subset
                        left_plan, left_cost = best[left_subset]
                        right_plan, right_cost = best[right_subset]
                        for operator in self._join_operators():
                            candidate = JoinNode(left_plan, right_plan, operator)
                            cost = self.cost_model.combine(
                                query, candidate, left_cost, right_cost
                            )
                            num_candidates += 1
                            if collect_all:
                                enumerated.append(EnumeratedPlan(union, candidate, cost))
                            incumbent = best.get(union)
                            if incumbent is None or cost < incumbent[1]:
                                best[union] = (candidate, cost)
                        if union not in seen:
                            seen.add(union)
                            level.append(union)
            subsets_by_size[size] = level

        full = frozenset(query.aliases)
        if full not in best:
            return DpResult(best_plan=None, best_cost=float("inf"),
                            enumerated=enumerated, num_candidates=num_candidates)
        plan, cost = best[full]
        return DpResult(
            best_plan=plan,
            best_cost=cost,
            enumerated=enumerated,
            num_candidates=num_candidates,
        )

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _scan_operators(self) -> tuple[ScanOperator, ...]:
        if not self.physical:
            return (ScanOperator.SEQ_SCAN,)
        return tuple(
            op
            for op in (ScanOperator.SEQ_SCAN, ScanOperator.INDEX_SCAN)
            if self.hint_set.allows_scan(op)
        ) or (ScanOperator.SEQ_SCAN,)

    def _join_operators(self) -> tuple[JoinOperator, ...]:
        if not self.physical:
            return (JoinOperator.HASH_JOIN,)
        return tuple(
            op
            for op in (JoinOperator.HASH_JOIN, JoinOperator.MERGE_JOIN, JoinOperator.NESTED_LOOP)
            if self.hint_set.allows_join(op)
        ) or (JoinOperator.HASH_JOIN,)
