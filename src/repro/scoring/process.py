"""Process-based scoring: N scorer processes, snapshots on disk, no GIL.

The in-process backends are bound by the GIL: concurrent beam searches
serialise on the numpy forward pass no matter how many worker threads plan.
:class:`ProcessPoolBackend` breaks that bound by running the forward passes
in separate scorer processes:

- **Weights travel as files, never as live objects.**  Each model version is
  *published* once — captured as a :class:`~repro.lifecycle.snapshot.ModelSnapshot`
  and written to a spool directory with :meth:`ModelSnapshot.save` — and
  scorer processes restore it with
  :meth:`~repro.model.value_network.ValueNetwork.from_state_dict` (a
  signature-derived featuriser stand-in; no schema needed).  Hot swaps
  propagate by version token: a request pinned to version N is scored by
  version N's file no matter when the promotion landed, and two versions are
  never mixed in one batch because every task carries exactly one token.
- **Featurisation happens in the submitting worker.**  Only the pickle-free
  :mod:`~repro.scoring.wire` payloads (raw numeric buffers) cross the
  process boundary.
- **Payloads can skip the queue entirely.**  With ``use_shm=True`` each
  worker gets a pair of :class:`~repro.scoring.shm.ShmRingBuffer` rings:
  submitters pack the feature block *in place* into a request-ring slot and
  the scorer decodes it with zero-copy views; predictions return through
  the result ring the same way.  Only a control tuple (request id, slot,
  length) crosses the queue.  Oversize payloads and full rings fall back to
  the copying queue path transparently; a scorer that dies holding a slot
  has its lease reclaimed by the supervisor, never handed to two owners.
- **The pool can be elastic.**  An optional
  :class:`~repro.scoring.autoscale.PoolAutoscaler` adds workers under
  sustained queue depth and retires them (graceful drain, not a kill) when
  traffic ebbs, composing with — not fighting — the ``max_respawns`` crash
  budget: retirement is never counted or respawned as a crash.
- **Failures are typed, not hung.**  A scorer process that dies mid-batch
  fails its in-flight requests with
  :class:`~repro.scoring.protocol.ScoringBackendError`; the collector thread
  notices the death, counts it, and routes subsequent requests to the
  surviving workers (the serving layer falls back to in-process scoring when
  failures persist).
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import shutil
import tempfile
import threading
import time
from queue import Empty
from typing import TYPE_CHECKING, Callable, Hashable

import numpy as np

from repro.model.value_network import ValueNetwork
from repro.plans.nodes import PlanNode
from repro.scoring.core import ScoringCore
from repro.scoring.protocol import ScoringBackendError, ScoringBridgeStats, VersionPin
from repro.scoring.shm import (
    SLOT_FREE,
    SLOT_PROCESSING,
    SLOT_READY,
    SLOT_WRITING,
    ShmRingBuffer,
)
from repro.scoring.wire import (
    attach_span,
    attach_trace,
    detach_span,
    detach_trace,
    pack_examples,
    pack_examples_into,
    pack_predictions,
    pack_predictions_into,
    packed_size,
    unpack_examples,
    unpack_predictions,
)
from repro.sql.query import Query
from repro.telemetry.events import emit_event
from repro.telemetry.trace import add_span, current_trace_id

if TYPE_CHECKING:
    from repro.lifecycle.registry import ModelRegistry
    from repro.lifecycle.snapshot import ModelSnapshot
    from repro.scoring.autoscale import AutoscalerConfig

#: Test hook: a task pinned to this token makes the scorer process hard-exit
#: mid-batch, simulating a crash.  Only reachable when the backend's
#: ``_allow_crash_token`` flag is set (the failure-mode tests set it);
#: ordinary submits reject every negative pin with a typed error.
_CRASH_TOKEN = -0xDEAD

#: Test hook: a task pinned to this token makes the scorer stall (sleep)
#: *after* taking its ring-slot lease, so a test can SIGKILL it while the
#: lease is held.  Gated by the same ``_allow_crash_token`` flag.
_STALL_TOKEN = -0xBEEF
_STALL_SECONDS = 60.0

#: Published snapshot files retained per backend.  Tokens are monotone and a
#: pin only outlives its publication by one in-flight search, so a small
#: window bounds spool-directory growth for promote-every-iteration loops.
_SPOOL_RETENTION = 8


def _snapshot_filename(token: int) -> str:
    return f"model-v{token}.npz"


def _scorer_main(
    worker_id: int,
    spool_dir: str,
    task_queue,
    result_queue,
    max_batch_size: int,
    request_ring_name: str | None,
    result_ring_name: str | None,
) -> None:
    """One scorer process: load published snapshots, serve forward passes.

    Tasks are ``(request_id, token, batch_cap, kind, payload, trace_id)``
    tuples — ``kind == "q"`` carries the packed bytes in ``payload``
    (possibly trace-wrapped), ``kind == "s"`` carries a request-ring slot
    index read zero-copy.  Replies are ``(request_id, ok, kind, data,
    chunk_sizes)``: queue replies ship packed predictions in ``data``,
    ring replies ship ``(slot, nbytes, worker_id, seconds)`` pointing into
    the result ring.  ``None`` shuts the worker down.
    """
    from repro.lifecycle.snapshot import ModelSnapshot
    from repro.telemetry.logging import maybe_configure_from_env, set_log_context
    from repro.telemetry.profiling import (
        SamplingProfiler,
        hz_from_env,
        profiling_disabled_by_env,
        write_profile_atomic,
    )

    set_log_context(process=f"scorer-{worker_id}")
    maybe_configure_from_env()

    # Continuous profiling: sample this scorer's stacks and publish them as
    # an atomic spool-dir file the parent merges into ``GET /v1/profile``.
    # The filename carries the pid so a respawned worker in the same slot
    # does not fight its predecessor's final write.
    profiler: SamplingProfiler | None = None
    profile_stop = threading.Event()
    if not profiling_disabled_by_env():
        profiler = SamplingProfiler(
            hz=hz_from_env(), process=f"scorer-{worker_id}"
        )
        profiler.start()
        profile_path = os.path.join(
            spool_dir, f"profile-scorer-{worker_id}-{os.getpid()}.json"
        )

        def _publish_profile() -> None:
            try:
                write_profile_atomic(profiler.snapshot(), profile_path)
            except OSError:
                pass  # spool dir mid-teardown

        def _profile_pump() -> None:
            while not profile_stop.wait(0.5):
                _publish_profile()
            _publish_profile()

        threading.Thread(
            target=_profile_pump, name="scorer-profile-pump", daemon=True
        ).start()
    request_ring = (
        ShmRingBuffer(request_ring_name) if request_ring_name is not None else None
    )
    result_ring = (
        ShmRingBuffer(result_ring_name) if result_ring_name is not None else None
    )
    networks: dict[int, ValueNetwork] = {}

    def serve(task) -> None:
        # One task per call: the zero-copy views built here must die with
        # this frame, so the ring close below never unmaps under them.
        request_id, token, batch_cap, kind, payload, trace_id = task
        request_slot: int | None = None
        try:
            if kind == "s":
                # Take the lease first: the crash/stall hooks below must die
                # *holding* it, which is exactly what the reclaim tests need.
                request_slot = payload
                length = request_ring.begin(request_slot)
                if token == _CRASH_TOKEN:
                    os._exit(3)
                if token == _STALL_TOKEN:
                    time.sleep(_STALL_SECONDS)
                    os._exit(3)
                if length is None:
                    raise RuntimeError(
                        f"request slot {request_slot} was reclaimed before scoring"
                    )
                started = time.perf_counter()
                raw = request_ring.payload_view(request_slot)[:length]
                inner_trace = trace_id
            else:
                if token == _CRASH_TOKEN:
                    os._exit(3)
                if token == _STALL_TOKEN:
                    time.sleep(_STALL_SECONDS)
                    os._exit(3)
                inner_trace, raw = detach_trace(payload)
                started = time.perf_counter()
            network = networks.get(token)
            if network is None:
                path = os.path.join(spool_dir, _snapshot_filename(token))
                snapshot = ModelSnapshot.load(path)
                network = ValueNetwork.from_state_dict(snapshot.state)
                if len(networks) > 4:
                    # Tokens are monotone; old versions stop being pinned
                    # once their swap window closes.
                    networks.clear()
                networks[token] = network
            examples = unpack_examples(raw)
            cap = max(1, min(batch_cap or max_batch_size, max_batch_size))
            outputs: list[np.ndarray] = []
            chunk_sizes: list[int] = []
            for start in range(0, len(examples), cap):
                chunk = examples[start : start + cap]
                outputs.append(network.predict_examples(chunk))
                chunk_sizes.append(len(chunk))
            predictions = (
                np.concatenate(outputs) if outputs else np.zeros(0, dtype=np.float64)
            )
            # The examples above were zero-copy views into the slot; the
            # forward pass is done with them, so the lease can go back now.
            if request_slot is not None:
                request_ring.release(request_slot)
                request_slot = None
            seconds = time.perf_counter() - started
            result_slot = None
            if kind == "s" and result_ring is not None:
                if predictions.nbytes <= result_ring.slot_bytes:
                    result_slot = result_ring.acquire()
            if result_slot is not None:
                nbytes = pack_predictions_into(
                    result_ring.payload_view(result_slot), predictions
                )
                result_ring.commit(result_slot, nbytes)
                data = (
                    result_slot,
                    nbytes,
                    worker_id,
                    seconds if inner_trace is not None else None,
                )
                result_queue.put(
                    (request_id, True, "s", data, tuple(chunk_sizes))
                )
            else:
                reply = pack_predictions(predictions)
                if inner_trace is not None:
                    # The scorer measures its own duration; the submitting
                    # side grafts it into the live trace.
                    reply = attach_span(reply, worker_id, seconds)
                result_queue.put(
                    (request_id, True, "q", reply, tuple(chunk_sizes))
                )
        except BaseException as error:  # noqa: BLE001 - shipped to the caller
            if request_slot is not None:
                request_ring.release(request_slot)
            result_queue.put(
                (request_id, False, "q", f"{type(error).__name__}: {error}", ())
            )

    # Readiness handshake (request id 0 is never allocated to real requests):
    # imports are done and the task loop is about to block on the queue.
    result_queue.put((0, True, "q", b"ready", (worker_id,)))
    while True:
        task = task_queue.get()
        if task is None:
            break
        serve(task)
    profile_stop.set()
    if profiler is not None:
        profiler.stop()
    if request_ring is not None:
        request_ring.close()
    if result_ring is not None:
        result_ring.close()


class _PendingRequest:
    """Parent-side state of one dispatched task."""

    __slots__ = ("worker_index", "done", "ok", "kind", "data", "chunk_sizes")

    def __init__(self, worker_index: int):
        self.worker_index = worker_index
        self.done = threading.Event()
        self.ok = False
        self.kind = "q"
        self.data: object = b""
        self.chunk_sizes: tuple[int, ...] = ()


class ProcessPoolBackend:
    """Scoring server over N scorer processes following published snapshots.

    Args:
        featurizer: Featuriser used by the submitting side.  Optional when
            every request is pinned to a live :class:`ValueNetwork` (its own
            featuriser is used); required to score registry-version pins.
        num_workers: Scorer processes to spawn initially.
        network_provider: Source for unpinned requests when no registry is
            followed (the provided network is published on first use).
        spool_dir: Directory snapshots are published into (shared with the
            workers).  A private temporary directory is created — and removed
            on :meth:`close` — when omitted.
        max_batch_size: Hard forward-pass size cap inside each scorer.
        submit_timeout_seconds: How long one submit waits for its reply
            before failing with :class:`ScoringBackendError`.
        start_method: ``multiprocessing`` start method (default ``"spawn"``:
            safe with the serving layer's threads; pass ``"fork"`` to trade
            that safety for faster startup).
        max_respawns: Crashed scorer processes the collector may replace
            with fresh ones (pool-wide budget; 0 keeps the historical
            survive-on-the-remaining-pool behaviour).  A respawned worker
            restores snapshots from the spool on demand, so no state is
            lost; the requests in flight on the crashed worker still fail
            with their typed error.
        use_shm: Give each worker a request/result
            :class:`~repro.scoring.shm.ShmRingBuffer` pair and ship payloads
            zero-copy through them; oversize payloads and full rings fall
            back to the queue path.
        shm_slots_per_worker: Slots per ring.
        shm_slot_bytes: Request-slot capacity (payloads above this take the
            queue path).
        shm_result_slot_bytes: Result-slot capacity (8 bytes per scored
            plan; larger prediction vectors return via the queue).
        adaptive_batching: Enable :class:`ScoringCore`'s load-adaptive
            forward-pass cap; the per-dispatch cap rides in each task.
        autoscaler: Optional :class:`~repro.scoring.autoscale.AutoscalerConfig`;
            when given, a :class:`~repro.scoring.autoscale.PoolAutoscaler`
            thread scales the pool between its ``min_workers`` and
            ``max_workers`` on observed queue depth and arrival rate.
    """

    def __init__(
        self,
        featurizer=None,
        *,
        num_workers: int = 2,
        network_provider: Callable[[], "ValueNetwork | None"] | None = None,
        spool_dir: str | None = None,
        max_batch_size: int = 512,
        submit_timeout_seconds: float = 120.0,
        start_method: str = "spawn",
        max_respawns: int = 0,
        use_shm: bool = False,
        shm_slots_per_worker: int = 8,
        shm_slot_bytes: int = 1 << 20,
        shm_result_slot_bytes: int = 1 << 16,
        adaptive_batching: bool = False,
        autoscaler: "AutoscalerConfig | None" = None,
    ):
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        if max_respawns < 0:
            raise ValueError("max_respawns must be >= 0")
        self._featurizer = featurizer
        self.network_provider = network_provider
        self.submit_timeout_seconds = submit_timeout_seconds
        self._core = ScoringCore(max_batch_size, adaptive=adaptive_batching)
        self._owns_spool = spool_dir is None
        self._spool_dir = spool_dir or tempfile.mkdtemp(prefix="repro-scoring-")
        os.makedirs(self._spool_dir, exist_ok=True)

        self._registry: "ModelRegistry | None" = None
        self._published: dict[Hashable, int] = {}
        self._registry_tokens: dict[int, int] = {}
        self._current_token: int | None = None
        self._tokens = itertools.count(1)
        self._publish_lock = threading.Lock()
        self._allow_crash_token = False  # failure-mode tests only

        self._lock = threading.Lock()
        self._pending: dict[int, _PendingRequest] = {}
        self._request_ids = itertools.count(1)
        self._next_worker = 0
        self._submitted = 0
        self._closed = False

        self.max_respawns = max_respawns
        self._respawns_used = 0
        self._use_shm = use_shm
        self._shm_slots = shm_slots_per_worker
        self._shm_slot_bytes = shm_slot_bytes
        self._shm_result_slot_bytes = shm_result_slot_bytes
        context = multiprocessing.get_context(start_method)
        self._context = context
        self._result_queue = context.Queue()
        self._task_queues = []
        self._processes = []
        self._request_rings: list[ShmRingBuffer | None] = []
        self._result_rings: list[ShmRingBuffer | None] = []
        for worker_id in range(num_workers):
            self._append_ring_pair()
            task_queue, process = self._spawn_worker(worker_id)
            self._task_queues.append(task_queue)
            self._processes.append(process)
        self._dead = [False] * num_workers
        self._retired = [False] * num_workers
        self._ready = [threading.Event() for _ in range(num_workers)]
        self._collector = threading.Thread(
            target=self._collect, name="scoring-collector", daemon=True
        )
        self._collector.start()
        self._autoscaler = None
        if autoscaler is not None:
            from repro.scoring.autoscale import PoolAutoscaler

            self._autoscaler = PoolAutoscaler(self, autoscaler)
            self._autoscaler.start()

    def _append_ring_pair(self) -> None:
        """Create (or skip) the shm ring pair for the next worker slot."""
        if not self._use_shm:
            self._request_rings.append(None)
            self._result_rings.append(None)
            return
        self._request_rings.append(
            ShmRingBuffer(
                create=True,
                num_slots=self._shm_slots,
                slot_bytes=self._shm_slot_bytes,
            )
        )
        self._result_rings.append(
            ShmRingBuffer(
                create=True,
                num_slots=self._shm_slots,
                slot_bytes=self._shm_result_slot_bytes,
            )
        )

    def _spawn_worker(self, worker_id: int):
        """Start one scorer process; returns its ``(task_queue, process)``."""
        task_queue = self._context.Queue()
        request_ring = self._request_rings[worker_id]
        result_ring = self._result_rings[worker_id]
        process = self._context.Process(
            target=_scorer_main,
            args=(
                worker_id,
                self._spool_dir,
                task_queue,
                self._result_queue,
                self._core.max_batch_size,
                request_ring.name if request_ring is not None else None,
                result_ring.name if result_ring is not None else None,
            ),
            name=f"repro-scorer-{worker_id}",
            daemon=True,
        )
        process.start()
        return task_queue, process

    @property
    def num_workers(self) -> int:
        return len(self._processes)

    @property
    def max_batch_size(self) -> int:
        return self._core.max_batch_size

    @property
    def uses_shm(self) -> bool:
        """Whether payloads take the shared-memory fast path."""
        return self._use_shm

    # ------------------------------------------------------------------ #
    # Version publication
    # ------------------------------------------------------------------ #
    def publish(self, network: ValueNetwork) -> int:
        """Publish ``network``'s current weights; returns their token.

        Idempotent per :meth:`ValueNetwork.version_key`: the snapshot is
        captured and written once, then reused for every request pinned to
        the same weights.
        """
        from repro.lifecycle.snapshot import ModelSnapshot

        key = network.version_key()
        with self._publish_lock:
            token = self._published.get(key)
            if token is not None:
                return token
            token = next(self._tokens)
            snapshot = ModelSnapshot.capture(network, token, source="published")
            snapshot.save(os.path.join(self._spool_dir, _snapshot_filename(token)))
            self._published[key] = token
            self._core.count_published()
            self._evict_spool_locked(token)
            return token

    def _publish_snapshot(self, snapshot: "ModelSnapshot") -> int:
        """Publish a registry snapshot under a backend token."""
        with self._publish_lock:
            token = self._registry_tokens.get(snapshot.version)
            if token is not None:
                return token
            token = next(self._tokens)
            snapshot.save(os.path.join(self._spool_dir, _snapshot_filename(token)))
            self._registry_tokens[snapshot.version] = token
            self._core.count_published()
            self._evict_spool_locked(token)
            return token

    def _evict_spool_locked(self, newest_token: int) -> None:
        """Bound the spool: drop snapshot files older than the retention
        window.  The currently serving token is always exempt (unpinned
        traffic resolves to it between promotions); an *expired pin* to an
        evicted token degrades to a typed error, the same path as any
        unknown version — never silent mis-scoring."""
        horizon = newest_token - _SPOOL_RETENTION
        if horizon <= 0:
            return
        keep = {self._current_token}
        self._published = {
            key: token
            for key, token in self._published.items()
            if token > horizon or token in keep
        }
        self._registry_tokens = {
            version: token
            for version, token in self._registry_tokens.items()
            if token > horizon or token in keep
        }
        for token in range(max(horizon - _SPOOL_RETENTION, 1), horizon + 1):
            if token in keep:
                continue
            try:
                os.unlink(os.path.join(self._spool_dir, _snapshot_filename(token)))
            except OSError:
                pass

    def follow(self, registry: "ModelRegistry") -> None:
        """Track ``registry``: promotions repoint unpinned requests.

        Subscribes to the registry's serving-pointer changes; each newly
        serving snapshot is published to the spool directory and becomes the
        target of unpinned submits, keyed strictly by version — a promotion
        never ships a live object into the scorer processes.  :meth:`close`
        detaches the subscription.
        """
        self._registry = registry
        registry.subscribe(self._on_serving_change)
        if registry.serving_version is not None:
            self._on_serving_change(registry.serving())

    def _on_serving_change(self, snapshot: "ModelSnapshot") -> None:
        if self._closed:
            return
        self._current_token = self._publish_snapshot(snapshot)

    def _resolve_token(self, version: VersionPin) -> int:
        if isinstance(version, ValueNetwork):
            return self.publish(version)
        if version is None:
            if self._current_token is not None:
                return self._current_token
            if self.network_provider is not None:
                network = self.network_provider()
                if network is not None:
                    return self.publish(network)
            raise ScoringBackendError(
                "no model to score with: nothing published, no provider, and "
                "no followed registry with a serving version"
            )
        token = int(version)
        if token < 0:
            # Backend-internal tokens are positive; the only negative ones
            # are the crash/stall hooks, armed explicitly by tests.
            if token in (_CRASH_TOKEN, _STALL_TOKEN) and self._allow_crash_token:
                return token
            raise ScoringBackendError(f"cannot resolve model version {token}")
        if self._registry is None:
            raise ScoringBackendError(
                f"cannot resolve registry version {token}: backend is not "
                "following a ModelRegistry (call follow() first)"
            )
        from repro.lifecycle.snapshot import LifecycleError

        try:
            return self._publish_snapshot(self._registry.get(token))
        except LifecycleError as error:
            raise ScoringBackendError(str(error)) from error

    # ------------------------------------------------------------------ #
    # Search-facing API
    # ------------------------------------------------------------------ #
    def submit(
        self, query: Query, plans: list[PlanNode], version: VersionPin = None
    ) -> np.ndarray:
        """Featurise here, score in a scorer process, block for the reply."""
        if self._closed:
            raise RuntimeError("scoring backend is closed")
        if not plans:
            return np.zeros(0, dtype=np.float64)
        token = self._resolve_token(version)
        featurizer = self._featurizer
        if featurizer is None and isinstance(version, ValueNetwork):
            featurizer = version.featurizer
        if featurizer is None:
            raise ScoringBackendError(
                "backend has no featurizer: construct ProcessPoolBackend with "
                "one, or pin requests to a live network"
            )
        examples = [featurizer.featurize(query, plan) for plan in plans]
        trace_id = current_trace_id()

        # Closed-check, worker choice, pending registration and slot
        # allocation share one lock with close()/reap, so no task can slip
        # in behind a shutdown sentinel (or onto a dead worker) and leave
        # its submitter waiting out the full timeout.
        ring = None
        slot = None
        with self._lock:
            if self._closed:
                raise RuntimeError("scoring backend is closed")
            worker_index = self._pick_worker_locked()
            request_id = next(self._request_ids)
            pending = _PendingRequest(worker_index)
            self._pending[request_id] = pending
            self._submitted += 1
            batch_cap = self._core.observe_load(len(self._pending))
            if self._use_shm:
                ring = self._request_rings[worker_index]
                if packed_size(examples) <= ring.slot_bytes:
                    slot = ring.acquire()
                if slot is None:
                    self._core.count_shm_fallback()

        if slot is not None:
            # The in-place pack (the one memcpy of the fast path) runs
            # outside the lock; only commit+enqueue re-enter it.
            try:
                length = pack_examples_into(ring.payload_view(slot), examples)
            except BaseException:
                ring.release(slot)
                with self._lock:
                    self._pending.pop(request_id, None)
                raise
            with self._lock:
                if self._closed or self._dead[worker_index]:
                    # close()/reap already failed our pending; hand the
                    # lease back and fall through to the (set) event.
                    ring.release(slot)
                else:
                    ring.commit(slot, length)
                    self._task_queues[worker_index].put(
                        (request_id, token, batch_cap, "s", slot, trace_id)
                    )
                    self._core.count_shm_batch()
        else:
            payload = pack_examples(examples)
            if trace_id is not None:
                payload = attach_trace(payload, trace_id)
            with self._lock:
                if not (self._closed or self._dead[worker_index]):
                    self._task_queues[worker_index].put(
                        (request_id, token, batch_cap, "q", payload, None)
                    )

        if not pending.done.wait(timeout=self.submit_timeout_seconds):
            with self._lock:
                claimed = self._pending.pop(request_id, None) is not None
            if not claimed:
                # The collector popped it just as we timed out; its reply
                # (possibly holding a result-ring lease) lands momentarily.
                pending.done.wait(timeout=1.0)
            if claimed or not pending.done.is_set():
                raise ScoringBackendError(
                    f"scoring request timed out after "
                    f"{self.submit_timeout_seconds}s (worker {worker_index})"
                )
        if not pending.ok:
            raise ScoringBackendError(str(pending.data))
        # Graft spans here, in the submitting thread, where the trace
        # context is live — the collector thread that filled ``pending``
        # has none.
        if pending.kind == "s":
            result_slot, nbytes, scorer_id, seconds = pending.data
            result_ring = self._result_rings[scorer_id]
            predictions = unpack_predictions(
                result_ring.payload_view(result_slot)[:nbytes]
            )
            result_ring.release(result_slot)
            if seconds is not None:
                add_span(
                    "scoring.forward", seconds,
                    process=f"scorer-{scorer_id}", examples=len(examples),
                )
        else:
            remote, data = detach_span(pending.data)
            if remote is not None:
                scorer_id, seconds = remote
                add_span(
                    "scoring.forward", seconds,
                    process=f"scorer-{scorer_id}", examples=len(examples),
                )
            predictions = unpack_predictions(data)
        self._core.record(1, len(examples), pending.chunk_sizes)
        return predictions

    def _pick_worker_locked(self) -> int:
        for _ in range(len(self._processes)):
            index = self._next_worker
            self._next_worker = (self._next_worker + 1) % len(self._processes)
            if not self._dead[index] and not self._retired[index]:
                return index
        raise ScoringBackendError("all scorer processes are dead")

    # ------------------------------------------------------------------ #
    # Collector thread: replies and crash detection
    # ------------------------------------------------------------------ #
    def _collect(self) -> None:
        while True:
            if self._closed and not self._pending:
                return
            try:
                request_id, ok, kind, data, chunk_sizes = self._result_queue.get(
                    timeout=0.1
                )
            except Empty:
                try:
                    self._reap_dead_workers()
                except Exception:  # noqa: BLE001 - collector must survive
                    # A failed reap/respawn (fd pressure, spawn errors) must
                    # not kill the collector: pending replies would otherwise
                    # wait out their full timeout with nobody listening.
                    pass
                continue
            except (EOFError, OSError, ValueError):
                return  # queue torn down during close()
            if request_id == 0:  # readiness handshake
                self._ready[chunk_sizes[0]].set()
                continue
            if ok and kind == "s":
                # Take the reader lease *before* delivery: a reap between
                # delivery and the submitter's read must not reclaim (and
                # hand out) the slot mid-read.  Single-threaded with reap,
                # so the check-then-begin cannot race it.
                result_slot, _, scorer_id, _ = data
                result_ring = self._result_rings[scorer_id]
                if result_ring.begin(result_slot) is None:
                    ok, kind = False, "q"
                    data = f"result slot {result_slot} was reclaimed in flight"
            with self._lock:
                pending = self._pending.pop(request_id, None)
            if pending is None:
                # Submitter gave up (timeout) or was failed by close/reap;
                # a ring reply still holds its lease — hand it back.
                if ok and kind == "s":
                    result_slot, _, scorer_id, _ = data
                    self._result_rings[scorer_id].release(result_slot)
                continue
            pending.ok = ok
            pending.kind = kind
            pending.data = data
            pending.chunk_sizes = tuple(chunk_sizes)
            pending.done.set()

    def _reap_dead_workers(self) -> None:
        """Fail the in-flight requests of workers that died mid-batch.

        Ring-slot leases the dead worker held are reclaimed (request ring:
        READY/PROCESSING; result ring: WRITING/READY — the states only the
        scorer side can hold once the queue has drained).  A *retired*
        worker exiting after its drain is bookkept the same way minus the
        crash count and the respawn: scale-downs are not crashes.

        With a ``max_respawns`` budget remaining, a crashed worker is then
        replaced with a fresh process on the same slot (restoring snapshots
        from the spool on demand), so a transient crash costs one batch
        instead of permanently shrinking the pool.
        """
        for index, process in enumerate(list(self._processes)):
            if self._dead[index] or process.is_alive():
                continue
            with self._lock:
                self._dead[index] = True
                retired = self._retired[index]
                orphaned = [
                    (request_id, pending)
                    for request_id, pending in self._pending.items()
                    if pending.worker_index == index
                ]
                for request_id, _ in orphaned:
                    del self._pending[request_id]
            reclaimed = 0
            request_ring = self._request_rings[index]
            result_ring = self._result_rings[index]
            if request_ring is not None:
                reclaimed += request_ring.reclaim(
                    states=(SLOT_READY, SLOT_PROCESSING)
                )
            if result_ring is not None:
                reclaimed += result_ring.reclaim(
                    states=(SLOT_WRITING, SLOT_READY)
                )
            if reclaimed:
                self._core.count_reclaimed(reclaimed)
            for _, pending in orphaned:
                pending.ok = False
                pending.data = (
                    f"scorer process {index} (pid {process.pid}) died mid-batch "
                    f"with exit code {process.exitcode}"
                )
                pending.done.set()
            if retired:
                continue
            self._core.count_crash()
            self._respawn_worker(index, process)

    def _respawn_worker(self, index: int, crashed) -> None:
        """Replace the crashed worker on slot ``index`` if budget remains."""
        with self._lock:
            if self._closed or self._respawns_used >= self.max_respawns:
                return
            self._respawns_used += 1
        crashed.join(timeout=1.0)  # reap the corpse; it already exited
        try:
            self._task_queues[index].close()  # release the dead slot's pipe
        except (OSError, ValueError):
            pass
        # Fresh ready event *before* the spawn, so the replacement's
        # readiness handshake can never set a stale event.
        self._ready[index] = threading.Event()
        task_queue, process = self._spawn_worker(index)
        with self._lock:
            if self._closed:
                # close() raced the respawn: tear the replacement down too.
                try:
                    task_queue.put(None)
                except (ValueError, OSError):
                    pass
                process.join(timeout=1.0)
                if process.is_alive():
                    process.terminate()
                return
            self._task_queues[index] = task_queue
            self._processes[index] = process
            self._dead[index] = False
        self._core.count_respawn()
        emit_event("scorer_respawn", worker_id=index)

    # ------------------------------------------------------------------ #
    # Elastic pool: the autoscaler's levers
    # ------------------------------------------------------------------ #
    def scale_up(self) -> bool:
        """Add one scorer process (reusing a retired slot when possible).

        Called by the autoscaler thread (never concurrently with itself);
        returns False when the pool is closed or the spawn failed.
        """
        with self._lock:
            if self._closed:
                return False
            reuse = next(
                (
                    index
                    for index in range(len(self._processes))
                    if self._dead[index] and self._retired[index]
                ),
                None,
            )
            if reuse is not None:
                old = self._processes[reuse]
                old.join(timeout=0.5)
                try:
                    self._task_queues[reuse].close()
                except (OSError, ValueError):
                    pass
                # Fresh ready event *before* the spawn: the handshake must
                # never race the bookkeeping it sets.
                self._ready[reuse] = threading.Event()
                task_queue, process = self._spawn_worker(reuse)
                self._task_queues[reuse] = task_queue
                self._processes[reuse] = process
                self._dead[reuse] = False
                self._retired[reuse] = False
                worker_id = reuse
            else:
                worker_id = len(self._processes)
                self._append_ring_pair()
                self._ready.append(threading.Event())
                task_queue, process = self._spawn_worker(worker_id)
                self._task_queues.append(task_queue)
                self._processes.append(process)
                self._dead.append(False)
                self._retired.append(False)
            workers = sum(
                1
                for index in range(len(self._processes))
                if not self._dead[index] and not self._retired[index]
            )
        self._core.count_scale(up=True)
        emit_event("scorer_scale_up", worker_id=worker_id, workers=workers)
        return True

    def scale_down(self) -> bool:
        """Retire one scorer process with a graceful drain (not a kill).

        The retired worker finishes its queued tasks, exits on the
        sentinel, and is reaped as a retirement — no crash count, no
        respawn, ring leases reclaimed.  Returns False when no worker can
        be spared.
        """
        with self._lock:
            if self._closed:
                return False
            candidates = [
                index
                for index in range(len(self._processes))
                if not self._dead[index] and not self._retired[index]
            ]
            if len(candidates) <= 1:
                return False
            index = candidates[-1]
            try:
                self._task_queues[index].put(None)
            except (OSError, ValueError):
                return False
            self._retired[index] = True
            workers = len(candidates) - 1
        self._core.count_scale(up=False)
        emit_event("scorer_scale_down", worker_id=index, workers=workers)
        return True

    def active_workers(self) -> int:
        """Workers currently routable (not dead, not retired)."""
        with self._lock:
            return sum(
                1
                for index in range(len(self._processes))
                if not self._dead[index] and not self._retired[index]
            )

    def queue_depth(self) -> int:
        """Requests in flight across the pool right now."""
        with self._lock:
            return len(self._pending)

    def submitted_count(self) -> int:
        """Monotone count of submits accepted (the autoscaler's rate tap)."""
        with self._lock:
            return self._submitted

    # ------------------------------------------------------------------ #
    # Introspection and lifecycle
    # ------------------------------------------------------------------ #
    def wait_ready(self, timeout: float | None = None) -> bool:
        """Block until every scorer process has finished starting up.

        Spawned workers pay an interpreter + import cost before their task
        loop runs; the pool is usable before then (submits just queue), but
        latency-sensitive callers — and fair benchmarks — can wait it out.

        Returns:
            True when all workers signalled ready within ``timeout``.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        for event in list(self._ready):
            remaining = (
                None if deadline is None else max(deadline - time.monotonic(), 0.0)
            )
            if not event.wait(timeout=remaining):
                return False
        return True

    def alive_workers(self) -> int:
        """Scorer processes still serving."""
        return sum(
            0 if dead else int(process.is_alive())
            for dead, process in zip(self._dead, self._processes)
        )

    def profiles(self) -> list[dict]:
        """Sampling profiles published by live (and recent) scorer processes.

        Scorers atomically rewrite ``profile-scorer-<id>-<pid>.json`` in the
        spool directory every half second; this just reads whatever is
        there.  Unreadable or torn files (a scorer mid-crash) are skipped.
        """
        import json

        profiles: list[dict] = []
        try:
            names = sorted(os.listdir(self._spool_dir))
        except OSError:
            return profiles
        for name in names:
            if not (name.startswith("profile-") and name.endswith(".json")):
                continue
            try:
                with open(
                    os.path.join(self._spool_dir, name), encoding="utf-8"
                ) as handle:
                    profile = json.load(handle)
            except (OSError, ValueError):
                continue
            if isinstance(profile, dict):
                profiles.append(profile)
        return profiles

    def stats(self) -> ScoringBridgeStats:
        """Counters plus point-in-time pool gauges.

        On top of the cumulative :class:`ScoringCore` counters, the
        snapshot carries live gauges: routable worker count, pool and
        per-worker queue depths, per-worker in-flight batch counts (ring
        ``PROCESSING`` leases on the shm path; approximated as
        ``min(depth, 1)`` on the queue path, whose single task loop scores
        at most one batch at a time), and mean request-ring occupancy.
        """
        snapshot = self._core.snapshot()
        with self._lock:
            count = len(self._processes)
            depths = [0] * count
            for pending in self._pending.values():
                if pending.worker_index < count:
                    depths[pending.worker_index] += 1
            snapshot.queue_depth = len(self._pending)
            snapshot.workers_current = sum(
                1
                for index in range(count)
                if not self._dead[index] and not self._retired[index]
            )
            snapshot.worker_queue_depths = tuple(depths)
            inflight = []
            occupancies = []
            for index in range(count):
                if self._dead[index]:
                    inflight.append(0)
                    continue
                ring = self._request_rings[index]
                if ring is None:
                    inflight.append(min(depths[index], 1))
                    continue
                states = [ring.state(slot) for slot in range(ring.num_slots)]
                inflight.append(
                    sum(1 for state in states if state == SLOT_PROCESSING)
                )
                occupancies.append(
                    sum(1 for state in states if state != SLOT_FREE)
                    / ring.num_slots
                )
            snapshot.worker_inflight = tuple(inflight)
            snapshot.ring_occupancy = (
                sum(occupancies) / len(occupancies) if occupancies else 0.0
            )
        return snapshot

    def close(self) -> None:
        """Stop the autoscaler and scorer processes, release spool and rings."""
        if self._autoscaler is not None:
            self._autoscaler.stop()
        with self._lock:
            if self._closed:
                return
            self._closed = True
        if self._registry is not None:
            self._registry.unsubscribe(self._on_serving_change)
        for index, task_queue in enumerate(self._task_queues):
            if not self._dead[index]:
                try:
                    task_queue.put(None)
                except (ValueError, OSError):
                    pass
        deadline = time.monotonic() + 5.0
        for process in self._processes:
            process.join(timeout=max(deadline - time.monotonic(), 0.1))
            if process.is_alive():
                process.terminate()
                process.join(timeout=1.0)
        self._collector.join(timeout=2.0)
        for task_queue in self._task_queues:
            task_queue.close()
        self._result_queue.close()
        for ring in itertools.chain(self._request_rings, self._result_rings):
            if ring is not None:
                ring.unlink()
        # Wake any stragglers still waiting on a reply.
        with self._lock:
            orphaned = list(self._pending.values())
            self._pending.clear()
        for pending in orphaned:
            pending.ok = False
            pending.data = "scoring backend closed"
            pending.done.set()
        if self._owns_spool:
            shutil.rmtree(self._spool_dir, ignore_errors=True)
