"""Exact cardinalities via execution, with caching.

The true cardinality of an alias subset does not depend on the join order, so
results are cached by ``(query name, frozenset of aliases)``.  This estimator
serves two purposes: it is the "oracle" upper bound in ablations, and it
powers analysis utilities (e.g. measuring the histogram estimator's error
distribution, §10 footnote 11 of the paper).
"""

from __future__ import annotations

from repro.cardinality.base import CardinalityEstimator
from repro.execution.engine import ExecutionEngine
from repro.sql.query import Query


class TrueCardinalityEstimator(CardinalityEstimator):
    """Exact cardinalities computed by executing subqueries.

    Args:
        engine: Engine used to execute cardinality probes.
    """

    def __init__(self, engine: ExecutionEngine):
        self.engine = engine
        self._cache: dict[tuple[str, frozenset], float] = {}

    def base_rows(self, query: Query, alias: str) -> float:
        table = query.alias_to_table[alias]
        return float(self.engine.database.num_rows(table))

    def estimate(self, query: Query, aliases: frozenset[str]) -> float:
        aliases = frozenset(aliases)
        key = (query.name, aliases)
        if key not in self._cache:
            self._cache[key] = float(self.engine.true_cardinality(query, aliases))
        return self._cache[key]

    def cache_size(self) -> int:
        """Number of cached cardinality probes."""
        return len(self._cache)
