"""Query representation for select-project-join (SPJ) blocks.

Balsa optimizes SPJ blocks (paper §2, "Assumptions").  A query is a set of
table references, a conjunction of single-table filter predicates and a
conjunction of equality join predicates.  :class:`repro.sql.Query` captures
exactly that, plus helpers (join graph, per-alias filters, SQL-ish rendering).
"""

from repro.sql.expr import (
    ComparisonOp,
    FilterPredicate,
    JoinPredicate,
    evaluate_filter,
)
from repro.sql.query import Query, TableRef
from repro.sql.parser import format_query, parse_query

__all__ = [
    "ComparisonOp",
    "FilterPredicate",
    "JoinPredicate",
    "evaluate_filter",
    "Query",
    "TableRef",
    "format_query",
    "parse_query",
]
