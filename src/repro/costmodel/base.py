"""The cost-model interface."""

from __future__ import annotations

import abc

from repro.plans.nodes import JoinNode, PlanNode
from repro.sql.query import Query


class CostModel(abc.ABC):
    """Scores a (partial or complete) plan for a query.

    Cost models are the "simulators" of the paper: quick-to-evaluate functions
    ``C : plan -> cost`` that never execute anything.  All cost models here are
    *additive*: the cost of a plan is the sum of per-node local costs, which
    lets the dynamic-programming enumerator compute costs incrementally.
    """

    #: Whether the model distinguishes physical operators.  Logical-only models
    #: (``Cout``) ignore scan/join operator choices entirely (paper footnote 4).
    is_physical: bool = False

    @abc.abstractmethod
    def node_cost(self, query: Query, node: PlanNode) -> float:
        """Local cost contributed by ``node``'s root operator alone."""

    def cost(self, query: Query, plan: PlanNode) -> float:
        """Total cost of ``plan``: the sum of all nodes' local costs."""
        total = self.node_cost(query, plan)
        if isinstance(plan, JoinNode):
            total += self.cost(query, plan.left) + self.cost(query, plan.right)
        return total

    def combine(
        self, query: Query, node: JoinNode, left_cost: float, right_cost: float
    ) -> float:
        """Total cost of a join given its children's already-computed totals."""
        return self.node_cost(query, node) + left_cost + right_cost
