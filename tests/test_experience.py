"""Tests for the online-experience subsystem: sink, replay buffer, trainer loop.

Covers the request-path sink's backpressure/drop/stall accounting, the replay
buffer's fingerprint dedup + reservoir + recency-weighted sampling + JSONL
persistence, the autonomous train → shadow-gate → promote → monitor-arming
cycle, the forced-regression path (a sabotaged promotion rolled back by live
traffic), and the gateway surface (``/v1/experience``, the ``experience``
metrics block, the per-plan sink hook).
"""

from __future__ import annotations

import time

import pytest

from repro.costmodel.cout import CoutCostModel
from repro.experience import (
    ExperienceSink,
    ExperienceTuple,
    OnlineTrainerLoop,
    ReplayBuffer,
    with_executed_cost,
)
from repro.lifecycle import ModelLifecycle, ModelRegistry, ShadowEvaluator
from repro.model.trainer import ValueNetworkTrainer
from repro.model.value_network import ValueNetwork, ValueNetworkConfig
from repro.optimizer.quickpick import random_plan
from repro.search.beam import BeamSearchPlanner
from repro.server import PlanningServer, TrafficShadower
from repro.service.service import PlannerService
from repro.utils.rng import derive_seed, new_rng
from repro.workloads.benchmark import make_job_benchmark


def small_planner() -> BeamSearchPlanner:
    return BeamSearchPlanner(beam_size=3, top_k=2, enumerate_scan_operators=False)


def small_network(featurizer, seed: int = 0) -> ValueNetwork:
    return ValueNetwork(
        featurizer,
        ValueNetworkConfig(
            query_hidden=16, query_embedding=8, tree_channels=(16, 8),
            head_hidden=8, seed=seed,
        ),
    )


@pytest.fixture(scope="module")
def bench():
    return make_job_benchmark(
        fact_rows=300, num_queries=8, num_templates=4, test_size=2,
        seed=0, size_range=(3, 5),
    )


@pytest.fixture(scope="module")
def queries(bench):
    return list(bench.train_queries)


@pytest.fixture(scope="module")
def plan_cost(bench):
    return CoutCostModel(bench.environment().estimator).cost


@pytest.fixture(scope="module")
def trained_network(bench, queries, plan_cost) -> ValueNetwork:
    """A network fitted to cout costs (never mutated; tests clone it)."""
    examples, labels = [], []
    for query in queries:
        seen: set[str] = set()
        for index in range(40):
            plan = random_plan(query, new_rng(derive_seed(7, query.name, index)))
            if plan.fingerprint() in seen:
                continue
            seen.add(plan.fingerprint())
            examples.append(bench.featurizer.featurize(query, plan))
            labels.append(plan_cost(query, plan))
    network = ValueNetwork(
        bench.featurizer,
        ValueNetworkConfig(
            query_hidden=32, query_embedding=16, tree_channels=(32, 16),
            head_hidden=16, seed=0,
        ),
    )
    ValueNetworkTrainer(
        network, learning_rate=3e-3, max_epochs=60, validation_fraction=0.0, seed=0
    ).fit(examples, labels)
    return network


def make_tuple(query, seed: int = 0, **overrides) -> ExperienceTuple:
    plan = random_plan(query, new_rng(derive_seed(seed, query.name, "xp")))
    defaults = dict(
        query=query, plan=plan, predicted_cost=1.0,
        planner_id="beam", model_version="v1", created_at=123.0,
    )
    defaults.update(overrides)
    return ExperienceTuple(**defaults)


# ---------------------------------------------------------------------- #
# The request-path sink
# ---------------------------------------------------------------------- #
class TestExperienceSink:
    def test_records_in_order_and_drains_oldest_first(self, queries):
        sink = ExperienceSink(capacity=8)
        items = [make_tuple(queries[0], seed=i) for i in range(3)]
        for item in items:
            assert sink.record(item)
        assert len(sink) == 3
        assert sink.drain() == items
        assert len(sink) == 0
        stats = sink.stats()
        assert stats.recorded == 3
        assert stats.dropped == 0
        assert stats.depth == 0

    def test_backpressure_drops_oldest_never_blocks(self, queries):
        sink = ExperienceSink(capacity=2)
        items = [make_tuple(queries[0], seed=i) for i in range(5)]
        accepted = [sink.record(item) for item in items]
        # The first two fit; each later record evicted the then-oldest.
        assert accepted == [True, True, False, False, False]
        stats = sink.stats()
        assert stats.recorded == 5
        assert stats.dropped == 3
        assert stats.depth == 2
        assert stats.capacity == 2
        # What remains is the newest traffic (training wants recency).
        assert sink.drain() == items[-2:]

    def test_drain_respects_max_items(self, queries):
        sink = ExperienceSink(capacity=8)
        items = [make_tuple(queries[0], seed=i) for i in range(4)]
        for item in items:
            sink.record(item)
        assert sink.drain(max_items=3) == items[:3]
        assert sink.drain() == items[3:]

    def test_stall_accounting_watermarks_slow_records(self, queries):
        # A sub-microsecond threshold flags every call, proving the counter
        # and the max_record_seconds watermark are wired; the production
        # default (50ms) never fires for a lock + append.
        sink = ExperienceSink(capacity=8, stall_threshold_seconds=1e-9)
        sink.record(make_tuple(queries[0]))
        stats = sink.stats()
        assert stats.stalls == 1
        assert stats.max_record_seconds > 0.0

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            ExperienceSink(capacity=0)
        with pytest.raises(ValueError):
            ExperienceSink(stall_threshold_seconds=0.0)


# ---------------------------------------------------------------------- #
# The replay buffer
# ---------------------------------------------------------------------- #
class TestReplayBuffer:
    def test_fingerprint_dedup_refreshes_instead_of_duplicating(self, queries):
        buffer = ReplayBuffer(capacity=16)
        item = make_tuple(queries[0], seed=1)
        assert buffer.add(with_executed_cost(item, 10.0))
        # Same (query, plan) seen again with a fresher executed cost: still
        # resident (add returns True) but folded, not duplicated.
        assert buffer.add(with_executed_cost(item, 12.0))
        assert len(buffer) == 1
        stats = buffer.stats()
        assert stats.seen == 2
        assert stats.duplicates == 1
        # The refreshed entry carries the latest observation.
        (snapshot,) = buffer.snapshot()
        assert snapshot.executed_cost == 12.0

    def test_reservoir_respects_capacity(self, queries):
        buffer = ReplayBuffer(capacity=8, seed=3)
        for index in range(50):
            buffer.add(make_tuple(queries[index % len(queries)], seed=index))
        assert len(buffer) == 8
        stats = buffer.stats()
        assert stats.size == 8
        assert stats.seen == 50
        # Every over-capacity add either replaced a victim or was skipped.
        assert stats.reservoir_replacements + stats.reservoir_skips == 50 - 8
        assert stats.reservoir_replacements > 0
        assert stats.reservoir_skips > 0

    def test_recency_weighted_sampling_prefers_fresh_experience(self, queries):
        buffer = ReplayBuffer(capacity=64, recency_half_life=2.0, seed=0)
        for index in range(40):
            buffer.add(make_tuple(queries[index % len(queries)], seed=index))
        newest = max(entry.seq for entry in buffer._entries.values())
        draws = [item for _ in range(30) for item in buffer.sample(4)]
        seqs = [buffer._entries[item.fingerprint()].seq for item in draws]
        # With a 2-add half-life, old entries are exponentially unlikely:
        # the mean sampled seq must sit deep in the recent half.
        assert sum(seqs) / len(seqs) > newest / 2

    def test_sample_never_exceeds_population(self, queries):
        buffer = ReplayBuffer(capacity=16)
        for index in range(3):
            buffer.add(make_tuple(queries[0], seed=index))
        sampled = buffer.sample(10)
        assert len(sampled) == 3
        assert len({item.fingerprint() for item in sampled}) == 3

    def test_jsonl_round_trip_preserves_tuples(self, queries, tmp_path):
        buffer = ReplayBuffer(capacity=16)
        for index in range(4):
            item = make_tuple(queries[index % len(queries)], seed=index)
            buffer.add(with_executed_cost(item, float(index)))
        path = tmp_path / "replay.jsonl"
        buffer.save(path)

        restored = ReplayBuffer(capacity=16)
        assert restored.load(path) == 4
        assert restored.stats().restored == 4
        originals = {item.fingerprint(): item for item in buffer.snapshot()}
        for item in restored.snapshot():
            original = originals[item.fingerprint()]
            assert item.executed_cost == original.executed_cost
            assert item.predicted_cost == original.predicted_cost
            assert item.planner_id == original.planner_id
            assert item.model_version == original.model_version

    def test_corrupt_persisted_lines_are_skipped_not_fatal(self, queries, tmp_path):
        buffer = ReplayBuffer(capacity=16)
        buffer.add(with_executed_cost(make_tuple(queries[0]), 1.0))
        path = tmp_path / "replay.jsonl"
        buffer.save(path)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("this is not json\n")
            handle.write('{"query": "truncated"}\n')

        restored = ReplayBuffer(capacity=16)
        assert restored.load(path) == 1
        stats = restored.stats()
        assert stats.restored == 1
        assert stats.load_errors == 2

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            ReplayBuffer(capacity=0)
        with pytest.raises(ValueError):
            ReplayBuffer(recency_half_life=0.0)


# ---------------------------------------------------------------------- #
# The autonomous loop: train -> gate -> promote -> monitor armed
# ---------------------------------------------------------------------- #
class RecordingMonitor:
    """A live-monitor stand-in capturing every arming call."""

    def __init__(self):
        self.watched: list[tuple] = []
        self.disarms = 0

    def watch(self, candidate_version, baseline_version):
        self.watched.append((candidate_version, baseline_version))

    def disarm(self):
        self.disarms += 1


class TestOnlineTrainerLoop:
    def make_stack(self, bench, queries, plan_cost, network, **gate_bounds):
        bounds = dict(max_regression=25.0, max_total_regression=5.0)
        bounds.update(gate_bounds)
        service = PlannerService(network, planner=small_planner(), max_workers=2)
        registry = ModelRegistry()
        gate = ShadowEvaluator(
            queries[:3], plan_cost, planner=small_planner(), **bounds
        )
        lifecycle = ModelLifecycle(
            service, registry, gate, featurizer=bench.featurizer
        )
        lifecycle.baseline(network)
        return service, registry, lifecycle

    def observe_traffic(self, loop, queries, network, rounds: int = 1):
        planner = small_planner()
        for index in range(rounds):
            for query in queries:
                result = planner.search(query, network)
                loop.observe(
                    query, result.plans[0], float(result.predicted_latencies[0]),
                    planner_id="beam", model_version=index,
                )

    def test_autonomous_round_promotes_and_arms_the_monitor(
        self, bench, queries, plan_cost
    ):
        network = small_network(bench.featurizer, seed=2)
        service, registry, lifecycle = self.make_stack(
            bench, queries, plan_cost, network
        )
        monitor = RecordingMonitor()
        lifecycle.attach_live_monitor(monitor)
        baseline_version = registry.serving_version
        loop = OnlineTrainerLoop(
            lifecycle, plan_cost,
            min_new_tuples=len(queries), sample_size=32, max_epochs=3,
            poll_interval_seconds=0.01,
        )
        try:
            with loop:
                assert loop.running
                self.observe_traffic(loop, queries, network)
                deadline = time.monotonic() + 60.0
                while loop.metrics().rounds < 1:
                    assert time.monotonic() < deadline, (
                        f"no autonomous round: {loop.metrics().to_json_dict()}"
                    )
                    time.sleep(0.02)
            metrics = loop.metrics()
            assert metrics.rounds == 1
            assert metrics.failures == 0
            assert metrics.trained_examples > 0
            assert len(metrics.cost_trend) == 1
            assert metrics.promotions + metrics.rejections == 1
            if metrics.promotions:
                # The full chain closed: a new version is serving and the
                # live monitor is armed with (candidate, displaced baseline).
                assert registry.serving_version != baseline_version
                assert monitor.watched == [
                    (registry.serving_version, baseline_version)
                ]
        finally:
            service.close()

    def test_executed_costs_come_from_the_yardstick(self, bench, queries, plan_cost):
        network = small_network(bench.featurizer, seed=4)
        service, _, lifecycle = self.make_stack(bench, queries, plan_cost, network)
        loop = OnlineTrainerLoop(lifecycle, plan_cost, min_new_tuples=4)
        try:
            self.observe_traffic(loop, queries[:4], network)
            assert loop._ingest() == 4
            for item in loop.buffer.snapshot():
                assert item.executed_cost == pytest.approx(
                    plan_cost(item.query, item.plan)
                )
        finally:
            loop.close()
            service.close()

    def test_round_threshold_and_cadence_gate_rounds(self, bench, queries, plan_cost):
        network = small_network(bench.featurizer, seed=5)
        service, _, lifecycle = self.make_stack(bench, queries, plan_cost, network)
        loop = OnlineTrainerLoop(
            lifecycle, plan_cost, min_new_tuples=1000,
            min_round_interval_seconds=3600.0,
        )
        try:
            self.observe_traffic(loop, queries[:2], network)
            loop._ingest()
            assert not loop._round_due()  # under the tuple threshold
            assert loop._round(force=False) is None
            assert loop.metrics().rounds == 0
        finally:
            loop.close()
            service.close()

    def test_persistence_restores_the_buffer_across_restarts(
        self, bench, queries, plan_cost, tmp_path
    ):
        network = small_network(bench.featurizer, seed=6)
        service, _, lifecycle = self.make_stack(bench, queries, plan_cost, network)
        path = tmp_path / "experience.jsonl"
        loop = OnlineTrainerLoop(
            lifecycle, plan_cost, min_new_tuples=4, persist_path=path
        )
        try:
            self.observe_traffic(loop, queries[:4], network)
            loop._ingest()
            loop.close()  # saves on close
            assert path.exists()

            reborn = OnlineTrainerLoop(
                lifecycle, plan_cost, min_new_tuples=4, persist_path=path
            )
            assert reborn.buffer.stats().restored == 4
            # Restored (already costed) tuples count toward the first round.
            assert reborn._round_due()
            reborn.close()
        finally:
            service.close()

    def test_forced_regression_is_rolled_back_by_live_traffic(
        self, bench, queries, plan_cost, trained_network
    ):
        """The safety net end to end: a candidate that games the (loosened)
        promotion gate but regresses real traffic is caught by the armed
        TrafficShadower and rolled back automatically."""
        serving = trained_network.clone()
        service = PlannerService(serving, planner=small_planner(), max_workers=2)
        registry = ModelRegistry()
        # An intentionally blind gate: everything passes, so promotion
        # safety rests entirely on the live monitor.
        gate = ShadowEvaluator(
            queries[:2], plan_cost, planner=small_planner(),
            max_regression=1e9, max_total_regression=1e9,
        )

        def sabotage(network):
            bad = network.clone()
            bad.head_fc2.weight.value = -bad.head_fc2.weight.value
            bad.head_fc2.bias.value = -bad.head_fc2.bias.value
            bad.bump_version()
            return bad

        class SabotagingLifecycle(ModelLifecycle):
            """Swaps every trained candidate for an inverted-ranking clone —
            a deterministic stand-in for fine-tuning gone wrong."""

            def evaluate_and_apply(self, snapshot):
                bad = sabotage(snapshot.restore(bench.featurizer))
                bad_snapshot = self.registry.register(bad, source="sabotaged")
                return super().evaluate_and_apply(bad_snapshot)

        lifecycle = SabotagingLifecycle(
            service, registry, gate, featurizer=bench.featurizer
        )
        baseline = lifecycle.baseline(serving)
        shadower = TrafficShadower(
            service, registry, plan_cost,
            sample_fraction=1.0, max_regression=1.3, max_total_regression=1.25,
            min_samples=3, window=16, planner=small_planner(),
            featurizer=bench.featurizer, lifecycle=lifecycle,
        )
        lifecycle.attach_live_monitor(shadower)
        loop = OnlineTrainerLoop(
            lifecycle, plan_cost, min_new_tuples=4, sample_size=16, max_epochs=1
        )
        try:
            self.observe_traffic(loop, queries, serving)
            decision = loop.run_round_now()
            assert decision is not None and decision.promoted
            condemned = registry.serving_version
            assert condemned != baseline.version
            assert shadower.armed
            assert loop.metrics().promotions == 1

            # Live traffic flows; the shadower replans it against both
            # versions and the inverted candidate breaches the bound.
            deadline = time.monotonic() + 60.0
            while shadower.stats().rollbacks < 1:
                assert time.monotonic() < deadline, (
                    f"no automatic rollback: {shadower.stats().to_json_dict()}"
                )
                for query in queries:
                    shadower.observe(query)
                shadower.drain(timeout=10.0)
            assert registry.serving_version == baseline.version
            assert not shadower.armed
            # The loop's metrics surface the rollback it caused.
            assert loop.metrics().rollbacks == 1
        finally:
            loop.close()
            shadower.close()
            service.close()


# ---------------------------------------------------------------------- #
# Gateway surface
# ---------------------------------------------------------------------- #
class TestGatewaySurface:
    @pytest.fixture()
    def stack(self, bench, queries, plan_cost):
        network = small_network(bench.featurizer, seed=8)
        service = PlannerService(network, planner=small_planner(), max_workers=2)
        registry = ModelRegistry()
        gate = ShadowEvaluator(queries[:2], plan_cost, planner=small_planner())
        lifecycle = ModelLifecycle(
            service, registry, gate, featurizer=bench.featurizer
        )
        lifecycle.baseline(network)
        # High threshold + never started: the sink accumulates, no rounds.
        loop = OnlineTrainerLoop(lifecycle, plan_cost, min_new_tuples=10_000)
        gateway = PlanningServer(
            service, registry=registry, lifecycle=lifecycle, experience=loop,
            queries=queries, featurizer=bench.featurizer,
        )
        yield gateway, loop
        loop.close()
        gateway.close()
        service.close()

    def test_served_plans_flow_into_the_sink(self, queries, stack):
        gateway, loop = stack
        status, body = gateway.handle_plan({"query": queries[0].name, "k": 2})
        assert status == 200
        stats = loop.sink.stats()
        # One tuple per returned plan (top-k observations, not just the best).
        assert stats.recorded == len(body["plans"])
        queued = loop.sink.drain()
        assert {item.query.name for item in queued} == {queries[0].name}
        assert all(item.planner_id for item in queued)

    def test_plan_many_records_each_result(self, queries, stack):
        gateway, loop = stack
        payload = {"requests": [{"query": query.name} for query in queries[:3]]}
        status, body = gateway.handle_plan_many(payload)
        assert status == 200
        names = {item.query.name for item in loop.sink.drain()}
        assert names == {query.name for query in queries[:3]}

    def test_experience_endpoint_reports_the_loop(self, queries, stack):
        gateway, loop = stack
        gateway.handle_plan({"query": queries[0].name, "k": 2})
        status, body = gateway.handle_experience()
        assert status == 200
        assert body["running"] is False
        assert body["sink"]["recorded"] >= 1
        assert body["rounds"] == 0
        assert body["sink"]["stalls"] == 0

    def test_metrics_carry_the_experience_block(self, queries, stack):
        gateway, _ = stack
        gateway.handle_plan({"query": queries[0].name, "k": 2})
        status, body = gateway.handle_metrics()
        assert status == 200
        assert body["experience"] is not None
        assert body["experience"]["sink"]["recorded"] >= 1

    def test_experience_endpoint_503_without_a_loop(self, bench, queries):
        network = small_network(bench.featurizer, seed=9)
        service = PlannerService(network, planner=small_planner(), max_workers=1)
        gateway = PlanningServer(service, queries=queries)
        try:
            status, body = gateway.handle_experience()
            assert status == 503
            assert body["kind"] == "unavailable"
            status, body = gateway.handle_metrics()
            assert status == 200
            assert body["experience"] is None
        finally:
            gateway.close()
            service.close()

    def test_sink_failures_never_fail_the_request(self, queries, stack):
        gateway, loop = stack

        def explode(*args, **kwargs):
            raise RuntimeError("experience subsystem on fire")

        loop.observe = explode  # type: ignore[assignment]
        status, body = gateway.handle_plan({"query": queries[0].name, "k": 2})
        assert status == 200
        assert body["plans"]
