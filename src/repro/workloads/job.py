"""A JOB-like workload generator over the synthetic IMDb schema.

The real Join Order Benchmark has 113 queries instantiated from 33 join
templates (3–16 joins, averaging 8 joins per query), built around the ``title``
hub with self-joined dimension tables (two ``info_type`` aliases, etc.) and
correlated filters.  This generator reproduces that structure:

- a fixed alias-level join graph mirroring JOB's (``t`` at the centre, fact
  tables ``mc``/``mi``/``mi_idx``/``mk``/``ci``/``ml`` around it, dimensions
  behind them);
- templates are connected subgraphs of that alias graph, sampled to match
  JOB's size distribution;
- each template yields several variants ("a", "b", ...) that share the join
  graph but draw different filter literals, exactly like JOB's 113 = 33 x ~3.4
  queries.

Ext-JOB (the hard generalisation workload of §8.5) is generated from a
*disjoint* pool of templates with different shapes and filter combinations.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sql.expr import ComparisonOp, FilterPredicate, JoinPredicate
from repro.sql.query import Query, TableRef
from repro.utils.rng import new_rng

#: Alias-level nodes of the JOB-like join graph: alias -> physical table.
JOB_ALIASES: dict[str, str] = {
    "t": "title",
    "kt": "kind_type",
    "mc": "movie_companies",
    "cn": "company_name",
    "ct": "company_type",
    "mi": "movie_info",
    "it1": "info_type",
    "mi_idx": "movie_info_idx",
    "it2": "info_type",
    "mk": "movie_keyword",
    "k": "keyword",
    "ci": "cast_info",
    "n": "name",
    "rt": "role_type",
    "chn": "char_name",
    "ml": "movie_link",
    "lt": "link_type",
}

#: Alias-level join edges (alias, column, alias, column), mirroring JOB's
#: PK/FK equi-joins.
JOB_EDGES: list[tuple[str, str, str, str]] = [
    ("t", "kind_id", "kt", "id"),
    ("t", "id", "mc", "movie_id"),
    ("mc", "company_id", "cn", "id"),
    ("mc", "company_type_id", "ct", "id"),
    ("t", "id", "mi", "movie_id"),
    ("mi", "info_type_id", "it1", "id"),
    ("t", "id", "mi_idx", "movie_id"),
    ("mi_idx", "info_type_id", "it2", "id"),
    ("t", "id", "mk", "movie_id"),
    ("mk", "keyword_id", "k", "id"),
    ("t", "id", "ci", "movie_id"),
    ("ci", "person_id", "n", "id"),
    ("ci", "role_id", "rt", "id"),
    ("ci", "person_role_id", "chn", "id"),
    ("t", "id", "ml", "movie_id"),
    ("ml", "link_type_id", "lt", "id"),
]

#: Filter slots: alias -> list of (column, kind) the generator may filter on.
#: ``kind`` selects how literals are drawn.
JOB_FILTER_SLOTS: dict[str, list[tuple[str, str]]] = {
    "t": [("production_year", "year"), ("kind_id", "small_eq"), ("episode_nr", "range")],
    "kt": [("kind", "small_eq")],
    "cn": [("country_code", "cat_eq"), ("name_group", "cat_in")],
    "ct": [("kind", "small_eq")],
    "mc": [("note_group", "cat_in")],
    "mi": [("info_group", "cat_in")],
    "it1": [("info", "cat_in")],
    "mi_idx": [("info_rank", "range")],
    "it2": [("info", "cat_eq")],
    "k": [("keyword_group", "cat_in")],
    "ci": [("role_id", "small_in"), ("nr_order", "range")],
    "n": [("gender", "small_eq"), ("name_group", "cat_in")],
    "rt": [("role", "small_eq")],
    "chn": [("name_group", "cat_in")],
    "lt": [("link", "small_eq")],
}


@dataclass
class JobTemplate:
    """One join template: an alias set plus its filterable slots."""

    template_id: int
    aliases: tuple[str, ...]

    @property
    def num_tables(self) -> int:
        return len(self.aliases)


def _alias_graph() -> dict[str, list[tuple[str, str, str]]]:
    """Adjacency list: alias -> [(neighbour, own column, neighbour column)]."""
    adjacency: dict[str, list[tuple[str, str, str]]] = {a: [] for a in JOB_ALIASES}
    for left, left_col, right, right_col in JOB_EDGES:
        adjacency[left].append((right, left_col, right_col))
        adjacency[right].append((left, right_col, left_col))
    return adjacency


def _sample_template(
    rng: np.random.Generator, template_id: int, num_tables: int, required: str = "t"
) -> JobTemplate:
    """Sample a connected alias subset of the requested size via a random walk."""
    adjacency = _alias_graph()
    chosen = {required}
    frontier = list(adjacency[required])
    while len(chosen) < num_tables and frontier:
        weights = np.array(
            [2.0 if n in ("mc", "mi", "ci", "mk", "mi_idx") else 1.0 for n, _, _ in frontier]
        )
        idx = rng.choice(len(frontier), p=weights / weights.sum())
        neighbour, _, _ = frontier.pop(idx)
        if neighbour in chosen:
            continue
        chosen.add(neighbour)
        frontier.extend(
            (n, a, b) for n, a, b in adjacency[neighbour] if n not in chosen
        )
    return JobTemplate(template_id=template_id, aliases=tuple(sorted(chosen)))


def _joins_for(aliases: set[str]) -> tuple[JoinPredicate, ...]:
    """All JOB edges fully inside ``aliases``."""
    return tuple(
        JoinPredicate(left, left_col, right, right_col)
        for left, left_col, right, right_col in JOB_EDGES
        if left in aliases and right in aliases
    )


def _draw_filter(
    rng: np.random.Generator, alias: str, column: str, kind: str
) -> FilterPredicate:
    """Draw a literal for a filter slot."""
    if kind == "year":
        low = int(rng.integers(1930, 2005))
        if rng.random() < 0.5:
            return FilterPredicate(alias, column, ComparisonOp.GT, low)
        return FilterPredicate(alias, column, ComparisonOp.BETWEEN, (low, low + int(rng.integers(5, 40))))
    if kind == "range":
        low = int(rng.integers(0, 30))
        return FilterPredicate(alias, column, ComparisonOp.LE, low)
    if kind == "small_eq":
        return FilterPredicate(alias, column, ComparisonOp.EQ, int(rng.integers(0, 5)))
    if kind == "small_in":
        values = tuple(sorted(set(int(v) for v in rng.integers(0, 10, size=3))))
        return FilterPredicate(alias, column, ComparisonOp.IN, values)
    if kind == "cat_eq":
        return FilterPredicate(alias, column, ComparisonOp.EQ, int(rng.integers(0, 20)))
    if kind == "cat_in":
        size = int(rng.integers(2, 6))
        values = tuple(sorted(set(int(v) for v in rng.integers(0, 40, size=size))))
        return FilterPredicate(alias, column, ComparisonOp.IN, values)
    raise ValueError(f"unknown filter kind {kind!r}")


def _make_variant(
    rng: np.random.Generator, template: JobTemplate, name: str, num_filters: int
) -> Query:
    """Instantiate one query from a template."""
    aliases = set(template.aliases)
    tables = tuple(TableRef(JOB_ALIASES[a], a) for a in template.aliases)
    joins = _joins_for(aliases)
    slots = [
        (alias, column, kind)
        for alias in template.aliases
        for column, kind in JOB_FILTER_SLOTS.get(alias, [])
    ]
    rng.shuffle(slots)
    filters = tuple(
        _draw_filter(rng, alias, column, kind)
        for alias, column, kind in slots[: min(num_filters, len(slots))]
    )
    return Query(name=name, tables=tables, joins=joins, filters=filters)


def _template_sizes(rng: np.random.Generator, num_templates: int, size_range: tuple[int, int]) -> list[int]:
    """Template sizes roughly matching JOB's distribution (avg ~8 tables)."""
    low, high = size_range
    sizes = rng.normal(loc=(low + high) / 2.0, scale=(high - low) / 4.0, size=num_templates)
    return [int(np.clip(round(s), low, high)) for s in sizes]


def make_job_queries(
    num_queries: int = 113,
    num_templates: int = 33,
    seed: int = 0,
    size_range: tuple[int, int] = (4, 12),
    filters_per_query: tuple[int, int] = (2, 5),
) -> tuple[list[Query], dict[str, int]]:
    """Generate the JOB-like workload.

    Args:
        num_queries: Total number of queries (113 in the paper).
        num_templates: Number of join templates (33 in the paper).
        seed: RNG seed.
        size_range: Min/max relations per template.
        filters_per_query: Min/max filter predicates per query.

    Returns:
        ``(queries, template_of)`` where ``template_of`` maps query name to its
        template id (used by the template-based splits).
    """
    rng = new_rng(seed)
    sizes = _template_sizes(rng, num_templates, size_range)
    templates = [
        _sample_template(rng, template_id=i, num_tables=size)
        for i, size in enumerate(sizes)
    ]
    queries: list[Query] = []
    template_of: dict[str, int] = {}
    letters = "abcdefghij"
    variant_counts = np.full(num_templates, num_queries // num_templates)
    variant_counts[: num_queries % num_templates] += 1
    for template, count in zip(templates, variant_counts):
        for v in range(int(count)):
            name = f"q{template.template_id + 1}{letters[v % len(letters)]}"
            num_filters = int(rng.integers(filters_per_query[0], filters_per_query[1] + 1))
            query = _make_variant(rng, template, name, num_filters)
            queries.append(query)
            template_of[name] = template.template_id
    return queries, template_of


def make_ext_job_queries(
    num_queries: int = 24,
    seed: int = 1234,
    size_range: tuple[int, int] = (3, 8),
) -> list[Query]:
    """Generate the Ext-JOB-like out-of-distribution workload (§8.5).

    Uses a different seed space, smaller join counts (2–10 joins, averaging ~5)
    and different filter draws so the join templates and predicates differ from
    the training workload.
    """
    rng = new_rng(seed)
    queries: list[Query] = []
    for i in range(num_queries):
        size = int(rng.integers(size_range[0], size_range[1] + 1))
        template = _sample_template(rng, template_id=1000 + i, num_tables=size)
        num_filters = int(rng.integers(1, 4))
        queries.append(_make_variant(rng, template, f"ext{i + 1}", num_filters))
    return queries
