"""Online-learning soak: the gateway learns from its own live traffic.

Not a paper figure — this measures the closed serving loop added on top of
the paper's training loop (§4 run *while serving*).  The bench stands up the
full online stack — gateway + registry + shadow gate + armed traffic
shadower + :class:`~repro.experience.loop.OnlineTrainerLoop` — seeds it with
a randomly initialised serving network, and then just keeps sending the
workload through ``handle_plan``:

1. every served plan flows into the experience sink; the loop costs it under
   the shared yardstick, replays it, and autonomously fine-tunes, gates and
   promotes new versions while traffic continues;
2. the loop's ``cost_trend`` — the windowed mean simulated-executed cost of
   traffic between rounds — must fall across at least two autonomous
   promotions (the gateway demonstrably learned from its own traffic);
3. the whole soak must be invisible to the foreground: zero failed requests,
   zero request-path sink stalls, zero automatic rollbacks.

Headline figures land in ``benchmark.extra_info`` so ``--benchmark-json``
artifacts expose them to CI (``benchmarks/baselines/online.json``).
"""

from __future__ import annotations

import time

from benchmarks.conftest import run_once
from repro.costmodel.cout import CoutCostModel
from repro.experience import OnlineTrainerLoop
from repro.lifecycle import (
    BackgroundTrainer,
    ModelLifecycle,
    ModelRegistry,
    ShadowEvaluator,
)
from repro.model.value_network import ValueNetwork, ValueNetworkConfig
from repro.search.beam import BeamSearchPlanner
from repro.server import PlanningServer, TrafficShadower
from repro.service.service import PlannerService
from repro.workloads.benchmark import make_job_benchmark

#: Autonomous promotions the soak must observe (the issue's acceptance bar).
TARGET_PROMOTIONS = 2
#: Hard cap on autonomous rounds: not every candidate passes the improvement
#: gate, so the soak budgets many attempts per promotion it needs.
MAX_ROUNDS = 24
#: The headline bar: final-window mean executed cost vs the first window.
MAX_COST_TREND_RATIO = 0.95
#: Per-phase safety deadline (the loop is event-driven; this only bounds CI).
PHASE_TIMEOUT_SECONDS = 180.0


def _make_planner() -> BeamSearchPlanner:
    return BeamSearchPlanner(beam_size=3, top_k=3, enumerate_scan_operators=False)


def _acceptance_met(metrics) -> bool:
    """The issue's bar: costs trended down across >= 2 autonomous promotions."""
    trend = metrics.cost_trend
    ratio = trend[-1] / trend[0] if len(trend) >= 2 else 1.0
    return (
        metrics.promotions >= TARGET_PROMOTIONS
        and ratio <= MAX_COST_TREND_RATIO
    )


def _run_online_soak(scale) -> dict:
    # A deliberately narrow workload: online fine-tuning learns from the
    # handful of plans its own traffic surfaces, so per-query capacity (not
    # query count) is what makes the cost trend demonstrably fall.
    num_queries = 6
    bundle = make_job_benchmark(
        fact_rows=scale.fact_rows,
        num_queries=num_queries,
        num_templates=min(scale.num_templates, num_queries),
        test_size=min(scale.test_size, max(num_queries - 4, 1)),
        seed=0,
        # Bigger joins: 5-7-way plan spaces have real cost spread, so a
        # model that learns from traffic has headroom to show it.
        size_range=(5, 7),
    )
    queries = list(bundle.train_queries)
    plan_cost = CoutCostModel(bundle.environment().estimator).cost

    # Deliberately untrained: everything the gateway ends up knowing about
    # plan quality must come from its own traffic.
    serving = ValueNetwork(
        bundle.featurizer,
        ValueNetworkConfig(
            query_hidden=32, query_embedding=16, tree_channels=(32, 16),
            head_hidden=16, seed=0,
        ),
    )
    service = PlannerService(
        serving, planner=_make_planner(), max_workers=2, cache_capacity=256
    )
    registry = ModelRegistry()
    # Near-improvement-only promotion: the loop's whole point is a falling
    # cost trend, so the gate refuses candidates that cost more in total on
    # the probe workload — with just enough slack (2%) that a near-equal
    # candidate still lands and the loop keeps taking steps.
    gate = ShadowEvaluator(
        queries, plan_cost,
        max_regression=10.0, max_total_regression=1.02,
        planner=_make_planner(),
    )
    lifecycle = ModelLifecycle(
        service, registry, gate,
        # Gentle per-round fine-tuning: an online loop takes many small
        # steps; hard fits on a tiny traffic window overfit and fail the gate.
        trainer=BackgroundTrainer(
            registry, learning_rate=3e-3, validation_fraction=0.0, patience=10,
            max_epochs=5,
        ),
        featurizer=bundle.featurizer,
    )
    shadower = TrafficShadower(
        service, registry, plan_cost,
        sample_fraction=0.25, max_regression=3.0, max_total_regression=1.5,
        min_samples=4, window=32, planner=_make_planner(),
        featurizer=bundle.featurizer, lifecycle=lifecycle,
    )
    loop = OnlineTrainerLoop(
        lifecycle, plan_cost,
        min_new_tuples=len(queries) * 3,
        # Mini-batch rounds: drawing a fresh recency-weighted subset each
        # round keeps successive candidates distinct, so a rejection is a
        # retry with different data rather than a deterministic dead end.
        sample_size=16,
        # Small steps on purpose: each round should capture only part of the
        # remaining headroom, so the cost descent spans several promotions
        # instead of collapsing into one giant first round.
        max_epochs=5,
        min_round_interval_seconds=0.0,
    )
    gateway = PlanningServer(
        service, registry=registry, lifecycle=lifecycle, shadower=shadower,
        experience=loop, queries=queries, featurizer=bundle.featurizer,
    )
    lifecycle.baseline(serving)

    failed_requests = 0
    requests_sent = 0
    try:
        loop.start()
        # Keep taking autonomous rounds until the acceptance bar is met: the
        # gate rejects non-improving candidates, so each promotion may take a
        # few mini-batch retries, all fed by the same live traffic.
        while not _acceptance_met(loop.metrics()):
            completed = loop.metrics().rounds
            assert completed < MAX_ROUNDS, loop.metrics().to_json_dict()
            deadline = time.monotonic() + PHASE_TIMEOUT_SECONDS
            # Keep the workload flowing until the loop lands its next
            # autonomous round; the sink threshold is what fires it.
            while loop.metrics().rounds == completed:
                assert time.monotonic() < deadline, (
                    f"round {completed + 1} never fired: "
                    f"{loop.metrics().to_json_dict()}"
                )
                for query in queries:
                    status, body = gateway.handle_plan(
                        {"query": query.name, "k": 3}
                    )
                    requests_sent += 1
                    if status != 200 or not body.get("plans"):
                        failed_requests += 1
                time.sleep(0.01)
        shadower.drain(timeout=10.0)
    finally:
        loop.close()
        gateway.close()
        shadower.close()
        service.close()

    metrics = loop.metrics()
    sink = metrics.sink
    trend = metrics.cost_trend
    cost_trend_ratio = trend[-1] / trend[0] if len(trend) >= 2 else 1.0

    # The loop must have learned from its own traffic without ever touching
    # the foreground: promotions landed, costs fell, nothing failed.
    assert metrics.promotions >= TARGET_PROMOTIONS, metrics.to_json_dict()
    assert metrics.failures == 0, metrics.to_json_dict()
    assert metrics.rollbacks == 0, metrics.to_json_dict()
    assert failed_requests == 0
    assert sink.stalls == 0, sink.to_json_dict()
    assert len(trend) >= 2
    assert cost_trend_ratio <= MAX_COST_TREND_RATIO, trend

    return {
        "queries": len(queries),
        "requests_sent": requests_sent,
        "failed_requests": failed_requests,
        "rounds": metrics.rounds,
        "autonomous_promotions": metrics.promotions,
        "rejections": metrics.rejections,
        "rollbacks": metrics.rollbacks,
        "trained_examples": metrics.trained_examples,
        "sink_recorded": sink.recorded,
        "sink_dropped": sink.dropped,
        "sink_stalls": sink.stalls,
        "sink_max_record_ms": sink.max_record_seconds * 1e3,
        "buffer_size": metrics.buffer.size,
        "duplicates_folded": metrics.buffer.duplicates,
        "cost_trend_first": trend[0],
        "cost_trend_last": trend[-1],
        "cost_trend_ratio": cost_trend_ratio,
        "serving_version": registry.serving_version,
    }


def bench_online_learning_soak(benchmark, scale):
    result = run_once(benchmark, _run_online_soak, scale)
    print()
    print(
        f"online soak: {result['requests_sent']} requests "
        f"({result['failed_requests']} failed), {result['rounds']} autonomous "
        f"rounds -> {result['autonomous_promotions']} promotions, "
        f"{result['rejections']} rejections, {result['rollbacks']} rollbacks "
        f"(serving v{result['serving_version']})"
    )
    print(
        f"cost trend: {result['cost_trend_first']:.1f} -> "
        f"{result['cost_trend_last']:.1f} "
        f"({result['cost_trend_ratio']:.2%} of the first window)"
    )
    print(
        f"experience path: {result['sink_recorded']} recorded, "
        f"{result['sink_dropped']} dropped, {result['sink_stalls']} stalls "
        f"(worst record {result['sink_max_record_ms']:.3f}ms); replay buffer "
        f"{result['buffer_size']} entries, {result['duplicates_folded']} "
        f"duplicates folded; {result['trained_examples']} examples trained"
    )
    for key, value in result.items():
        benchmark.extra_info[key] = round(float(value), 4)
