"""The expert optimizer baselines (PostgreSQL-like and CommDB-like).

Both experts combine the PostgreSQL-style
:class:`~repro.costmodel.expert.ExpertCostModel` with exhaustive DP (greedy
pairing beyond a table-count threshold, mirroring PostgreSQL's GEQO cutover).
The only difference between the two, as in the paper (§8.2), is the size of
the search space: the PostgreSQL-like expert explores bushy plans while the
CommDB-like expert is restricted to left-deep plans (the paper estimates the
commercial system's hintable space to be ~1000x smaller).
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass, field

from repro.cardinality.base import CardinalityEstimator
from repro.cardinality.estimator import HistogramEstimator
from repro.costmodel.base import CostModel
from repro.costmodel.expert import ExpertCostModel
from repro.execution.hints import HintSet
from repro.optimizer.dp import DynamicProgrammingOptimizer
from repro.optimizer.greedy import GreedyOptimizer
from repro.planning.envelope import PlanRequest, PlanResult
from repro.plans.nodes import PlanNode
from repro.sql.query import Query
from repro.storage.database import Database


@dataclass
class ExpertPlannerStats:
    """Bookkeeping about an expert optimizer's planning calls."""

    queries_planned: int = 0
    dp_planned: int = 0
    greedy_planned: int = 0
    total_planning_seconds: float = 0.0
    plans: dict[str, str] = field(default_factory=dict)


class ExpertOptimizer:
    """A classical cost-based optimizer over the simulated engine.

    Args:
        name: Display name (``"postgres"`` / ``"commdb"``).
        cost_model: The expert's cost model.
        left_deep_only: Restrict the search space to left-deep plans.
        max_dp_tables: Above this relation count, fall back to greedy pairing
            (PostgreSQL's GEQO analogue).
        hint_set: Optional operator restrictions (used by the Bao baseline to
            steer this expert).
    """

    def __init__(
        self,
        name: str,
        cost_model: CostModel,
        left_deep_only: bool = False,
        max_dp_tables: int = 10,
        hint_set: HintSet | None = None,
    ):
        self.name = name
        self.cost_model = cost_model
        self.left_deep_only = left_deep_only
        self.max_dp_tables = max_dp_tables
        self.hint_set = hint_set
        self.stats = ExpertPlannerStats()
        self._plan_cache: dict[tuple[str, str], tuple[PlanNode, float]] = {}

    def plan(self, request: PlanRequest) -> PlanResult:
        """Plan ``request.query`` (the :class:`Planner` protocol entry).

        The expert keeps only its cost-model-optimal plan, so the result holds
        one plan regardless of ``request.k``.
        """
        started = time.perf_counter()
        plan, cost = self.optimize_with_cost(request.query)
        return PlanResult(
            plans=[plan],
            predicted_latencies=[cost],
            planning_seconds=time.perf_counter() - started,
            planner_name=self.name,
        )

    def optimize(self, query: Query) -> PlanNode:
        """Deprecated: plan ``query`` and return the chosen physical plan."""
        warnings.warn(
            "ExpertOptimizer.optimize() is deprecated; use plan(PlanRequest(...)) "
            "or optimize_with_cost()",
            DeprecationWarning,
            stacklevel=2,
        )
        plan, _ = self.optimize_with_cost(query)
        return plan

    def optimize_with_cost(self, query: Query) -> tuple[PlanNode, float]:
        """Plan ``query`` and return ``(plan, model_cost)``."""
        hint_name = self.hint_set.name if self.hint_set else "all"
        cache_key = (query.name, hint_name)
        if cache_key in self._plan_cache:
            return self._plan_cache[cache_key]
        started = time.perf_counter()
        if query.num_tables <= self.max_dp_tables:
            dp = DynamicProgrammingOptimizer(
                self.cost_model,
                left_deep_only=self.left_deep_only,
                hint_set=self.hint_set,
                physical=True,
            )
            result = dp.optimize(query)
            plan, cost = result.best_plan, result.best_cost
            self.stats.dp_planned += 1
        else:
            greedy = GreedyOptimizer(
                self.cost_model, hint_set=self.hint_set, physical=True
            )
            plan, cost = greedy.best_plan_and_cost(query)
            self.stats.greedy_planned += 1
        elapsed = time.perf_counter() - started
        self.stats.queries_planned += 1
        self.stats.total_planning_seconds += elapsed
        self.stats.plans[query.name] = plan.fingerprint()
        self._plan_cache[cache_key] = (plan, cost)
        return plan, cost

    def with_hint_set(self, hint_set: HintSet) -> "ExpertOptimizer":
        """A copy of this expert restricted to ``hint_set`` (used by Bao)."""
        return ExpertOptimizer(
            name=f"{self.name}[{hint_set.name}]",
            cost_model=self.cost_model,
            left_deep_only=self.left_deep_only,
            max_dp_tables=self.max_dp_tables,
            hint_set=hint_set,
        )


def make_postgres_optimizer(
    database: Database,
    estimator: CardinalityEstimator | None = None,
    max_dp_tables: int = 10,
) -> ExpertOptimizer:
    """Build the PostgreSQL-like expert: bushy DP over the expert cost model."""
    estimator = estimator or HistogramEstimator(database)
    cost_model = ExpertCostModel(estimator, database)
    return ExpertOptimizer(
        name="postgres",
        cost_model=cost_model,
        left_deep_only=False,
        max_dp_tables=max_dp_tables,
    )


def make_commdb_optimizer(
    database: Database,
    estimator: CardinalityEstimator | None = None,
    max_dp_tables: int = 12,
) -> ExpertOptimizer:
    """Build the CommDB-like expert: left-deep DP over the expert cost model."""
    estimator = estimator or HistogramEstimator(database)
    cost_model = ExpertCostModel(estimator, database)
    return ExpertOptimizer(
        name="commdb",
        cost_model=cost_model,
        left_deep_only=True,
        max_dp_tables=max_dp_tables,
    )
