"""Lifecycle event bus: promotions, rollbacks, scorer respawns, worker churn.

A bounded per-process ring with monotonically increasing sequence numbers.
Producers call :func:`emit_event` from wherever the event happens (the
gateway's ops routes, the lifecycle gate, the shadow rollback path, the
scoring pool's respawn) — emission never blocks and never raises into the
caller.  Consumers (the SSE stream, tests) poll with a cursor via
:meth:`EventBus.since`, so several dashboards can tail the same bus without
stealing each other's events.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field

#: Events retained per process (a slow dashboard misses old ones, by design).
DEFAULT_CAPACITY = 512


@dataclass(frozen=True)
class Event:
    """One lifecycle occurrence."""

    seq: int
    kind: str
    timestamp: float
    fields: dict = field(default_factory=dict)

    def to_json_dict(self) -> dict:
        return {
            "seq": self.seq,
            "kind": self.kind,
            "timestamp": self.timestamp,
            **self.fields,
        }


class EventBus:
    """Bounded ring of :class:`Event` with cursor-based tailing."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        self._lock = threading.Lock()
        self._events: deque[Event] = deque(maxlen=capacity)
        self._seq = 0

    def emit(self, kind: str, **fields) -> Event:
        with self._lock:
            self._seq += 1
            event = Event(
                seq=self._seq, kind=kind, timestamp=time.time(), fields=fields
            )
            self._events.append(event)
        return event

    @property
    def cursor(self) -> int:
        """The latest sequence number (start tailing from here)."""
        return self._seq

    def since(self, cursor: int) -> "tuple[list[Event], int]":
        """Events emitted after ``cursor``, plus the new cursor."""
        with self._lock:
            events = [event for event in self._events if event.seq > cursor]
            return events, self._seq

    def recent(self, limit: int = 50) -> "list[Event]":
        with self._lock:
            return list(self._events)[-limit:]


_bus = EventBus()


def get_event_bus() -> EventBus:
    """The per-process lifecycle event bus."""
    return _bus


def emit_event(kind: str, **fields) -> None:
    """Emit onto the process bus; never raises into the calling path."""
    try:
        _bus.emit(kind, **fields)
    except Exception:  # noqa: BLE001 - telemetry must not fail the caller
        pass
