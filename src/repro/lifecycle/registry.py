"""The versioned model registry: the source of truth for serving weights.

``ModelRegistry`` stores immutable :class:`ModelSnapshot` checkpoints under
monotone version numbers and tracks which one is *serving*.  ``promote``
moves the serving pointer forward (normally after the shadow gate passes),
``rollback`` moves it back to the previously serving version, and a bounded
retention policy evicts the oldest non-serving snapshots so long-running
agents do not accumulate every checkpoint ever trained.

The registry is deliberately storage-agnostic (snapshots live in memory as
numpy arrays); persistence layers can serialise ``snapshot.state`` however
they like.
"""

from __future__ import annotations

import dataclasses
import json
import re
import threading
import warnings
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Iterable

from repro.featurization.featurizer import QueryPlanFeaturizer
from repro.lifecycle.snapshot import LifecycleError, ModelSnapshot
from repro.model.value_network import ValueNetwork

if TYPE_CHECKING:
    from repro.lifecycle.shadow import PromotionDecision


class ModelRegistry:
    """Thread-safe registry of immutable, versioned model snapshots.

    Args:
        retention: Maximum snapshots kept.  When exceeded, the oldest
            snapshots are evicted — except the serving version and the
            versions on the current rollback chain, which are always
            retained.  ``0`` disables eviction.
        persist_dir: Optional directory the registry mirrors the serving
            chain into: every promotion (and rollback) writes the newly
            serving snapshot as ``model-v<version>.npz`` via
            :meth:`ModelSnapshot.save`, so external consumers — most notably
            the process-based scoring backend's scorer processes — load
            weights from files instead of sharing live objects.
    """

    def __init__(self, retention: int = 16, persist_dir: str | Path | None = None):
        if retention < 0:
            raise ValueError("retention must be >= 0 (0 disables eviction)")
        self.retention = retention
        self.persist_dir = Path(persist_dir) if persist_dir is not None else None
        if self.persist_dir is not None:
            self.persist_dir.mkdir(parents=True, exist_ok=True)
        self._snapshots: dict[int, ModelSnapshot] = {}
        self._next_version = 1
        self._serving_history: list[int] = []
        self._decisions: list["PromotionDecision"] = []
        self._listeners: list[Callable[[ModelSnapshot], None]] = []
        self._lock = threading.RLock()
        # Serialises listener notification so concurrent promote/rollback
        # calls can never deliver serving-pointer changes out of order.
        self._notify_lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # Registration and lookup
    # ------------------------------------------------------------------ #
    def register(
        self,
        network: ValueNetwork,
        source: str = "",
        parent_version: int | None = None,
        tag: str = "",
    ) -> ModelSnapshot:
        """Snapshot ``network`` and store it under the next version number.

        The snapshot copies the weights, so training the network further
        never mutates what was registered.
        """
        with self._lock:
            # Lineage may point at an already-evicted ancestor; only reject
            # versions the registry never issued.
            if parent_version is not None and not (
                1 <= parent_version < self._next_version
            ):
                raise LifecycleError(
                    f"parent version {parent_version} was never registered"
                )
            version = self._next_version
            self._next_version += 1
            snapshot = ModelSnapshot.capture(
                network, version, source=source, parent_version=parent_version, tag=tag
            )
            self._snapshots[version] = snapshot
            self._evict_locked()
            return snapshot

    def get(self, version: int) -> ModelSnapshot:
        """Look up a snapshot by version (evicted/unknown versions raise)."""
        with self._lock:
            try:
                return self._snapshots[version]
            except KeyError:
                raise LifecycleError(
                    f"unknown model version {version}; retained: {self.versions()}"
                ) from None

    def versions(self) -> list[int]:
        """Retained versions, ascending."""
        with self._lock:
            return sorted(self._snapshots)

    def snapshots(self) -> list[ModelSnapshot]:
        """A consistent list of the retained snapshots, ascending by version.

        One lock acquisition — callers iterating ``versions()`` and calling
        :meth:`get` per entry would race concurrent retention eviction.
        """
        with self._lock:
            return [self._snapshots[version] for version in sorted(self._snapshots)]

    def latest(self) -> ModelSnapshot:
        """The most recently registered snapshot."""
        with self._lock:
            if not self._snapshots:
                raise LifecycleError("registry holds no snapshots")
            return self._snapshots[max(self._snapshots)]

    def restore(self, version: int, featurizer: QueryPlanFeaturizer) -> ValueNetwork:
        """Materialise a fresh network carrying ``version``'s weights."""
        return self.get(version).restore(featurizer)

    def __contains__(self, version: int) -> bool:
        with self._lock:
            return version in self._snapshots

    def __len__(self) -> int:
        with self._lock:
            return len(self._snapshots)

    # ------------------------------------------------------------------ #
    # Serving pointer: promote / rollback
    # ------------------------------------------------------------------ #
    @property
    def serving_version(self) -> int | None:
        """The version currently marked serving (None before first promote)."""
        with self._lock:
            return self._serving_history[-1] if self._serving_history else None

    def serving(self) -> ModelSnapshot:
        """The serving snapshot."""
        with self._lock:
            version = self.serving_version
            if version is None:
                raise LifecycleError("no version has been promoted yet")
            return self.get(version)

    def serving_history(self) -> list[int]:
        """The promote/rollback chain, oldest first (last entry is serving)."""
        with self._lock:
            return list(self._serving_history)

    def promote(self, version: int) -> ModelSnapshot:
        """Mark ``version`` as serving (it must be registered).

        With ``persist_dir`` set, the snapshot is written to disk *before*
        the serving pointer moves, so a persistence failure (full disk,
        permissions) fails the promotion cleanly instead of leaving a
        serving version that was never persisted.  Subscribed listeners
        (scoring backends following this registry) are then notified outside
        the lock.
        """
        with self._lock:
            snapshot = self.get(version)
        if self.persist_dir is not None:
            path = self.snapshot_path(snapshot.version)
            if not path.exists():
                snapshot.save(path)
        with self._lock:
            snapshot = self.get(version)  # still registered after the I/O
            if self.serving_version != version:
                self._serving_history.append(version)
            self._evict_locked()
        self._serving_changed()
        return snapshot

    def rollback(self, expected_serving: int | None = None) -> ModelSnapshot:
        """Revert the serving pointer to the previously serving version.

        Args:
            expected_serving: Optional compare-and-rollback guard: the
                rollback only applies if this version is still the serving
                one (checked under the registry lock, so a concurrent
                promotion cannot be unseated by a stale verdict — the
                live-traffic shadower's automatic rollback uses this).

        Returns:
            The snapshot that is serving after the rollback.

        Raises:
            LifecycleError: Nothing to roll back to (fewer than two
                promotions recorded), or ``expected_serving`` no longer
                matches the serving version.
        """
        with self._lock:
            if (
                expected_serving is not None
                and self.serving_version != expected_serving
            ):
                raise LifecycleError(
                    f"rollback aborted: expected v{expected_serving} serving, "
                    f"but v{self.serving_version} is"
                )
            if len(self._serving_history) < 2:
                raise LifecycleError(
                    "nothing to roll back to: fewer than two promotions recorded"
                )
            self._serving_history.pop()
            snapshot = self.get(self._serving_history[-1])
        self._serving_changed()
        return snapshot

    # ------------------------------------------------------------------ #
    # Serving-change notification and persistence
    # ------------------------------------------------------------------ #
    def subscribe(self, listener: Callable[[ModelSnapshot], None]) -> None:
        """Call ``listener(snapshot)`` whenever the serving pointer moves.

        Promotions *and* rollbacks notify (both change what "serving" means).
        Listeners run outside the registry lock, on the promoting thread;
        notification is advisory — a listener that raises is reported as a
        :class:`RuntimeWarning`, never unwinds an already-applied promotion.
        """
        with self._lock:
            self._listeners.append(listener)

    def unsubscribe(self, listener: Callable[[ModelSnapshot], None]) -> None:
        """Stop notifying ``listener`` (unknown listeners are ignored)."""
        with self._lock:
            try:
                self._listeners.remove(listener)
            except ValueError:
                pass

    def snapshot_path(self, version: int) -> Path:
        """Where ``version`` is (or would be) persisted on disk."""
        if self.persist_dir is None:
            raise LifecycleError("registry has no persist_dir configured")
        return self.persist_dir / f"model-v{version}.npz"

    def manifest_path(self) -> Path:
        """Where the serving-chain manifest is persisted on disk."""
        if self.persist_dir is None:
            raise LifecycleError("registry has no persist_dir configured")
        return self.persist_dir / "serving.json"

    def _write_manifest(self) -> None:
        """Mirror the serving chain to ``serving.json`` (write-then-rename).

        The snapshot files alone cannot tell a restarted gateway *which*
        version was serving — after a rollback the newest file on disk is
        exactly the version that was rolled away from — so the chain itself
        is persisted alongside them.
        """
        with self._lock:
            manifest = {
                "format": "model-registry-v1",
                "serving_history": list(self._serving_history),
                "next_version": self._next_version,
            }
        path = self.manifest_path()
        partial = path.with_name(path.name + ".partial")
        partial.write_text(json.dumps(manifest))
        partial.replace(path)

    @classmethod
    def load_persisted(
        cls, persist_dir: str | Path, retention: int = 16
    ) -> "ModelRegistry":
        """Restore a registry (snapshots + serving chain) from ``persist_dir``.

        The inverse of ``ModelRegistry(persist_dir=...)``'s mirroring: every
        ``model-v<N>.npz`` the serving chain left behind is loaded back under
        its original version number, and ``serving.json`` restores the
        promote/rollback chain — so a restarted gateway resumes serving the
        last promoted model, with the previous version still available as a
        rollback target.  Version numbering continues where the previous
        process stopped.

        Corrupt or torn snapshot files are skipped with a
        :class:`RuntimeWarning` (a chain whose serving version cannot be
        loaded falls back to the newest loadable snapshot).

        Args:
            persist_dir: Directory a previous registry mirrored into.
            retention: Retention policy of the restored registry.

        Raises:
            LifecycleError: ``persist_dir`` holds no loadable snapshots.
        """
        persist_dir = Path(persist_dir)
        registry = cls(retention=retention, persist_dir=persist_dir)
        loaded: dict[int, ModelSnapshot] = {}
        for path in sorted(persist_dir.glob("model-v*.npz")):
            match = re.fullmatch(r"model-v(\d+)\.npz", path.name)
            if match is None:
                continue
            try:
                snapshot = ModelSnapshot.load(path)
            except Exception as error:  # noqa: BLE001 - skip torn files
                warnings.warn(
                    f"skipping unloadable snapshot {path.name}: {error}",
                    RuntimeWarning,
                    stacklevel=2,
                )
                continue
            version = int(match.group(1))
            if snapshot.version != version:
                # The filename is authoritative (replace, not a hand-copied
                # constructor call, so future snapshot fields survive).
                snapshot = dataclasses.replace(snapshot, version=version)
            loaded[version] = snapshot
        if not loaded:
            raise LifecycleError(
                f"no loadable model snapshots under {persist_dir}"
            )
        history: list[int] = []
        next_version = max(loaded) + 1
        manifest_path = persist_dir / "serving.json"
        if manifest_path.exists():
            try:
                manifest = json.loads(manifest_path.read_text())
                if not isinstance(manifest, dict):
                    raise ValueError(
                        f"expected a JSON object, got {type(manifest).__name__}"
                    )
                history = [
                    version
                    for version in manifest.get("serving_history", [])
                    if isinstance(version, int) and version in loaded
                ]
                next_version = max(
                    next_version, int(manifest.get("next_version", next_version))
                )
            except (ValueError, TypeError) as error:
                warnings.warn(
                    f"ignoring corrupt serving manifest {manifest_path.name}: {error}",
                    RuntimeWarning,
                    stacklevel=2,
                )
        if not history:
            # No (usable) manifest: the newest loadable snapshot was the last
            # one the old registry wrote on a serving change.
            history = [max(loaded)]
        # Collapse duplicates rollback pruning may have produced.
        collapsed: list[int] = []
        for version in history:
            if not collapsed or collapsed[-1] != version:
                collapsed.append(version)
        with registry._lock:
            registry._snapshots = loaded
            registry._serving_history = collapsed
            registry._next_version = next_version
            registry._evict_locked()
        return registry

    def _serving_changed(self) -> None:
        # Re-read the serving pointer under the notify lock rather than
        # trusting the triggering call's snapshot: when promote/rollback race,
        # whichever notification runs last must describe the registry's final
        # state, never a stale intermediate one.  The pointer has already
        # moved by the time this runs, so nothing here may raise.
        with self._notify_lock:
            with self._lock:
                version = self.serving_version
                if version is None:
                    return
                snapshot = self.get(version)
                listeners = list(self._listeners)
            if self.persist_dir is not None:
                try:
                    path = self.snapshot_path(snapshot.version)
                    if not path.exists():
                        snapshot.save(path)
                    self._write_manifest()
                except OSError as error:
                    warnings.warn(
                        f"could not persist serving snapshot v{snapshot.version}: "
                        f"{error}",
                        RuntimeWarning,
                        stacklevel=3,
                    )
            for listener in listeners:
                try:
                    listener(snapshot)
                except Exception as error:  # noqa: BLE001 - advisory path
                    warnings.warn(
                        f"serving-change listener {listener!r} raised: {error}",
                        RuntimeWarning,
                        stacklevel=3,
                    )

    # ------------------------------------------------------------------ #
    # Audit trail
    # ------------------------------------------------------------------ #
    def record_decision(self, decision: "PromotionDecision") -> None:
        """Append a shadow-gate decision to the audit trail."""
        with self._lock:
            self._decisions.append(decision)

    def decisions(self) -> list["PromotionDecision"]:
        """Every recorded shadow-gate decision, oldest first."""
        with self._lock:
            return list(self._decisions)

    # ------------------------------------------------------------------ #
    # Retention
    # ------------------------------------------------------------------ #
    def _protected_versions(self) -> set[int]:
        """Versions retention must never evict.

        Bounded by construction: the serving version, the rollback target
        (the previous distinct serving version), and the newest registration
        (which a caller is typically about to promote).  Older entries of
        the serving history become evictable — otherwise a promote-every-
        round workload (the agent's pipelined training) would protect every
        version ever served and end up evicting each new candidate the
        moment it is registered.
        """
        protected: set[int] = set()
        for version in reversed(self._serving_history):
            protected.add(version)
            if len(protected) == 2:
                break
        if self._snapshots:
            protected.add(max(self._snapshots))
        return protected

    def _evict_locked(self) -> None:
        if self.retention == 0:
            return
        protected = self._protected_versions()
        evictable: Iterable[int] = sorted(
            v for v in self._snapshots if v not in protected
        )
        for version in evictable:
            if len(self._snapshots) <= self.retention:
                break
            del self._snapshots[version]
        # Rollback must never target an evicted snapshot: drop history
        # entries whose snapshots are gone (collapsing duplicates that
        # pruning creates) so the chain always ends on retained versions.
        pruned: list[int] = []
        for version in self._serving_history:
            if version in self._snapshots and (not pruned or pruned[-1] != version):
                pruned.append(version)
        self._serving_history = pruned
