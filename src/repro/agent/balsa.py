"""The Balsa agent: bootstrap from simulation, safely execute, safely explore.

The training loop follows §2.1/§4 of the paper:

1. **Simulation phase** — collect ``D_sim`` with DP over a minimal cost model,
   train ``V_sim`` supervised, and initialise ``V_real`` from it.
2. **Real-execution phase** — repeat for ``num_iterations``:

   - *Execute*: plan every training query with beam search guided by
     ``V_real``; pick the plan to run with the exploration strategy; execute
     it under the current timeout; add the (augmented, label-corrected)
     experience to ``D_real``.
   - *Update*: improve ``V_real`` with SGD, either on the latest iteration's
     data (on-policy, default) or by retraining from scratch on everything
     (the Neo-style ablation).

Elapsed wall-clock time is accounted with the simulated execution cluster
(pipelined planning + parallel execution, Figure 5) plus the measured planning
and model-update times, which yields the learning-efficiency curves of
Figures 7/8.
"""

from __future__ import annotations

import time

import numpy as np

from repro.agent.config import BalsaConfig
from repro.agent.environment import BalsaEnvironment
from repro.agent.experience import ExecutionRecord, ExperienceBuffer, TrainingPoint
from repro.agent.exploration import make_exploration
from repro.agent.history import IterationMetrics, TrainingHistory
from repro.agent.timeout_policy import TimeoutPolicy
from repro.costmodel.cout import CoutCostModel
from repro.costmodel.expert import ExpertCostModel
from repro.execution.cluster import ExecutionCluster
from repro.lifecycle.registry import ModelRegistry
from repro.lifecycle.trainer import BackgroundTrainer
from repro.model.trainer import ValueNetworkTrainer
from repro.model.value_network import ValueNetwork
from repro.planning.envelope import PlanRequest, PlanResult
from repro.plans.analysis import operator_composition
from repro.plans.nodes import PlanNode
from repro.search.beam import BeamSearchPlanner
from repro.service.service import PlannerService
from repro.simulation.collect import collect_simulation_data
from repro.simulation.trainer import train_simulation_model
from repro.sql.query import Query
from repro.utils.rng import derive_seed


class BalsaAgent:
    """A Balsa learned-optimizer agent.

    Args:
        environment: The workload + engine bundle to train against.
        config: Training configuration.
        expert_runtimes: Optional per-query expert latencies used to normalise
            runtimes in the recorded metrics (train and test query names mixed
            in one mapping).
        agent_id: Identifier recorded on collected experience (used by
            diversified experiences).
    """

    name = "balsa"

    def __init__(
        self,
        environment: BalsaEnvironment,
        config: BalsaConfig | None = None,
        expert_runtimes: dict[str, float] | None = None,
        agent_id: int = 0,
    ):
        self.environment = environment
        self.config = config or BalsaConfig()
        self.expert_runtimes = expert_runtimes or {}
        self.agent_id = agent_id

        self.experience = ExperienceBuffer(environment.query_by_name)
        self.timeout_policy = TimeoutPolicy(
            slack=self.config.timeout_slack,
            timeout_label=self.config.timeout_label,
            enabled=self.config.use_timeouts,
        )
        self.exploration = make_exploration(
            self.config.exploration,
            epsilon=self.config.epsilon,
            seed=derive_seed(self.config.seed, "exploration", agent_id),
        )
        self.planner = BeamSearchPlanner(
            beam_size=self.config.beam_size,
            top_k=self.config.top_k,
            enumerate_scan_operators=self.config.enumerate_scan_operators,
        )
        # All planning goes through the service: it adds the cross-query plan
        # cache (keyed on query fingerprint + model version, so weight updates
        # invalidate naturally), optional concurrency and request metrics.
        self.planner_service = PlannerService(
            network_provider=lambda: self.value_network,
            planner=self.planner,
            max_workers=self.config.planner_workers,
            cache_capacity=self.config.plan_cache_capacity,
            coalesce_scoring=self.config.coalesce_scoring,
            scoring_backend=(
                None
                if self.config.scoring_backend == "auto"
                else self.config.scoring_backend
            ),
        )
        self.cluster = ExecutionCluster(num_nodes=self.config.num_execution_nodes)
        self.history = TrainingHistory()
        self.value_network: ValueNetwork | None = None
        self._elapsed_seconds = 0.0
        self._label_transform_fitted = False

        # Model lifecycle: with background_training on, updates run through a
        # BackgroundTrainer so iteration k+1's planning/execution overlaps
        # iteration k's fine-tune, and every update lands in the registry.
        self.model_registry: ModelRegistry | None = None
        self._background_trainer: BackgroundTrainer | None = None
        self._pending_update = None
        #: Optional live monitor (``watch``/``disarm`` duck type, e.g. a
        #: TrafficShadower) armed whenever a background fine-tune is promoted.
        self.live_monitor = None
        if self.config.background_training:
            self.model_registry = ModelRegistry(
                retention=self.config.lifecycle_retention
            )
            self._background_trainer = BackgroundTrainer(
                self.model_registry,
                learning_rate=self.config.learning_rate,
                batch_size=self.config.batch_size,
                validation_fraction=0.1,
                patience=2,
                seed=derive_seed(self.config.seed, "background-update"),
            )

    # ------------------------------------------------------------------ #
    # Phase 1: simulation bootstrapping
    # ------------------------------------------------------------------ #
    def bootstrap_from_simulation(self) -> None:
        """Collect ``D_sim`` and train ``V_sim``; initialise ``V_real`` from it."""
        config = self.config
        if not config.use_simulation or config.simulator == "none":
            self.value_network = ValueNetwork(self.environment.featurizer, config.network)
            self._register_baseline("random-init")
            return
        cost_model = self._make_simulator()
        dataset = collect_simulation_data(
            self.environment.train_queries,
            cost_model,
            skip_tables_above=config.sim_skip_tables_above,
            max_points_per_query=config.sim_max_points_per_query,
            seed=derive_seed(config.seed, "sim-collect"),
        )
        network, stats = train_simulation_model(
            dataset,
            self.environment.featurizer,
            network_config=config.network,
            learning_rate=config.sim_learning_rate,
            batch_size=config.batch_size,
            max_epochs=config.sim_max_epochs,
            seed=derive_seed(config.seed, "sim-train"),
        )
        # V_real is initialised from V_sim (paper §4.1).
        self.value_network = network
        self._register_baseline("simulation-bootstrap")
        self.history.sim_dataset_size = stats.dataset_size
        self.history.sim_collection_seconds = stats.collection_seconds
        self.history.sim_train_seconds = stats.train_seconds

    def _register_baseline(self, source: str) -> None:
        """Snapshot the bootstrapped network as lifecycle version 1."""
        if self.model_registry is not None and self.value_network is not None:
            snapshot = self.model_registry.register(self.value_network, source=source)
            self.model_registry.promote(snapshot.version)

    def _make_simulator(self):
        """Build the simulation cost model named by the config."""
        simulator = self.config.simulator
        if simulator == "cout":
            return CoutCostModel(self.environment.estimator)
        if simulator == "expert":
            return ExpertCostModel(self.environment.estimator, self.environment.database)
        raise ValueError(f"unknown simulator {simulator!r}")

    # ------------------------------------------------------------------ #
    # Phase 2: learning from real execution
    # ------------------------------------------------------------------ #
    def train(self, num_iterations: int | None = None) -> TrainingHistory:
        """Run the full training pipeline and return its history."""
        if self.value_network is None:
            self.bootstrap_from_simulation()
        iterations = (
            num_iterations if num_iterations is not None else self.config.num_iterations
        )
        for _ in range(iterations):
            self.train_iteration()
        # Drain the pipelined update so the final model reflects every
        # iteration's experience before evaluation.
        self._install_pending_update()
        return self.history

    def train_iteration(self) -> IterationMetrics:
        """Run one execute + update iteration and record its metrics."""
        if self.value_network is None:
            self.bootstrap_from_simulation()
        config = self.config
        iteration = len(self.history.iterations)
        timeout = self.timeout_policy.current_timeout()

        planning_times: list[float] = []
        wall_latencies: list[float] = []
        chosen: list[tuple[Query, PlanNode]] = []
        latencies: list[float] = []
        num_timeouts = 0

        # Plan the whole iteration's queries through the service (cache +
        # optional concurrency) using the uniform request envelope; execution
        # and exploration stay serial so seeded runs remain reproducible.
        responses = self.planner_service.plan_many(
            self._plan_request(query) for query in self.environment.train_queries
        )
        for query, response in zip(self.environment.train_queries, responses):
            # Cache hits cost (almost) no planning time; charge the measured
            # per-request planning cost, not the memoised search's.
            planning_times.append(response.stats.planning_seconds)
            plan = self.exploration.choose(query, response, self.experience)
            chosen.append((query, plan))

            result, was_cached = self.environment.execute(query, plan, timeout=timeout)
            label_latency = self.timeout_policy.label_for(result.latency, result.timed_out)
            latencies.append(result.latency)
            wall_latencies.append(0.0 if was_cached else result.latency)
            num_timeouts += int(result.timed_out)
            self.experience.add(
                ExecutionRecord(
                    query_name=query.name,
                    plan=plan,
                    latency=label_latency,
                    timed_out=result.timed_out,
                    iteration=iteration,
                    agent_id=self.agent_id,
                )
            )

        # Timeouts tighten based on this iteration's maximum per-query runtime.
        self.timeout_policy.observe_iteration(max(latencies) if latencies else 0.0)

        update_started = time.perf_counter()
        self._update_value_network(iteration)
        update_seconds = time.perf_counter() - update_started

        timing = self.cluster.iteration_elapsed(planning_times, wall_latencies)
        self._elapsed_seconds += timing.elapsed + update_seconds

        metrics = self._record_metrics(
            iteration=iteration,
            chosen=chosen,
            latencies=latencies,
            num_timeouts=num_timeouts,
            planning_seconds=timing.planning_time,
            update_seconds=update_seconds,
            timeout_budget=timeout,
        )
        self.history.iterations.append(metrics)
        return metrics

    # ------------------------------------------------------------------ #
    # Value-network updates (§4.1)
    # ------------------------------------------------------------------ #
    def _update_value_network(self, iteration: int) -> None:
        config = self.config
        if self._background_trainer is not None:
            # Pipelined updates: install the fine-tune submitted at the end
            # of the previous iteration (its training overlapped this
            # iteration's planning and execution), then hand this iteration's
            # experience to the background trainer and return immediately.
            self._install_pending_update()
            self._submit_background_update(iteration)
            return
        if config.on_policy:
            points = self.experience.training_points(iteration=iteration)
            refit = not self._label_transform_fitted
            # The very first real-execution update has to move the network
            # from cost-scale targets (simulation) to latency-scale targets,
            # which needs a full training budget; later on-policy updates are
            # cheap incremental refinements (paper §4.1).
            epochs = config.update_epochs if self._label_transform_fitted else config.retrain_epochs
            network = self.value_network
        else:
            # Neo-style: reset to random weights and retrain on everything.
            points = self.experience.training_points()
            refit = True
            epochs = config.retrain_epochs
            network = ValueNetwork(self.environment.featurizer, config.network)
            self.value_network = network
        if not points:
            return
        self._fit_points(network, points, refit_label_transform=refit, max_epochs=epochs)
        self._label_transform_fitted = True

    def _submit_background_update(self, iteration: int) -> None:
        """Queue this iteration's fine-tune on the background trainer."""
        config = self.config
        if config.on_policy:
            points = self.experience.training_points(iteration=iteration)
            refit = not self._label_transform_fitted
            epochs = (
                config.update_epochs
                if self._label_transform_fitted
                else config.retrain_epochs
            )
            base = self.value_network
        else:
            points = self.experience.training_points()
            refit = True
            epochs = config.retrain_epochs
            base = ValueNetwork(self.environment.featurizer, config.network)
        if not points:
            return
        featurizer = self.environment.featurizer
        examples = [featurizer.featurize(p.query, p.plan) for p in points]
        labels = [p.label for p in points]
        self._pending_update = self._background_trainer.submit(
            base,
            examples,
            labels,
            parent_version=self.model_registry.serving_version,
            refit_label_transform=refit,
            max_epochs=epochs,
            source=f"iteration-{iteration}",
        )
        self._label_transform_fitted = True

    def attach_live_monitor(self, monitor) -> None:
        """Arm ``monitor`` whenever a background fine-tune is promoted.

        ``monitor`` needs ``watch(candidate_version, baseline_version)`` and
        ``disarm()`` — the TrafficShadower surface.  With one attached, every
        promotion this agent makes through its background trainer is guarded
        by live traffic the same way gateway promotions are.
        """
        self.live_monitor = monitor

    def _install_pending_update(self) -> None:
        """Wait for the in-flight fine-tune (if any) and hot-swap it in.

        The new network is restored from its registry snapshot, so it carries
        a fresh identity: plan-cache keys roll over naturally and the
        planner service's provider picks it up on the next request.
        """
        if self._pending_update is None:
            return
        report = self._pending_update.result()
        self._pending_update = None
        displaced = self.model_registry.serving_version
        self.model_registry.promote(report.snapshot.version)
        self.value_network = report.snapshot.restore(self.environment.featurizer)
        if self.live_monitor is not None:
            try:
                self.live_monitor.watch(report.snapshot.version, displaced)
            except Exception:  # noqa: BLE001 - advisory; promotion already landed
                pass

    def _fit_points(
        self,
        network: ValueNetwork,
        points: list[TrainingPoint],
        refit_label_transform: bool,
        max_epochs: int,
    ) -> None:
        featurizer = self.environment.featurizer
        examples = [featurizer.featurize(p.query, p.plan) for p in points]
        labels = [p.label for p in points]
        trainer = ValueNetworkTrainer(
            network,
            learning_rate=self.config.learning_rate,
            batch_size=self.config.batch_size,
            max_epochs=max_epochs,
            validation_fraction=0.1,
            patience=2,
            seed=derive_seed(self.config.seed, "update", len(self.experience)),
        )
        trainer.fit(
            examples,
            labels,
            refit_label_transform=refit_label_transform,
            max_epochs=max_epochs,
        )

    # ------------------------------------------------------------------ #
    # Evaluation
    # ------------------------------------------------------------------ #
    def _plan_request(self, query: Query, k: int | None = None) -> PlanRequest:
        """The agent's standard planning envelope for one query."""
        return PlanRequest(query=query, k=k if k is not None else self.config.top_k)

    def plan(self, request: PlanRequest) -> PlanResult:
        """Serve one :class:`PlanRequest` (the :class:`Planner` protocol entry).

        Routed through the agent's planner service, so repeated requests under
        unchanged weights hit the plan cache.
        """
        if self.value_network is None:
            raise RuntimeError("agent has not been trained or bootstrapped yet")
        return self.planner_service.plan(request)

    def plan_query(self, query: Query) -> PlanNode:
        """Plan a query for deployment: the predicted-best plan (no exploration)."""
        if self.value_network is None:
            raise RuntimeError("agent has not been trained or bootstrapped yet")
        return self.planner_service.plan(self._plan_request(query)).best_plan

    def evaluate(
        self, queries, timeout: float | None = None
    ) -> dict[str, tuple[PlanNode, float]]:
        """Plan and execute ``queries`` (no exploration, no experience added).

        Args:
            queries: Iterable of queries (e.g. the test split).
            timeout: Optional safety cap on per-query latency (defaults to the
                config's ``test_timeout``).

        Returns:
            Mapping of query name to ``(plan, latency)``.
        """
        if self.value_network is None:
            raise RuntimeError("agent has not been trained or bootstrapped yet")
        budget = timeout if timeout is not None else self.config.test_timeout
        query_list = list(queries)
        responses = self.planner_service.plan_many(
            self._plan_request(query) for query in query_list
        )
        results: dict[str, tuple[PlanNode, float]] = {}
        for query, response in zip(query_list, responses):
            plan = response.best_plan
            result, _ = self.environment.execute(query, plan, timeout=budget)
            results[query.name] = (plan, result.latency)
        return results

    def workload_runtime(self, queries, timeout: float | None = None) -> float:
        """Sum of per-query latencies of the agent's plans for ``queries``."""
        results = self.evaluate(queries, timeout=timeout)
        return float(sum(latency for _, latency in results.values()))

    def close(self) -> None:
        """Release the planner service's worker pool and scoring bridge."""
        try:
            if self._background_trainer is not None:
                try:
                    self._install_pending_update()
                finally:
                    self._background_trainer.close()
        finally:
            self.planner_service.close()

    # ------------------------------------------------------------------ #
    # Metrics
    # ------------------------------------------------------------------ #
    def _expert_workload_runtime(self, queries) -> float | None:
        total = 0.0
        for query in queries:
            latency = self.expert_runtimes.get(query.name)
            if latency is None:
                return None
            total += latency
        return total

    def _record_metrics(
        self,
        iteration: int,
        chosen: list[tuple[Query, PlanNode]],
        latencies: list[float],
        num_timeouts: int,
        planning_seconds: float,
        update_seconds: float,
        timeout_budget: float | None,
    ) -> IterationMetrics:
        config = self.config
        train_queries = self.environment.train_queries
        train_runtime = float(np.sum(latencies))
        best_known = 0.0
        for query in train_queries:
            best = self.experience.best_latency(query.name)
            best_known += best if best is not None else config.timeout_label
        expert_total = self._expert_workload_runtime(train_queries)
        normalized = train_runtime / expert_total if expert_total else None

        test_runtime = None
        test_normalized = None
        evaluate_now = (
            config.eval_interval > 0
            and len(self.environment.test_queries) > 0
            and (iteration % config.eval_interval == 0 or iteration == config.num_iterations - 1)
        )
        if evaluate_now:
            test_runtime = self.workload_runtime(self.environment.test_queries)
            expert_test = self._expert_workload_runtime(self.environment.test_queries)
            if expert_test:
                test_normalized = test_runtime / expert_test

        return IterationMetrics(
            iteration=iteration,
            train_runtime=train_runtime,
            best_known_runtime=best_known,
            normalized_runtime=normalized,
            elapsed_seconds=self._elapsed_seconds,
            unique_plans_seen=self.experience.num_unique_plans(),
            num_timeouts=num_timeouts,
            planning_seconds=planning_seconds,
            update_seconds=update_seconds,
            timeout_budget=timeout_budget,
            test_runtime=test_runtime,
            test_normalized_runtime=test_normalized,
            composition=operator_composition(plan for _, plan in chosen),
        )
