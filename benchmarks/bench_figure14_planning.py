"""Figure 14: planning time and plan quality vs beam size b and top-k.

Paper: mean per-query planning time stays below 250 ms for all settings;
b = 1 (greedy) slightly hurts runtime, all other settings are similar.  The
shape to check: planning time grows with b, and b = 1 is never better than the
largest b.
"""

from benchmarks.conftest import run_once
from repro.evaluation import experiments
from repro.evaluation.reporting import format_table


def bench_figure14_planning_time(benchmark, scale):
    result = run_once(
        benchmark,
        experiments.run_figure14_planning_time,
        scale,
        beam_sizes=(1, 5, 10),
        top_ks=(1, 5),
    )
    print()
    print(
        format_table(
            ["beam size b", "top-k", "mean planning (ms)", "normalized runtime"],
            [
                [r["beam_size"], r["top_k"], r["mean_planning_ms"], r["normalized_runtime"]]
                for r in result["rows"]
            ],
            title="Figure 14: planning time vs search parameters",
        )
    )
    by_beam = {}
    for row in result["rows"]:
        by_beam.setdefault(row["beam_size"], []).append(row["mean_planning_ms"])
    beams = sorted(by_beam)
    assert sum(by_beam[beams[0]]) <= sum(by_beam[beams[-1]]) * 1.5
