"""The model lifecycle subsystem: serve version N while N+1 earns its place.

Balsa's loop retrains the value network every iteration; a serving deployment
cannot stop the world for that.  This package keeps the
:class:`~repro.service.service.PlannerService` answering on version N while
version N+1 trains, proves itself, and takes over:

- :class:`~repro.lifecycle.registry.ModelRegistry` — immutable, versioned
  :class:`~repro.lifecycle.snapshot.ModelSnapshot` checkpoints with
  ``promote``/``rollback`` and a bounded retention policy;
- :class:`~repro.lifecycle.trainer.BackgroundTrainer` — fine-tunes a *clone*
  of the serving network on fresh experience off the serving path and
  registers the candidate;
- :class:`~repro.lifecycle.shadow.ShadowEvaluator` — replans a probe workload
  with candidate vs serving (both resolved as versioned planners through the
  planner registry) and gates promotion on regression bounds, recording a
  :class:`~repro.lifecycle.shadow.PromotionDecision` audit trail;
- :class:`~repro.lifecycle.manager.ModelLifecycle` — the conductor: approved
  candidates hot-swap atomically (in-flight requests finish on N, new
  requests plan with N+1) and the cache warmer immediately replans the known
  workload so steady-state traffic stays warm across the swap.
"""

from repro.lifecycle.manager import ModelLifecycle
from repro.lifecycle.registry import ModelRegistry
from repro.lifecycle.shadow import ProbeResult, PromotionDecision, ShadowEvaluator
from repro.lifecycle.snapshot import LifecycleError, ModelSnapshot
from repro.lifecycle.trainer import BackgroundTrainer, FineTuneReport

__all__ = [
    "BackgroundTrainer",
    "FineTuneReport",
    "LifecycleError",
    "ModelLifecycle",
    "ModelRegistry",
    "ModelSnapshot",
    "ProbeResult",
    "PromotionDecision",
    "ShadowEvaluator",
]
