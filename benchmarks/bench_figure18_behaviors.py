"""Figure 18: operators and plan shapes learned by Balsa over training.

Paper: Balsa quickly pushes merge joins below 10%, prefers (mostly indexed)
nested loops and hash joins, and its plan-shape preferences diverge from the
one-size-fits-all expert.  The shape to check: operator fractions are valid
distributions and merge joins do not dominate at the end of training.
"""

from benchmarks.conftest import run_once
from repro.evaluation import experiments
from repro.evaluation.reporting import format_series, format_table


def bench_figure18_behaviors(benchmark, scale):
    result = run_once(benchmark, experiments.run_figure18_behaviors, scale)
    print()
    print("Figure 18: operator / plan-shape fractions per iteration")
    print(format_series(result["series"]))
    print(
        format_table(
            ["statistic", "expert value"],
            [[name, value] for name, value in result["expert"].items()],
            title="Expert (dashed-line) reference composition",
        )
    )
    assert result["series"]["merge_join"][-1] <= 0.8
