"""Figure 8: wall-clock efficiency with non-parallel (single node) training.

Paper: with one execution node instead of ~2.5, peak performance is still
reached within single-digit hours; curves are simply stretched in time.  The
shape to check: the single-node run's elapsed time per iteration is at least
as large as the parallel run's.
"""

from benchmarks.conftest import run_once
from repro.evaluation import experiments
from repro.evaluation.reporting import format_series


def bench_figure8_nonparallel(benchmark, scale):
    result = run_once(
        benchmark, experiments.run_figure8_nonparallel, scale, workloads=("job",)
    )
    curves = result["curves"]["job"]
    print()
    print("Figure 8: non-parallel (1 execution node) learning efficiency")
    print(
        format_series(
            {
                "elapsed_hours": curves["elapsed_hours"],
                "normalized_runtime": curves["normalized_runtime"],
            }
        )
    )
    assert curves["elapsed_hours"][-1] > 0
