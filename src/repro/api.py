"""Convenience facade re-exporting the library's main entry points.

Typical usage::

    from repro import BalsaConfig, BalsaAgent, make_job_benchmark

    benchmark = make_job_benchmark(fact_rows=1000, num_queries=40)
    config = BalsaConfig.small(seed=0, num_iterations=20)
    agent = BalsaAgent(
        benchmark.environment(), config,
        expert_runtimes=benchmark.expert_runtimes(),
    )
    agent.train()
    print(agent.workload_runtime(benchmark.test_queries))

Planning API (one protocol, one envelope, a registry)::

    from repro.api import PlanRequest, registry_from_benchmark

    registry = registry_from_benchmark(benchmark, network=agent.value_network)
    result = registry.get("postgres").plan(PlanRequest(query=q, k=3))
"""

from repro.agent.balsa import BalsaAgent
from repro.agent.config import BalsaConfig
from repro.agent.environment import BalsaEnvironment
from repro.baselines.bao import BaoAgent
from repro.baselines.neo import NeoAgent
from repro.diversity.merge import merge_agent_experiences, retrain_from_experience
from repro.evaluation.experiments import ExperimentScale
from repro.experience import (
    ExperienceMetrics,
    ExperienceSink,
    ExperienceTuple,
    OnlineTrainerLoop,
    ReplayBuffer,
)
from repro.lifecycle import (
    BackgroundTrainer,
    LifecycleError,
    ModelLifecycle,
    ModelRegistry,
    ModelSnapshot,
    PromotionDecision,
    ShadowEvaluator,
)
from repro.model.value_network import StateDictMismatchError
from repro.planning.adapters import (
    AgentPlanner,
    BeamPlanner,
    RandomPlanner,
    registry_from_benchmark,
)
from repro.planning.envelope import (
    AdmissionError,
    PlanningError,
    PlanRequest,
    PlanResult,
    UnknownPlannerError,
)
from repro.planning.protocol import Planner, planner_version
from repro.planning.registry import PlannerRegistry
from repro.scoring import (
    AutoscalerConfig,
    InProcessBackend,
    PoolAutoscaler,
    ProcessPoolBackend,
    ScoringBackend,
    ScoringBackendError,
    ShmRingBuffer,
    ThreadedBatchingBackend,
    make_scoring_backend,
)
from repro.search.beam import BeamSearchPlanner
from repro.server import (
    PlanningServer,
    ShadowTrafficStats,
    TrafficShadower,
    WireFormatError,
    plan_request_from_json_dict,
    plan_request_to_json_dict,
    plan_result_from_json_dict,
    plan_result_to_json_dict,
    query_from_json_dict,
    query_to_json_dict,
)
from repro.service.metrics import ServiceMetrics
from repro.service.service import PlannerService, ServiceResponse
from repro.telemetry import MetricsRegistry, Tracer
from repro.workloads.benchmark import (
    WorkloadBenchmark,
    make_job_benchmark,
    make_tpch_benchmark,
)

__all__ = [
    "AdmissionError",
    "AgentPlanner",
    "AutoscalerConfig",
    "BackgroundTrainer",
    "BalsaAgent",
    "BalsaConfig",
    "BalsaEnvironment",
    "BaoAgent",
    "BeamPlanner",
    "BeamSearchPlanner",
    "ExperienceMetrics",
    "ExperienceSink",
    "ExperienceTuple",
    "ExperimentScale",
    "InProcessBackend",
    "LifecycleError",
    "MetricsRegistry",
    "ModelLifecycle",
    "ModelRegistry",
    "ModelSnapshot",
    "NeoAgent",
    "OnlineTrainerLoop",
    "Planner",
    "PlannerRegistry",
    "PlannerService",
    "PlanningError",
    "PlanningServer",
    "PlanRequest",
    "PlanResult",
    "PoolAutoscaler",
    "ProcessPoolBackend",
    "PromotionDecision",
    "RandomPlanner",
    "ReplayBuffer",
    "ScoringBackend",
    "ScoringBackendError",
    "ServiceMetrics",
    "ServiceResponse",
    "ShadowEvaluator",
    "ShadowTrafficStats",
    "ShmRingBuffer",
    "StateDictMismatchError",
    "ThreadedBatchingBackend",
    "Tracer",
    "TrafficShadower",
    "UnknownPlannerError",
    "WireFormatError",
    "WorkloadBenchmark",
    "make_job_benchmark",
    "make_scoring_backend",
    "make_tpch_benchmark",
    "merge_agent_experiences",
    "plan_request_from_json_dict",
    "plan_request_to_json_dict",
    "plan_result_from_json_dict",
    "plan_result_to_json_dict",
    "planner_version",
    "query_from_json_dict",
    "query_to_json_dict",
    "registry_from_benchmark",
    "retrain_from_experience",
]
