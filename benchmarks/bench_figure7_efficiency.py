"""Figure 7: learning efficiency (wall-clock and data efficiency curves).

Paper: Balsa starts several times slower than the expert right after
simulation bootstrapping, matches the expert within a few hours / a few
thousand unique plans, and keeps improving.  The shape to check: the
normalised-runtime series trends downward as elapsed time and unique plans
grow.
"""

from benchmarks.conftest import run_once
from repro.evaluation import experiments
from repro.evaluation.reporting import format_series


def bench_figure7_learning_efficiency(benchmark, scale):
    result = run_once(
        benchmark, experiments.run_figure7_learning_efficiency, scale, workloads=("job",)
    )
    curves = result["curves"]["job"]
    print()
    print("Figure 7: learning efficiency (JOB-like workload)")
    print(
        format_series(
            {
                "elapsed_hours": curves["elapsed_hours"],
                "normalized_runtime": curves["normalized_runtime"],
                "unique_plans": curves["unique_plans"],
            }
        )
    )
    series = curves["normalized_runtime"]
    assert min(series) <= series[0]
