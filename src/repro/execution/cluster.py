"""Simulated execution cluster: wall-clock accounting for parallel training.

Paper §7 dispatches query executions to a pool of identical VMs (via Ray) and
pipelines planning with remote execution (Figure 5).  Here the "cluster" does
not run anything concurrently — all executions are simulated — but it
reproduces the *wall-clock accounting*: given per-query planning times and
execution latencies, it computes the elapsed time of an iteration under a
given number of execution nodes, with planning overlapped with execution.

This is what produces the parallel (Figure 7a) vs. non-parallel (Figure 8)
wall-clock curves.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Sequence


@dataclass
class IterationTiming:
    """Wall-clock accounting for one training iteration.

    Attributes:
        planning_time: Total time the agent spent planning queries.
        execution_time: Sum of individual plan execution latencies.
        elapsed: Simulated elapsed wall-clock for the iteration: planning is
            pipelined with remote execution across the cluster's nodes.
    """

    planning_time: float
    execution_time: float
    elapsed: float


class ExecutionCluster:
    """A pool of ``num_nodes`` identical execution nodes.

    Args:
        num_nodes: Number of execution nodes (the paper's runs average 2.5
            nodes; the non-parallel ablation uses 1).
    """

    def __init__(self, num_nodes: int = 1):
        if num_nodes < 1:
            raise ValueError("num_nodes must be >= 1")
        self.num_nodes = num_nodes

    def iteration_elapsed(
        self,
        planning_times: Sequence[float],
        execution_latencies: Sequence[float],
    ) -> IterationTiming:
        """Simulate one pipelined execute-phase iteration (Figure 5).

        The agent plans queries sequentially; as soon as query ``i`` is
        planned (at time ``sum(planning_times[:i+1])``) its plan is dispatched
        to the earliest-free node.  The iteration ends when the last execution
        finishes (the agent waits for all plans before updating).

        Args:
            planning_times: Per-query planning durations, in seconds.
            execution_latencies: Per-query execution latencies, in seconds.

        Returns:
            The :class:`IterationTiming` for the iteration.
        """
        if len(planning_times) != len(execution_latencies):
            raise ValueError("planning_times and execution_latencies must align")
        node_free_at = [0.0] * self.num_nodes
        heapq.heapify(node_free_at)
        planned_at = 0.0
        finish = 0.0
        for plan_time, latency in zip(planning_times, execution_latencies):
            planned_at += plan_time
            earliest = heapq.heappop(node_free_at)
            start = max(planned_at, earliest)
            end = start + latency
            heapq.heappush(node_free_at, end)
            finish = max(finish, end)
        total_planning = float(sum(planning_times))
        return IterationTiming(
            planning_time=total_planning,
            execution_time=float(sum(execution_latencies)),
            elapsed=max(finish, planned_at),
        )
