"""The cardinality-estimator interface."""

from __future__ import annotations

import abc

from repro.sql.query import Query


class CardinalityEstimator(abc.ABC):
    """Estimates result sizes of (sub)queries.

    Cost models call :meth:`estimate` with the alias subset corresponding to a
    plan subtree; featurisation calls :meth:`selectivity` for the per-table
    query encoding (paper §7: "A query is featurized as a vector
    [table → selectivity]").
    """

    @abc.abstractmethod
    def base_rows(self, query: Query, alias: str) -> float:
        """Row count of the base table behind ``alias`` (no filters)."""

    @abc.abstractmethod
    def estimate(self, query: Query, aliases: frozenset[str]) -> float:
        """Estimated cardinality of the query restricted to ``aliases``.

        Args:
            query: The full query.
            aliases: A non-empty subset of the query's aliases.  A singleton
                set means the filtered base table.

        Returns:
            The estimated number of rows (>= 0; may be fractional).
        """

    def selectivity(self, query: Query, alias: str) -> float:
        """Estimated selectivity of the filters on ``alias`` (0..1)."""
        base = max(1.0, self.base_rows(query, alias))
        filtered = self.estimate(query, frozenset((alias,)))
        return min(1.0, max(0.0, filtered / base))
