"""Bao: steering the expert optimizer with per-query hint sets (paper §8.4.1).

Bao does not build plans itself.  For every query it chooses one *hint set*
(a subset of physical operators the expert optimizer may use), lets the expert
plan under that restriction, executes the resulting plan and learns a model of
``(query, hint set) -> latency`` from the observations.

Following the paper's tuned setup, our Bao:

- bootstraps its experience from the unrestricted expert plan of every
  training query (the "bootstrap from PostgreSQL's expert plans" optimization
  the paper enables);
- trains on *all* past experience (the paper found Bao's sliding window of
  2000 unstable and trained on everything);
- selects arms greedily from its model with an ε-greedy exploration term.

The latency model is a ridge regression over (query selectivity vector ⊗ arm
one-hot) features in log space — a deliberately lightweight stand-in for Bao's
TCNN that preserves the method's structure (fixed small action space, expert
produces the plans).
"""

from __future__ import annotations

import itertools
import time
import warnings
from dataclasses import dataclass, field

import numpy as np

from repro.agent.environment import BalsaEnvironment
from repro.execution.hints import STANDARD_HINT_SETS, HintSet
from repro.featurization.query_encoder import QueryEncoder
from repro.optimizer.expert import ExpertOptimizer
from repro.planning.envelope import PlanRequest, PlanResult
from repro.plans.nodes import PlanNode
from repro.sql.query import Query
from repro.utils.rng import new_rng


@dataclass
class BaoObservation:
    """One (query, arm, latency) observation."""

    query_name: str
    arm_index: int
    latency: float


@dataclass
class BaoHistory:
    """Per-iteration workload runtimes of a Bao training run."""

    train_runtimes: list[float] = field(default_factory=list)
    test_runtimes: list[float] = field(default_factory=list)


class BaoAgent:
    """The Bao baseline.

    Implements the :class:`~repro.planning.protocol.Planner` protocol: a
    :class:`PlanRequest` picks an arm (honouring ``knobs["explore"]``) and
    returns the steered expert's plan, with the chosen arm recorded in
    ``result.extra``.

    Args:
        environment: Workload environment.
        expert: The expert optimizer Bao steers.
        hint_sets: The arms (operator subsets) available.
        epsilon: ε-greedy arm-exploration probability during training.
        ridge_lambda: Ridge regularisation of the latency model.
        seed: RNG seed.
    """

    name = "bao"

    _uid_counter = itertools.count()

    def __init__(
        self,
        environment: BalsaEnvironment,
        expert: ExpertOptimizer,
        hint_sets: tuple[HintSet, ...] = STANDARD_HINT_SETS,
        epsilon: float = 0.15,
        ridge_lambda: float = 1.0,
        seed: int = 0,
    ):
        self.environment = environment
        self.expert = expert
        self.hint_sets = tuple(hint_sets)
        self.epsilon = epsilon
        self.ridge_lambda = ridge_lambda
        self._rng = new_rng(seed)
        self.query_encoder = QueryEncoder(environment.database.schema, environment.estimator)
        self.observations: list[BaoObservation] = []
        self.history = BaoHistory()
        self._weights: np.ndarray | None = None
        self._uid = next(BaoAgent._uid_counter)
        self._model_version = 0
        self._experts_by_arm = {
            i: expert.with_hint_set(hint_set) for i, hint_set in enumerate(self.hint_sets)
        }

    # ------------------------------------------------------------------ #
    # Featurisation and the latency model
    # ------------------------------------------------------------------ #
    def _features(self, query: Query, arm_index: int) -> np.ndarray:
        """Features of a (query, arm) pair: query vector ⊗ arm one-hot + bias."""
        query_vector = self.query_encoder.encode(query)
        num_arms = len(self.hint_sets)
        features = np.zeros(num_arms * len(query_vector) + num_arms + 1)
        start = arm_index * len(query_vector)
        features[start : start + len(query_vector)] = query_vector
        features[num_arms * len(query_vector) + arm_index] = 1.0
        features[-1] = 1.0
        return features

    def _refit_model(self) -> None:
        """Ridge regression of log latency on (query, arm) features."""
        self._model_version += 1
        if not self.observations:
            self._weights = None
            return
        rows = []
        targets = []
        for obs in self.observations:
            query = self.environment.query_by_name(obs.query_name)
            rows.append(self._features(query, obs.arm_index))
            targets.append(np.log1p(obs.latency))
        design = np.vstack(rows)
        target = np.asarray(targets)
        gram = design.T @ design + self.ridge_lambda * np.eye(design.shape[1])
        self._weights = np.linalg.solve(gram, design.T @ target)

    def predict_latency(self, query: Query, arm_index: int) -> float:
        """Predicted latency of running ``query`` under arm ``arm_index``."""
        if self._weights is None:
            return 0.0
        return float(np.expm1(self._features(query, arm_index) @ self._weights))

    # ------------------------------------------------------------------ #
    # Arm selection and execution
    # ------------------------------------------------------------------ #
    def choose_arm(self, query: Query, explore: bool = True) -> int:
        """Pick the arm with the lowest predicted latency (ε-greedy in training)."""
        if explore and self._rng.random() < self.epsilon:
            return int(self._rng.integers(len(self.hint_sets)))
        return self._best_arm(query)[0]

    def _best_arm(self, query: Query) -> tuple[int, float]:
        """The greedily chosen arm and its predicted latency (one model pass)."""
        predictions = [
            self.predict_latency(query, arm) for arm in range(len(self.hint_sets))
        ]
        best = int(np.argmin(predictions))
        return best, predictions[best]

    def version_key(self) -> tuple:
        """Identity of this agent's current latency model (a cache key).

        Bumped on every model refit so serving caches never return an arm the
        retrained model would no longer choose.
        """
        return (self.name, self._uid, self._model_version)

    def plan(self, request: PlanRequest) -> PlanResult:
        """Choose an arm and return the steered expert's plan for the request.

        ``request.knobs["explore"]`` (default False) enables the ε-greedy arm
        exploration used during training; the chosen arm index and hint-set
        name are reported in ``result.extra``.
        """
        started = time.perf_counter()
        explore = bool(request.knobs.get("explore", False))
        if explore and self._rng.random() < self.epsilon:
            arm = int(self._rng.integers(len(self.hint_sets)))
            predicted = self.predict_latency(request.query, arm)
        else:
            arm, predicted = self._best_arm(request.query)
        plan, _ = self._experts_by_arm[arm].optimize_with_cost(request.query)
        return PlanResult(
            plans=[plan],
            predicted_latencies=[predicted],
            planning_seconds=time.perf_counter() - started,
            planner_name=self.name,
            # ε-greedy arm draws are stochastic; a cache must not replay them.
            cacheable=not explore,
            extra={"arm_index": arm, "hint_set": self.hint_sets[arm].name},
        )

    def plan_query(self, query: Query, explore: bool = False) -> tuple[PlanNode, int]:
        """Deprecated: the expert's plan for ``query`` under the chosen arm."""
        warnings.warn(
            "BaoAgent.plan_query() is deprecated; use plan(PlanRequest(query, "
            "knobs={'explore': ...}))",
            DeprecationWarning,
            stacklevel=2,
        )
        result = self.plan(PlanRequest(query=query, knobs={"explore": explore}))
        return result.best_plan, result.extra["arm_index"]

    # ------------------------------------------------------------------ #
    # Training
    # ------------------------------------------------------------------ #
    def bootstrap(self) -> None:
        """Seed the experience with the unrestricted expert's plans (arm 0)."""
        for query in self.environment.train_queries:
            plan, _ = self._experts_by_arm[0].optimize_with_cost(query)
            result, _ = self.environment.execute(query, plan)
            self.observations.append(BaoObservation(query.name, 0, result.latency))
        self._refit_model()

    def train(self, num_iterations: int = 10) -> BaoHistory:
        """Run ``num_iterations`` steer-execute-refit iterations."""
        if not self.observations:
            self.bootstrap()
        for _ in range(num_iterations):
            runtime = 0.0
            for query in self.environment.train_queries:
                planned = self.plan(PlanRequest(query=query, knobs={"explore": True}))
                arm = planned.extra["arm_index"]
                result, _ = self.environment.execute(query, planned.best_plan)
                runtime += result.latency
                self.observations.append(BaoObservation(query.name, arm, result.latency))
            self._refit_model()
            self.history.train_runtimes.append(runtime)
            self.history.test_runtimes.append(
                self.workload_runtime(self.environment.test_queries)
            )
        return self.history

    # ------------------------------------------------------------------ #
    # Evaluation
    # ------------------------------------------------------------------ #
    def workload_runtime(self, queries) -> float:
        """Execute the greedily chosen arm's plan for each query; sum latencies."""
        total = 0.0
        for query in queries:
            planned = self.plan(PlanRequest(query=query))
            result, _ = self.environment.execute(query, planned.best_plan)
            total += result.latency
        return total
